"""Figure 6 benchmark: per-packet cost of every CM API variant."""

from repro.experiments import figure6


def test_bench_figure6_api_costs(benchmark, once):
    result = once(
        benchmark,
        figure6.run,
        packet_sizes=(168, 700, 1400),
        npackets=1000,
    )
    variants = result.columns[1:]
    by_size = {row[0]: dict(zip(variants, row[1:])) for row in result.rows}

    smallest = by_size[168]
    largest = by_size[1400]

    # Ordering of API costs (paper Figure 6 / Table 1).
    assert smallest["alf_noconnect"] > smallest["alf"] > smallest["buffered"] > smallest["tcp_cm"]
    assert smallest["tcp_linux"] <= smallest["tcp_cm"] * 1.05

    # Worst case: ALF/noconnect vs TCP/CM-nodelay at 168 bytes costs tens of
    # percent of throughput (paper: ~25%; accept 10-50% for the cost model).
    reduction = 1.0 - largest_base(smallest)
    assert 0.10 < reduction < 0.50

    # Per-packet cost grows with packet size for every API.
    for variant in variants:
        assert largest[variant] > smallest[variant]
    print(result.to_text())


def largest_base(row):
    """TCP/CM-nodelay cost as a fraction of the ALF/noconnect cost."""
    return row["tcp_cm_nodelay"] / row["alf_noconnect"]
