"""Figure 7 benchmark: sharing congestion state across sequential web requests."""

from repro.experiments import figure7


def test_bench_figure7_state_sharing(benchmark, once):
    result = once(benchmark, figure7.run)
    cm_ms = result.column("tcp_cm_ms")
    linux_ms = result.column("tcp_linux_ms")

    # Later CM requests avoid slow start and are much faster than the first;
    # without the CM every request costs about the same.
    later_cm = sum(cm_ms[2:]) / len(cm_ms[2:])
    later_linux = sum(linux_ms[2:]) / len(linux_ms[2:])
    improvement = (later_linux - later_cm) / later_linux
    assert 0.2 < improvement < 0.8          # paper reports ~40%
    assert cm_ms[-1] < 0.75 * cm_ms[0]      # warm requests clearly faster
    assert abs(linux_ms[-1] - linux_ms[0]) < 0.25 * linux_ms[0]
    # The first CM request must not be dramatically slower than native TCP
    # (only about one extra RTT from the 1-MTU initial window).
    assert cm_ms[0] < 1.3 * linux_ms[0]
    print(result.to_text())
