"""Figure 10 benchmark: rate-callback application with delayed receiver feedback."""

import math

from repro.experiments import figure10


def test_bench_figure10_delayed_feedback(benchmark, once):
    result = once(benchmark, figure10.run, duration=60.0)
    rows = {r[0]: r[1] for r in result.rows}

    # The initial ramp is delayed waiting for the first feedback batch
    # (paper: ~2 s; the staircase ramp makes it a few seconds here).
    assert not math.isnan(rows["time_of_first_rate_increase_s"])
    assert rows["time_of_first_rate_increase_s"] >= 1.5
    # Feedback batching makes the behaviour bursty rather than smooth.
    assert rows["peak_to_mean_ratio"] > 1.3
    # Despite the burstiness the application still reaches a high rate.
    assert rows["mean_transmission_rate_Bps"] > 200_000
    print(result.to_text())
