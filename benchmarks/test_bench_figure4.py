"""Figure 4 benchmark: 100 Mbps bulk TCP throughput, CM vs native."""

from repro.experiments import figure4


def test_bench_figure4_bulk_throughput(benchmark, once):
    result = once(benchmark, figure4.run, buffer_counts=(1_000, 5_000, 20_000))
    # The paper's claim: throughput essentially identical, worst case ~0.5%
    # (we allow a few percent at the truncated transfer sizes, and require the
    # gap to shrink as transfers get longer).
    differences = [abs(row[3]) for row in result.rows]
    assert differences[-1] < 2.0
    assert all(d < 10.0 for d in differences)
    # Both saturate the link: >10 MB/s goodput on 100 Mbps Ethernet.
    assert result.rows[-1][1] > 10_000
    assert result.rows[-1][2] > 10_000
    print(result.to_text())
