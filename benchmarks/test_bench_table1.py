"""Table 1 benchmark: cumulative per-packet operation counts for each API."""

from repro.experiments import table1


def test_bench_table1_operation_counts(benchmark, once):
    result = once(benchmark, table1.run, packet_size=1000, npackets=800)
    rows = {row[0]: dict(zip(result.columns[1:], row[1:])) for row in result.rows}

    # The paper's cumulative structure:
    #   ALF/noconnect = ALF + 1 cm_notify ioctl
    assert 0.8 < rows["alf_noconnect"]["ioctl"] - rows["alf"]["ioctl"] < 1.2
    #   ALF adds a cm_request ioctl (and the control socket in the select set)
    assert rows["alf"]["ioctl"] > rows["buffered"]["ioctl"]
    assert rows["alf"]["select_call"] > 0
    #   Buffered adds one recv and two gettimeofday calls per packet
    assert 0.8 < rows["buffered"]["recv_call"] < 1.2
    assert 1.6 < rows["buffered"]["gettimeofday"] < 2.4
    #   TCP/CM is the baseline: no per-packet ioctls, no user-space ack recv
    assert rows["tcp_cm"]["ioctl"] == 0.0
    assert rows["tcp_cm"]["recv_call"] == 0.0
    print(result.to_text())
