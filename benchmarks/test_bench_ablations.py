"""Ablation benchmarks for the CM design choices called out in DESIGN.md."""

from repro.experiments import ablations


def test_bench_scheduler_ablation(benchmark, once):
    result = once(benchmark, ablations.run_scheduler_ablation)
    shares = {row[0]: row[3] for row in result.rows}
    fairness = {row[0]: row[4] for row in result.rows}
    assert abs(shares["round-robin"] - 0.5) < 0.1
    assert fairness["round-robin"] > 0.95
    assert shares["weighted 3:1"] > 0.6
    print(result.to_text())


def test_bench_controller_ablation(benchmark, once):
    result = once(benchmark, ablations.run_controller_ablation)
    throughputs = {row[0]: row[1] for row in result.rows}
    # Both controllers must make progress on a lossy path; the default
    # window controller is the TCP-compatible one the paper ships.  (Which
    # one comes out ahead on a single seeded run is noisy, so the assertion
    # only requires the default not to collapse.)
    assert all(value > 10 for value in throughputs.values())
    assert throughputs["aimd-window (default)"] > 0.3 * max(throughputs.values())
    print(result.to_text())


def test_bench_sharing_ablation(benchmark, once):
    result = once(benchmark, ablations.run_sharing_ablation)
    rows = {row[0]: row for row in result.rows}
    shared = rows["shared macroflow"]
    split = rows["cm_split (no sharing)"]
    # Sharing the macroflow makes the follow-up transfer much faster than
    # starting from scratch after cm_split.
    assert shared[2] < 0.7 * split[2]
    print(result.to_text())
