"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures through the
same ``repro.experiments`` harness the CLI uses, scaled down so the whole
suite finishes in a few minutes under the interpreter.  Each benchmark also
asserts the *shape* of the paper's result (who wins, by roughly what factor),
so ``pytest benchmarks/ --benchmark-only`` doubles as a reproduction check.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing the single-round runner."""
    return run_once
