"""Figure 5 benchmark: CPU overhead of the CM during bulk transfers."""

from repro.experiments import figure5


def test_bench_figure5_cpu_overhead(benchmark, once):
    result = once(benchmark, figure5.run, buffer_counts=(1_000, 5_000, 20_000))
    # The CM costs a little CPU, and for long transfers the difference
    # settles close to the paper's "slightly under 1%" (allow up to ~3 points
    # for the scaled-down transfers of this harness).
    final_difference = result.rows[-1][3]
    assert 0.0 < final_difference < 3.0
    # The difference must not grow with transfer length (it converges).
    assert result.rows[-1][3] <= result.rows[0][3] + 1.5
    print(result.to_text())
