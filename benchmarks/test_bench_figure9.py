"""Figure 9 benchmark: layered streaming over the rate-callback API."""

from repro.analysis import series_mean
from repro.experiments import figure8, figure9


def test_bench_figure9_rate_callback_adaptation(benchmark, once):
    schedule = ((0.0, 20e6), (8.0, 4e6), (14.0, 12e6))
    result = once(benchmark, figure9.run, duration=20.0, bandwidth_schedule=schedule)
    alf = figure8.run(duration=20.0, bandwidth_schedule=schedule)

    tx = result.series["transmission_rate"]
    rows = {r[0]: r[1] for r in result.rows}
    alf_rows = {r[0]: r[1] for r in alf.rows}

    # The rate-callback sender still adapts to the imposed bandwidth drop...
    before = series_mean([(t, v) for t, v in tx if 4.0 <= t < 8.0])
    during = series_mean([(t, v) for t, v in tx if 10.0 <= t < 14.0])
    assert before > 1.5 * during
    # ...but with far fewer notifications and fewer layer switches than the
    # ALF sender (the paper's Figure 8 vs Figure 9 contrast).
    assert rows["rate_callbacks"] < 200
    assert rows["layer_switches"] <= alf_rows["layer_switches"]
    print(result.to_text())
