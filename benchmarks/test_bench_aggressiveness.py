"""Benchmark: a CM ensemble competes like one flow, parallel TCPs do not."""

from repro.experiments import aggressiveness


def test_bench_ensemble_aggressiveness(benchmark, once):
    result = once(benchmark, aggressiveness.run, ensemble_sizes=(4,), duration=10.0)
    row = result.rows[0]
    _n, share_vs_cm, share_vs_independent, _ideal_single, ideal_independent = row
    # Against the CM ensemble the single reference flow keeps a share much
    # closer to one half; against 4 independent connections it is squeezed
    # towards 1/5.
    assert share_vs_cm > share_vs_independent + 0.1
    assert share_vs_cm > 0.3
    assert share_vs_independent < ideal_independent + 0.15
    print(result.to_text())
