"""Figure 8 benchmark: layered streaming over the ALF (request/callback) API."""

from repro.analysis import series_mean
from repro.experiments import figure8


def test_bench_figure8_alf_adaptation(benchmark, once):
    result = once(benchmark, figure8.run, duration=20.0,
                  bandwidth_schedule=((0.0, 20e6), (8.0, 4e6), (14.0, 12e6)))
    tx = result.series["transmission_rate"]
    rows = {r[0]: r[1] for r in result.rows}

    # The sender must actually adapt: high rate before the bandwidth drop,
    # clearly lower during it, and recovering afterwards.
    before = series_mean([(t, v) for t, v in tx if 4.0 <= t < 8.0])
    during = series_mean([(t, v) for t, v in tx if 9.0 <= t < 14.0])
    after = series_mean([(t, v) for t, v in tx if 16.0 <= t < 20.0])
    assert before > 1.5 * during
    assert after > during
    # ALF mode consults the CM constantly and oscillates between layers.
    assert rows["layer_switches"] >= 4
    assert result.series["cm_reported_rate"]
    print(result.to_text())
