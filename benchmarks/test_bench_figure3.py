"""Figure 3 benchmark: TCP/CM vs TCP/Linux throughput under loss."""

from repro.experiments import figure3


def test_bench_figure3_throughput_vs_loss(benchmark, once):
    result = once(
        benchmark,
        figure3.run,
        loss_rates=(0.0, 0.01, 0.03, 0.05),
        transfer_bytes=1_000_000,
        seeds=(1, 2),
    )
    cm = result.column("tcp_cm_kBps")
    linux = result.column("tcp_linux_kBps")

    # Shape of the paper's Figure 3: throughput falls monotonically-ish with
    # loss for both variants, starting near the receive-window limit
    # (~450-500 KB/s), and the two curves track each other.
    assert cm[0] > cm[-1] * 2
    assert linux[0] > linux[-1] * 2
    assert 350 < cm[0] < 600
    assert 350 < linux[0] < 600
    assert 0.85 < cm[0] / linux[0] < 1.15
    for cm_val, linux_val in zip(cm, linux):
        assert 0.35 < cm_val / linux_val < 1.6
    print(result.to_text())
