"""Microbenchmarks of the hot paths (not tied to a specific paper figure).

These are conventional pytest-benchmark measurements (many rounds) of the
CM's request/grant/notify/update cycle and of the simulation engine itself;
they exist so that performance regressions in the core are visible
independently of the full experiment harnesses.
"""

from repro import CongestionManager, HostCosts
from repro.core import CM_NO_CONGESTION
from repro.netsim import Host, Simulator
from repro.netsim.engine import Timer


def build_cm_host():
    sim = Simulator()
    host = Host(sim, "bench", "10.0.0.1", costs=HostCosts())
    cm = CongestionManager(host)
    return sim, host, cm


def test_bench_cm_request_grant_cycle(benchmark):
    sim, _host, cm = build_cm_host()
    fid = cm.cm_open("10.0.0.1", "10.0.0.2", 1000, 80, "tcp")
    cm.cm_register_send(fid, lambda flow_id: None)

    def cycle():
        cm.cm_request(fid)
        sim.run()          # deliver the grant callback
        cm.cm_notify(fid, 1448)
        cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.01)

    benchmark(cycle)


def test_bench_cm_query(benchmark):
    _sim, _host, cm = build_cm_host()
    fid = cm.cm_open("10.0.0.1", "10.0.0.2", 1000, 80, "tcp")
    benchmark(cm.cm_query, fid)


def test_bench_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(2000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()

    benchmark(run_events)


def test_bench_flow_open_close(benchmark):
    sim, _host, cm = build_cm_host()
    counter = iter(range(10_000_000))

    def open_close():
        port = 10_000 + next(counter)
        fid = cm.cm_open("10.0.0.1", "10.0.0.2", port, 80, "tcp")
        cm.cm_close(fid)

    benchmark(open_close)


def test_bench_timer_restart_coalescing(benchmark):
    """The per-ACK RTO refresh pattern: restarts that push the deadline back."""
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(0.05)

    def restart_wave():
        for _ in range(100):
            timer.restart(0.05)

    benchmark(restart_wave)


def test_bench_batched_grant_dispatch(benchmark):
    """Many pending requests released in one window opening (bulk-server case)."""
    sim, _host, cm = build_cm_host()
    flow_ids = []
    for i in range(16):
        fid = cm.cm_open("10.0.0.1", "10.0.0.2", 20_000 + i, 80, "tcp")
        cm.cm_register_send(fid, lambda flow_id: None)
        flow_ids.append(fid)
    macroflow = cm.macroflow_of(flow_ids[0])
    macroflow.controller._cwnd = 1e9
    scheduler = macroflow.scheduler

    def dispatch_burst():
        for fid in flow_ids:
            for _ in range(8):
                scheduler.enqueue(fid)
        cm._maybe_grant(macroflow)
        sim.run()
        macroflow.reserved_bytes = 0.0
        for flow in macroflow.flows.values():
            flow.granted_unnotified = 0

    benchmark(dispatch_burst)
