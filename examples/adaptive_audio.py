#!/usr/bin/env python3
"""Interactive audio (vat) made adaptive with the CM (paper §3.6, Figure 2).

A 64 kbit/s constant-bit-rate audio source cannot change its encoding, so it
adapts by *preemptively dropping* frames to match what the CM says the path
can carry: audio -> policer -> small application buffer (drop-from-head) ->
CM-paced UDP socket.

The example runs the same application over two paths — one with plenty of
capacity, one too slow for the full stream — and shows how the policer sheds
load on the constrained path while keeping end-to-end delay low.

Run it with::

    python examples/adaptive_audio.py
"""

from repro import CongestionManager, HostCosts
from repro.apps import VatApplication
from repro.netsim import Channel, Host, Simulator
from repro.transport.udp import AckReflector

RUN_SECONDS = 30.0


def run_path(label: str, rate_bps: float) -> None:
    sim = Simulator()
    sender = Host(sim, "vat-sender", "10.1.0.1", costs=HostCosts())
    receiver = Host(sim, "vat-receiver", "10.2.0.1", costs=HostCosts())
    Channel(sim, sender, receiver, rate_bps=rate_bps, one_way_delay=0.025,
            queue_limit=12, seed=7)
    CongestionManager(sender)
    reflector = AckReflector(receiver, port=4000)

    vat = VatApplication(sender, receiver.addr, 4000)
    vat.start()
    sim.run(until=RUN_SECONDS)
    vat.stop()

    sent_fraction = vat.frames_sent / max(1, vat.frames_generated)
    print(f"\n--- {label} ({rate_bps / 1000:.0f} kbit/s path) ---")
    print(f"  frames generated        : {vat.frames_generated}")
    print(f"  frames transmitted      : {vat.frames_sent} ({sent_fraction:.0%})")
    print(f"  dropped by policer      : {vat.frames_dropped_by_policer}")
    print(f"  dropped by audio buffer : {vat.frames_dropped_by_buffer}")
    print(f"  frames acknowledged     : {vat.frames_acked}")
    print(f"  mean delivery delay     : {vat.mean_delivery_delay() * 1000:.1f} ms")
    print(f"  CM rate callbacks       : {len(vat.rate_updates)}")
    reflector.close()


def main() -> None:
    run_path("uncongested path", 1_000_000)
    run_path("constrained path", 48_000)


if __name__ == "__main__":
    main()
