#!/usr/bin/env python3
"""Layered streaming media server adapting to a changing path (paper §3.4).

Two servers stream the same layered content to two clients over a wide-area
path whose bandwidth is cut and later restored mid-run:

* one uses the ALF (request/callback) API — it asks the CM before every
  packet and picks the layer from ``cm_query`` at the last moment;
* one uses the rate-callback API — it is self-clocked at the current
  layer's nominal rate and only switches layers when ``cmapp_update`` fires.

The output shows how each adapts: the ALF sender reacts to every change,
the rate-callback sender switches in coarser, threshold-driven steps.

Run it with::

    python examples/layered_streaming.py
"""

from repro import CongestionManager, HostCosts
from repro.apps import LayeredStreamingServer
from repro.netsim import Channel, Host, Simulator
from repro.transport.udp import AckReflector

DURATION = 24.0


def run_mode(mode: str) -> LayeredStreamingServer:
    sim = Simulator()
    sender = Host(sim, "server", "10.1.0.1", costs=HostCosts())
    client = Host(sim, "client", "10.2.0.1", costs=HostCosts())
    channel = Channel(sim, sender, client, rate_bps=20e6, one_way_delay=0.0375,
                      queue_limit=60, seed=11)
    CongestionManager(sender)
    reflector = AckReflector(client, port=9001)
    server = LayeredStreamingServer(sender, client.addr, 9001, mode=mode)

    # Halve-and-restore the available bandwidth during the run.
    sim.schedule(8.0, channel.set_rate, 4e6)
    sim.schedule(16.0, channel.set_rate, 12e6)

    server.start()
    sim.run(until=DURATION)
    server.stop()
    reflector.close()
    return server


def describe(server: LayeredStreamingServer, mode: str) -> None:
    series = server.transmission_series()
    print(f"\n--- {mode} mode ---")
    print(f"  packets sent   : {server.packets_sent}")
    print(f"  layer switches : {max(0, len(server.layer_history) - 1)}")
    callbacks = len(server.reported_rates) if mode == "rate" else "n/a (queried per packet)"
    print(f"  rate callbacks : {callbacks}")
    print("  transmission rate over time (KB/s):")
    for t, rate in series[:: max(1, len(series) // 12)]:
        bar = "#" * int(rate / 50_000)
        print(f"    t={t:5.1f}s {rate / 1000:8.1f}  {bar}")


def main() -> None:
    for mode in ("alf", "rate"):
        server = run_mode(mode)
        describe(server, mode)


if __name__ == "__main__":
    main()
