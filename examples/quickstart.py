#!/usr/bin/env python3
"""Quickstart: an adaptive sender using the Congestion Manager's callback API.

This example builds the smallest complete CM application:

1. a simulated sender and receiver joined by a 2 Mbit/s, 80 ms path;
2. a Congestion Manager installed on the sender;
3. a user-space application (via libcm) that asks the CM for permission to
   send (``cm_request``), transmits one datagram per ``cmapp_send`` grant,
   checks ``cm_query`` to see how fast the path currently looks, and feeds
   the receiver's acknowledgements back with ``cm_update``;
4. a receiver that simply acknowledges every datagram.

Run it with::

    python examples/quickstart.py
"""

from repro import CongestionManager, HostCosts, LibCM
from repro.netsim import Channel, Host, Simulator
from repro.transport.udp import AckReflector, AppFeedbackTracker, UDPSocket

PACKET_BYTES = 1200
PACKETS_TO_SEND = 400


def main() -> None:
    # --- the simulated network ------------------------------------------------
    sim = Simulator()
    sender = Host(sim, "sender", "10.0.0.1", costs=HostCosts())
    receiver = Host(sim, "receiver", "10.0.0.2", costs=HostCosts())
    Channel(sim, sender, receiver, rate_bps=2e6, one_way_delay=0.04, queue_limit=40, seed=1)

    # --- the Congestion Manager and the receiving application -----------------
    CongestionManager(sender)
    reflector = AckReflector(receiver, port=9000)

    # --- the adaptive sending application --------------------------------------
    libcm = LibCM(sender)
    socket = UDPSocket(sender)
    socket.connect(receiver.addr, 9000)
    flow = libcm.cm_open(sender.addr, receiver.addr, socket.local_port, 9000, "udp")

    tracker = AppFeedbackTracker()
    state = {"sent": 0, "acked_bytes": 0}

    def cmapp_send(flow_id: int) -> None:
        """The CM granted permission to send up to one MTU."""
        if state["sent"] >= PACKETS_TO_SEND:
            libcm.cm_notify(flow_id, 0)      # decline: nothing left to send
            return
        seq = state["sent"]
        state["sent"] += 1
        socket.send(PACKET_BYTES, headers={"seq": seq, "ts": sim.now})
        tracker.on_sent(seq, PACKET_BYTES)
        libcm.cm_request(flow_id)            # keep one request in the pipeline

    def on_ack(packet) -> None:
        """Receiver feedback: tell the CM what got through and how fast."""
        report = tracker.on_ack(packet.headers["ack_seq"], packet.headers["ts_echo"], sim.now)
        if report is None:
            return
        state["acked_bytes"] += report.nrecd
        libcm.cm_update(flow, report.nsent, report.nrecd, report.lossmode, report.rtt)

    socket.on_receive = on_ack
    libcm.cm_register_send(flow, cmapp_send)

    # Prime the pipeline with a couple of requests and let the simulation run.
    libcm.cm_request(flow)
    libcm.cm_request(flow)
    sim.run(until=20.0)

    status = libcm.cm_query(flow)
    print("quickstart: adaptive CM sender")
    print(f"  packets sent        : {state['sent']}")
    print(f"  bytes acknowledged  : {state['acked_bytes']}")
    print(f"  CM rate estimate    : {status.rate / 1000:.1f} KB/s "
          f"({status.bandwidth_bps / 1e6:.2f} Mbit/s)")
    print(f"  smoothed RTT        : {status.srtt * 1000:.1f} ms")
    print(f"  congestion window   : {status.cwnd_bytes:.0f} bytes")
    print(f"  loss rate estimate  : {status.loss_rate:.3f}")
    print(f"  acks seen by client : {reflector.acks_sent}")


if __name__ == "__main__":
    main()
