#!/usr/bin/env python3
"""Sharing congestion state across web requests (paper §4.3, Figure 7).

A client fetches the same 128 kB file repeatedly from a web server, each
fetch on a brand-new TCP connection.  With a plain TCP stack every
connection slow-starts from scratch; with the Congestion Manager on the
server, all connections to the client share one macroflow, so later fetches
inherit the congestion window and RTT estimate that earlier ones built up
and finish much sooner.

Run it with::

    python examples/web_transfer.py
"""

from repro import CongestionManager, HostCosts
from repro.apps import FileServer, WebClient
from repro.netsim import Channel, Host, Simulator

FILE_SIZE = 128 * 1024
N_REQUESTS = 9
SPACING = 0.5


def run_variant(variant: str) -> list:
    sim = Simulator()
    server_host = Host(sim, "server", "10.1.0.1", costs=HostCosts())
    client_host = Host(sim, "client", "10.2.0.1", costs=HostCosts())
    Channel(sim, server_host, client_host, rate_bps=16e6, one_way_delay=0.0375,
            queue_limit=60, seed=3)
    if variant == "cm":
        CongestionManager(server_host)
    server = FileServer(server_host, 80, variant=variant)
    client = WebClient(client_host, server_host.addr, 80)
    for index in range(N_REQUESTS):
        sim.schedule(index * SPACING, client.fetch, FILE_SIZE)
    sim.run(until=N_REQUESTS * SPACING + 60.0)
    durations = [fetch.duration * 1000 for fetch in client.fetches]
    server.close()
    client.close()
    return durations


def main() -> None:
    cm = run_variant("cm")
    linux = run_variant("linux")
    print("Sequential 128 kB fetches, new TCP connection each time (ms per request)\n")
    print("request   TCP/CM    TCP/Linux   CM saving")
    for index, (a, b) in enumerate(zip(cm, linux), start=1):
        saving = (b - a) / b * 100 if b else 0.0
        print(f"   {index:2d}    {a:8.1f}   {b:8.1f}   {saving:7.1f}%")
    later_cm = sum(cm[2:]) / len(cm[2:])
    later_linux = sum(linux[2:]) / len(linux[2:])
    print(f"\nWarm requests improve by {(later_linux - later_cm) / later_linux:.0%} "
          f"with the Congestion Manager (paper reports ~40%).")


if __name__ == "__main__":
    main()
