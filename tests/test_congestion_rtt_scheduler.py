"""Unit tests for the CM's congestion controllers, RTT estimator and schedulers."""

import pytest

from repro.core import (
    AimdWindowController,
    RateAimdController,
    RoundRobinScheduler,
    RttEstimator,
    WeightedRoundRobinScheduler,
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
)
from repro.core.constants import MAX_RTO_SECONDS, MIN_RTO_SECONDS

MTU = 1500


class TestAimdWindowController:
    def test_initial_window_default_one_mtu(self):
        assert AimdWindowController(MTU).cwnd == MTU

    def test_initial_window_configurable(self):
        assert AimdWindowController(MTU, initial_window_mtus=2).cwnd == 2 * MTU

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AimdWindowController(0)
        with pytest.raises(ValueError):
            AimdWindowController(MTU, initial_window_mtus=0)

    def test_slow_start_doubles_per_window_of_acks(self):
        controller = AimdWindowController(MTU)
        controller.on_ack(MTU)
        assert controller.cwnd == pytest.approx(2 * MTU)
        controller.on_ack(2 * MTU)
        assert controller.cwnd == pytest.approx(4 * MTU)

    def test_slow_start_growth_capped_per_ack(self):
        controller = AimdWindowController(MTU)
        controller.on_ack(100 * MTU)  # one giant cumulative report
        assert controller.cwnd == pytest.approx(2 * MTU)

    def test_congestion_avoidance_linear(self):
        controller = AimdWindowController(MTU, ssthresh_bytes=2 * MTU)
        controller.on_ack(2 * MTU)   # still slow start until ssthresh
        start = controller.cwnd
        controller.on_ack(int(start))  # one full window of acks in CA
        assert controller.cwnd == pytest.approx(start + MTU, rel=0.01)

    def test_transient_congestion_halves(self):
        controller = AimdWindowController(MTU)
        for _ in range(6):
            controller.on_ack(int(controller.cwnd))
        before = controller.cwnd
        controller.on_congestion(CM_TRANSIENT_CONGESTION)
        assert controller.cwnd == pytest.approx(before / 2)
        assert controller.transient_events == 1

    def test_persistent_congestion_collapses_to_one_mtu(self):
        controller = AimdWindowController(MTU)
        for _ in range(6):
            controller.on_ack(int(controller.cwnd))
        controller.on_congestion(CM_PERSISTENT_CONGESTION)
        assert controller.cwnd == MTU
        assert controller.ssthresh >= 2 * MTU

    def test_ecn_halves_without_loss(self):
        controller = AimdWindowController(MTU)
        for _ in range(4):
            controller.on_ack(int(controller.cwnd))
        before = controller.cwnd
        controller.on_congestion(CM_ECN_CONGESTION)
        assert controller.cwnd == pytest.approx(before / 2)
        assert controller.ecn_events == 1

    def test_window_never_below_one_mtu(self):
        controller = AimdWindowController(MTU)
        for _ in range(5):
            controller.on_congestion(CM_PERSISTENT_CONGESTION)
        assert controller.cwnd >= MTU

    def test_window_respects_max(self):
        controller = AimdWindowController(MTU, max_window_bytes=4 * MTU)
        for _ in range(10):
            controller.on_ack(int(controller.cwnd))
        assert controller.cwnd <= 4 * MTU

    def test_no_congestion_mode_is_noop(self):
        controller = AimdWindowController(MTU)
        controller.on_congestion(CM_NO_CONGESTION)
        assert controller.cwnd == MTU

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            AimdWindowController(MTU).on_congestion("bogus")

    def test_zero_or_negative_ack_ignored(self):
        controller = AimdWindowController(MTU)
        controller.on_ack(0)
        controller.on_ack(-5)
        assert controller.cwnd == MTU

    def test_rate_estimate_uses_srtt(self):
        controller = AimdWindowController(MTU)
        assert controller.rate_estimate(0.1) == pytest.approx(MTU / 0.1)
        assert controller.rate_estimate(0) > 0  # falls back to a default RTT

    def test_idle_restart_sets_ssthresh(self):
        controller = AimdWindowController(MTU)
        for _ in range(4):
            controller.on_ack(int(controller.cwnd))
        controller.on_idle_restart()
        assert controller.ssthresh == pytest.approx(controller.cwnd)
        assert not controller.in_slow_start()

    def test_dispatch_update_applies_congestion_before_growth(self):
        controller = AimdWindowController(MTU)
        for _ in range(4):
            controller.on_ack(int(controller.cwnd))
        before = controller.cwnd
        controller.dispatch_update(MTU, CM_TRANSIENT_CONGESTION)
        assert controller.cwnd <= before / 2 + MTU


class TestRateAimdController:
    def test_initial_rate(self):
        controller = RateAimdController(MTU, initial_rate_bps=80_000)
        assert controller.rate_estimate(0.1) == pytest.approx(10_000)

    def test_rate_grows_with_acks(self):
        controller = RateAimdController(MTU)
        before = controller.rate_estimate(0.2)
        for _ in range(50):
            controller.on_ack(10 * MTU)
        assert controller.rate_estimate(0.2) > before

    def test_rate_halves_on_congestion(self):
        controller = RateAimdController(MTU)
        for _ in range(50):
            controller.on_ack(10 * MTU)
        before = controller.rate_estimate(0.2)
        controller.on_congestion(CM_TRANSIENT_CONGESTION)
        assert controller.rate_estimate(0.2) == pytest.approx(before / 2, rel=0.01)

    def test_rate_floor(self):
        controller = RateAimdController(MTU, min_rate_bps=8000)
        for _ in range(20):
            controller.on_congestion(CM_PERSISTENT_CONGESTION)
        assert controller.rate_estimate(0.2) >= 1000  # 8000 bps = 1000 B/s

    def test_cwnd_equivalent_positive(self):
        assert RateAimdController(MTU).cwnd >= MTU


class TestRttEstimator:
    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.sample(0.1)
        assert est.smoothed_rtt() == pytest.approx(0.1)
        assert est.deviation() == pytest.approx(0.05)

    def test_ewma_converges(self):
        est = RttEstimator()
        for _ in range(100):
            est.sample(0.2)
        assert est.smoothed_rtt() == pytest.approx(0.2, rel=1e-3)
        assert est.deviation() == pytest.approx(0.0, abs=0.01)

    def test_non_positive_samples_ignored(self):
        est = RttEstimator()
        est.sample(0.0)
        est.sample(-1.0)
        assert not est.has_samples

    def test_default_before_samples(self):
        est = RttEstimator(initial_rtt=0.3)
        assert est.smoothed_rtt() == pytest.approx(0.3)

    def test_rto_clamped(self):
        est = RttEstimator()
        est.sample(0.001)
        assert est.rto() >= MIN_RTO_SECONDS
        est2 = RttEstimator()
        est2.sample(100.0)
        assert est2.rto() <= MAX_RTO_SECONDS

    def test_reset(self):
        est = RttEstimator()
        est.sample(0.1)
        est.reset()
        assert not est.has_samples


class TestRoundRobinScheduler:
    def test_single_flow_fifo(self):
        sched = RoundRobinScheduler()
        for _ in range(3):
            sched.enqueue(1)
        assert [sched.next_flow() for _ in range(3)] == [1, 1, 1]
        assert sched.next_flow() is None

    def test_round_robin_interleaves(self):
        sched = RoundRobinScheduler()
        for _ in range(2):
            sched.enqueue(1)
            sched.enqueue(2)
        order = [sched.next_flow() for _ in range(4)]
        assert order == [1, 2, 1, 2]

    def test_pending_counts(self):
        sched = RoundRobinScheduler()
        sched.enqueue(1)
        sched.enqueue(1)
        sched.enqueue(2)
        assert sched.pending_requests() == 3
        assert sched.pending_requests(1) == 2
        assert sched.has_pending()

    def test_remove_flow_discards_requests(self):
        sched = RoundRobinScheduler()
        sched.enqueue(1)
        sched.enqueue(2)
        sched.remove_flow(1)
        assert sched.pending_requests() == 1
        assert sched.next_flow() == 2

    def test_no_flow_starved(self):
        sched = RoundRobinScheduler()
        for _ in range(100):
            sched.enqueue(1)
        sched.enqueue(2)
        served = [sched.next_flow() for _ in range(5)]
        assert 2 in served


class TestWeightedRoundRobinScheduler:
    def test_default_weight_behaves_like_round_robin(self):
        sched = WeightedRoundRobinScheduler()
        for _ in range(2):
            sched.enqueue(1)
            sched.enqueue(2)
        assert sorted([sched.next_flow() for _ in range(4)]) == [1, 1, 2, 2]

    def test_weights_bias_service(self):
        sched = WeightedRoundRobinScheduler()
        sched.set_weight(1, 3)
        for _ in range(30):
            sched.enqueue(1)
            sched.enqueue(2)
        first_twelve = [sched.next_flow() for _ in range(12)]
        assert first_twelve.count(1) > first_twelve.count(2)

    def test_all_requests_eventually_served(self):
        sched = WeightedRoundRobinScheduler()
        sched.set_weight(1, 5)
        for _ in range(10):
            sched.enqueue(1)
            sched.enqueue(2)
        served = []
        while sched.has_pending():
            served.append(sched.next_flow())
        assert served.count(1) == 10 and served.count(2) == 10

    def test_invalid_weight_rejected(self):
        sched = WeightedRoundRobinScheduler()
        with pytest.raises(ValueError):
            sched.set_weight(1, 0)
        with pytest.raises(ValueError):
            WeightedRoundRobinScheduler(default_weight=0)

    def test_remove_flow(self):
        sched = WeightedRoundRobinScheduler()
        sched.enqueue(1)
        sched.enqueue(2)
        sched.remove_flow(2)
        assert sched.next_flow() == 1
        assert sched.next_flow() is None

    def test_empty_returns_none(self):
        assert WeightedRoundRobinScheduler().next_flow() is None
