"""The `hostile` and `burstloss` registry experiments.

Both ride the realism features added to the link/workload layers: `hostile`
drives the unresponsive ``udp_blast`` workload against managed CM flows,
`burstloss` sweeps the Gilbert-Elliott fade length at a fixed long-run loss
rate.  The tests pin the registry contract (smoke kwargs, seeds support,
jobs-invariant reduction) and the acceptance metrics the ISSUE names:
intra-CM Jain fairness >= 0.9 under the blast, and a well-formed
goodput-vs-burstiness curve with a Bernoulli baseline row.
"""

import math

import pytest

from repro.experiments import burstloss, hostile
from repro.experiments.parallel import run_trials
from repro.experiments.registry import get_spec


class TestRegistryContract:
    @pytest.mark.parametrize("name", ["hostile", "burstloss"])
    def test_registered_with_smoke_and_seeds(self, name):
        spec = get_spec(name)
        assert spec.supports_seeds
        assert spec.smoke  # CI --smoke runs need reduced kwargs
        # The smoke kwargs must be valid trial-enumeration arguments.
        specs = spec.trials(**spec.smoke)
        assert specs and all(t.experiment == name for t in specs)

    def test_cli_knows_the_new_names(self):
        from repro.experiments import runner

        assert "hostile" in runner.EXPERIMENTS
        assert "burstloss" in runner.EXPERIMENTS


class TestHostile:
    def test_cm_flows_stay_fair_under_blast(self):
        # The ISSUE's acceptance metric: Jain over the CM flows >= 0.9 while
        # an unresponsive blast occupies half the bottleneck.
        value = hostile.run_trial(
            {"blast_fraction": 0.5, "duration": 8.0, "seed": 1})
        assert value["cm_jain_fairness"] >= 0.9
        # The blast is unresponsive: it delivers ~its configured rate.
        assert value["blast_goodput_Bps"] == pytest.approx(
            0.5 * hostile.BOTTLENECK_BPS / 8.0, rel=0.10)

    def test_zero_fraction_trial_has_no_blast(self):
        spec = hostile.hostile_spec(0.0, 4.0)
        assert spec.workloads == []
        value = hostile.run_trial(
            {"blast_fraction": 0.0, "duration": 4.0, "seed": 1})
        assert value["blast_goodput_Bps"] == 0.0
        assert value["cm_goodput_Bps"] > 0.0

    def test_reduce_is_jobs_invariant_and_notes_acceptance(self):
        specs = hostile.trials(blast_fractions=(0.0, 0.5), duration=6.0,
                               seeds=(1,))
        serial = hostile.reduce(run_trials(specs, jobs=1)).to_json()
        pooled = hostile.reduce(run_trials(specs, jobs=2)).to_json()
        assert serial == pooled
        assert "Jain fairness >= 0.9" in serial
        assert "PASS" in serial


class TestBurstloss:
    def test_ge_params_hit_the_target_rate_and_burst(self):
        for loss, burst in [(0.03, 1), (0.03, 8), (0.2, 4)]:
            params = burstloss.ge_params(loss, burst)
            p_gb, p_bg = params["p_good_bad"], params["p_bad_good"]
            assert p_bg == pytest.approx(1.0 / burst)
            # Stationary loss rate of the on/off chain recovers the target.
            assert p_gb / (p_gb + p_bg) == pytest.approx(loss)
            assert 0.0 < p_gb <= 1.0

    def test_ge_params_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            burstloss.ge_params(0.0, 4)
        with pytest.raises(ValueError):
            burstloss.ge_params(0.03, 0.5)

    def test_burst_zero_is_the_bernoulli_baseline(self):
        spec = burstloss.burstloss_spec(0, 0.03, 5.0)
        lossy = next(l for l in spec.graph.links if l.a == "r0")
        assert lossy.loss is None and lossy.loss_rate == 0.03
        spec_ge = burstloss.burstloss_spec(4, 0.03, 5.0)
        lossy_ge = next(l for l in spec_ge.graph.links if l.a == "r0")
        assert lossy_ge.loss["kind"] == "gilbert_elliott"
        assert lossy_ge.loss_rate == 0.0

    def test_observed_loss_tracks_the_configured_rate(self):
        # 10 s at ~3% loss: the empirical rate should land in the right
        # ballpark for both correlation structures.
        for burst in (0, 4):
            value = burstloss.run_trial(
                {"burst_length": burst, "loss_rate": 0.03, "duration": 10.0,
                 "seed": 1})
            assert 0.005 <= value["observed_loss"] <= 0.10
            assert value["goodput_Bps"] > 0.0

    def test_reduce_labels_the_baseline_row(self):
        specs = burstloss.trials(burst_lengths=(0, 2), duration=6.0, seeds=(1,))
        result = burstloss.reduce(run_trials(specs, jobs=1))
        labels = [row[0] for row in result.rows]
        assert "bernoulli" in labels and 2 in labels
        assert all(not (isinstance(x, float) and math.isnan(x))
                   for row in result.rows for x in row[1:])
