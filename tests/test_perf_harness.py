"""The perf harness must produce a well-formed report and sane baselines."""

import json

from repro.perf import harness
from repro.perf.legacy import LegacySimulator, LegacyTimer, unbatched_maybe_grant


class TestWorkloads:
    def test_event_churn_workload_runs_both_engines(self):
        from repro.netsim.engine import Simulator

        assert harness._event_churn_workload(Simulator, 200) > 0
        assert harness._event_churn_workload(LegacySimulator, 200) > 0

    def test_timer_restart_workload_runs_both_engines(self):
        from repro.netsim.engine import Simulator, Timer

        assert harness._timer_restart_workload(Simulator, Timer, 200) > 0
        assert harness._timer_restart_workload(LegacySimulator, LegacyTimer, 200) > 0

    def test_grant_workload_grants_everything(self):
        sim, cm, flow_ids = harness._build_grant_testbed(4)
        harness._grant_dispatch_workload(cm._maybe_grant, sim, cm, flow_ids, 8)
        macroflow = cm.macroflow_of(flow_ids[0])
        for flow in macroflow.flows.values():
            assert flow.stats.grants == 8
        # And the legacy loop on the same testbed doubles the counters.
        harness._grant_dispatch_workload(
            lambda mf: unbatched_maybe_grant(cm, mf), sim, cm, flow_ids, 8
        )
        for flow in macroflow.flows.values():
            assert flow.stats.grants == 16

    def test_experiments_parallel_benchmark_row(self):
        import os

        result = harness.bench_experiments_parallel(
            n_seeds=2, transfer_bytes=40_000, jobs=2, repeats=1
        )
        # 1 loss rate x 2 variants x 2 seeds.
        assert result.ops == 4
        assert result.wall_s > 0
        payload = result.to_dict()
        assert payload["jobs"] == 2.0
        assert payload["cpu_count"] >= 1.0
        assert "figure3 trials" in payload["notes"]
        if (os.cpu_count() or 1) >= 2:
            assert result.speedup is not None and result.speedup > 0
        else:
            # One core: a jobs=2 pool cannot scale, and the row must say
            # so instead of publishing overhead as a "speedup".
            assert result.speedup is None
            assert "baseline skipped" in payload["notes"]

    def test_experiments_parallel_skips_speedup_when_oversubscribed(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        result = harness.bench_experiments_parallel(
            n_seeds=1, transfer_bytes=40_000, jobs=2, repeats=1
        )
        assert result.speedup is None
        assert result.baseline_wall_s is None
        assert "jobs=2 > cpu_count=1" in result.notes
        assert result.to_dict()["cpu_count"] == 1.0

    def test_scenario_build_benchmark_row(self):
        result = harness.bench_scenario_build(builds=20, repeats=1)
        assert result.ops == 20
        assert result.wall_s > 0
        assert result.speedup is not None and result.speedup > 0
        assert "ScenarioSpec" in result.notes

    def test_graph_build_benchmark_row(self):
        result = harness.bench_graph_build(builds=5, repeats=1)
        assert result.ops == 5
        assert result.wall_s > 0
        assert result.speedup is None  # no seed baseline existed for graphs
        payload = result.to_dict()
        assert payload["nodes"] > 30
        assert payload["links"] > 40
        assert "shortest-path" in payload["notes"]

    def test_red_queue_benchmark_row(self):
        result = harness.bench_red_queue(n=500, repeats=1)
        assert result.ops == 500
        assert result.wall_s > 0
        # The pair shares everything but the aqm block, so the overhead
        # factor exists and is a sane ratio (not a 10x blowup either way).
        assert result.speedup is not None and 0.2 < result.speedup < 5.0
        assert "RED" in result.notes and "overhead factor" in result.notes

    def test_gilbert_elliott_churn_benchmark_row(self):
        result = harness.bench_gilbert_elliott_churn(duration=1.0, repeats=1)
        assert result.ops > 0  # packets actually crossed the lossy hop
        assert result.wall_s > 0
        assert result.speedup is not None and 0.2 < result.speedup < 5.0
        assert "Bernoulli" in result.notes

    def test_shard_scaling_benchmark_row(self):
        import os

        result = harness.bench_shard_scaling(shards=2, repeats=1)
        assert result.ops == 1
        assert result.wall_s > 0
        payload = result.to_dict()
        assert payload["shards"] == 2.0
        assert payload["cpu_count"] == float(os.cpu_count() or 1)
        if (os.cpu_count() or 1) < 2:
            # Single core: no honest scaling number exists, so none is faked.
            assert result.speedup is None
            assert "baseline skipped" in result.notes
        else:
            assert result.speedup is not None and result.speedup > 0

    def test_scale_sharded_benchmark_row_counts_hosts(self):
        result = harness.bench_scale_sharded(
            hosts_per_cluster=8, flows_per_cluster=2, transfer_bytes=30_000,
            horizon=0.5, shards=2, repeats=1)
        assert result.ops == 16
        payload = result.to_dict()
        assert payload["hosts"] == 16.0
        assert "barbell" in result.notes

    def test_barbell_spec_validates_and_cuts_on_the_trunk(self):
        from repro.netsim.parallel import partition_graph

        spec = harness._barbell_spec(8, 2, 30_000, 1.0)
        spec.validate()
        part = partition_graph(spec, 2)
        assert part.shards == 2
        assert part.cut_pairs == frozenset({("r0", "r1")})
        # Each cluster stays whole on its own shard.
        for cluster in range(2):
            shard_ids = {part.shard_of[f"c{cluster}h{i}"] for i in range(8)}
            assert shard_ids == {part.shard_of[f"r{cluster}"]}

    def test_workload_churn_benchmark_row(self):
        result = harness.bench_workload_churn(duration=1.0, repeats=1)
        # ops = flows attached+detached; at 40/s over 1 simulated second the
        # generator must have churned a nontrivial number of flows.
        assert result.ops >= 10
        assert result.wall_s > 0
        assert "attach" in result.notes

    def test_scenario_build_holds_the_perf_floor(self):
        # The declarative compile path (memoized sealed pair specs +
        # content-keyed validation cache) must stay within 10% of the
        # hand-wired legacy construction.  Warm everything once, then take
        # the best of a few attempts — wall-clock ratios on shared CI
        # machines are noisy, but the floor must be reachable.
        harness.bench_scenario_build(builds=50, repeats=1)
        best = 0.0
        for _ in range(3):
            result = harness.bench_scenario_build(builds=400, repeats=3)
            best = max(best, result.speedup)
            if best >= 0.9:
                break
        assert best >= 0.9, f"scenario_build fell to x{best:.3f} of the legacy path"

    def test_legacy_pair_matches_spec_compiled_testbed(self):
        from repro.experiments.topology import build_testbed, dummynet_pair_spec
        from repro.perf.legacy import legacy_dummynet_pair

        testbed = build_testbed(dummynet_pair_spec(loss_rate=0.01), seed=5)
        _sim, sender, receiver, channel = legacy_dummynet_pair(loss_rate=0.01, seed=5)
        assert (sender.addr, receiver.addr) == (testbed.sender.addr, testbed.receiver.addr)
        assert channel.rate_bps == testbed.channel.rate_bps
        assert channel.rtt == testbed.channel.rtt
        assert channel.forward.loss_rate == testbed.channel.forward.loss_rate
        assert channel.reverse.loss_rate == testbed.channel.reverse.loss_rate == 0.0

    def test_legacy_simulator_matches_current_semantics(self):
        from repro.netsim.engine import Simulator

        def trace(sim_cls):
            sim = sim_cls()
            order = []
            sim.schedule(0.2, order.append, "b")
            sim.schedule(0.1, order.append, "a")
            event = sim.schedule(0.15, order.append, "x")
            event.cancel()
            timer_hits = []
            sim.schedule(0.05, lambda: timer_hits.append(sim.now))
            sim.run()
            return order, timer_hits

        assert trace(Simulator) == trace(LegacySimulator)


class TestReport:
    def test_report_structure_and_json_round_trip(self, tmp_path):
        result = harness.bench_event_churn(n=300, repeats=1)
        assert result.ops == 300
        assert result.ops_per_sec > 0
        assert result.baseline_ops_per_sec > 0
        assert result.speedup is not None and result.speedup > 0

        payload = result.to_dict()
        for key in ("ops", "wall_s", "ops_per_sec", "baseline_wall_s", "speedup"):
            assert key in payload

        report = {
            "meta": {"label": "TEST", "quick": True},
            "benchmarks": {result.name: payload},
        }
        out = tmp_path / "bench.json"
        harness.write_report(report, str(out))
        assert json.loads(out.read_text())["benchmarks"]["event_churn"]["ops"] == 300

    def test_format_report_mentions_every_benchmark(self):
        report = {
            "meta": {"label": "TEST", "quick": True},
            "benchmarks": {
                "thing": {"ops_per_sec": 10.0, "wall_s": 0.5, "speedup": 2.0},
                "other": {"ops_per_sec": 5.0, "wall_s": 0.1},
            },
        }
        text = harness.format_report(report)
        assert "thing" in text and "other" in text and "x2.00 vs seed" in text
