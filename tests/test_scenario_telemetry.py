"""Telemetry through the scenario layer: spec block, runner, CLI, experiment.

The end-to-end contracts of the PR-4 telemetry wiring:

* the ``telemetry:`` block validates eagerly and round-trips strictly;
* ``ScenarioResult`` gains deterministic per-probe time series;
* a ``--trace`` JSONL file is byte-identical per ``(spec, seed)``;
* probes-on vs probes-off produces identical non-telemetry results;
* the ``timeseries`` experiment is registered and byte-stable.
"""

import json

import pytest

from repro.scenario import (
    ScenarioSpec,
    SpecError,
    TelemetrySpec,
    get_preset,
    run,
)
from repro.scenario.cli import main as scenario_main


def streaming_spec(until=4.0, telemetry=None):
    spec = get_preset("libcm_select_streaming")
    spec.stop.until = until
    spec.telemetry = telemetry
    return spec


class TestTelemetrySpecValidation:
    def test_defaults_validate(self):
        spec = streaming_spec(telemetry=TelemetrySpec())
        assert spec.validate() is spec

    def test_unknown_sampler_group_rejected(self):
        spec = streaming_spec(telemetry=TelemetrySpec(samplers=("macroflows", "nope")))
        with pytest.raises(SpecError, match=r"telemetry\.samplers\[1\].*nope"):
            spec.validate()

    def test_unknown_event_rejected(self):
        spec = streaming_spec(telemetry=TelemetrySpec(events=("packet.teleport",)))
        with pytest.raises(SpecError, match=r"telemetry\.events\[0\].*packet\.teleport"):
            spec.validate()

    def test_bad_bounds_rejected(self):
        with pytest.raises(SpecError, match="sample_interval"):
            streaming_spec(telemetry=TelemetrySpec(sample_interval=0.0)).validate()
        with pytest.raises(SpecError, match="ring_capacity"):
            streaming_spec(telemetry=TelemetrySpec(ring_capacity=0)).validate()
        with pytest.raises(SpecError, match="event_recorder"):
            streaming_spec(telemetry=TelemetrySpec(event_recorder="list")).validate()

    def test_round_trip_preserves_block(self):
        spec = streaming_spec(telemetry=TelemetrySpec(
            sample_interval=0.5, samplers=("links",), events=("packet.drop",),
            max_samples=64, ring_capacity=128, event_recorder="reservoir",
        ))
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.telemetry == spec.telemetry
        assert clone.to_dict() == spec.to_dict()

    def test_round_trip_rejects_unknown_telemetry_key(self):
        payload = streaming_spec(telemetry=TelemetrySpec()).to_dict()
        payload["telemetry"]["cadence"] = 1.0
        with pytest.raises(SpecError, match="cadence"):
            ScenarioSpec.from_dict(payload)

    def test_detached_spec_renders_without_telemetry_key(self):
        # Pre-telemetry digests and dumps must stay byte-identical.
        assert "telemetry" not in streaming_spec().to_dict()


class TestRunnerTelemetry:
    def test_result_carries_deterministic_series(self):
        telemetry = TelemetrySpec(
            sample_interval=0.5,
            samplers=("macroflows", "schedulers", "links", "apps"),
            events=("cm.grant", "cm.congestion"),
        )
        a = run(streaming_spec(telemetry=telemetry), seed=1)
        b = run(streaming_spec(telemetry=telemetry), seed=1)
        assert a.to_json() == b.to_json()
        section = a.telemetry
        names = set(section["samples"])
        assert "cm.server.mf1.cwnd" in names
        assert "cm.server.mf1.rate" in names
        assert "cm.server.mf1.pending" in names
        assert any(name.startswith("link.") for name in names)
        assert any(name.startswith("app.") for name in names)
        assert section["events"]["cm.grant"]["count"] > 0
        assert len(section["event_log"]) <= telemetry.ring_capacity
        # The sampled series are (time, value) pairs on the configured cadence.
        cwnd = a.sample_series("cm.server.mf1.cwnd")
        assert cwnd[0][0] == 0.0 and cwnd[1][0] == 0.5

    def test_probes_on_equals_probes_off(self, tmp_path):
        off = run(streaming_spec(), seed=2)
        on = run(streaming_spec(), seed=2, trace_path=str(tmp_path / "t.jsonl"))
        assert on.to_json() == off.to_json()

    def test_detached_result_has_no_telemetry_key(self):
        result = run(streaming_spec(), seed=1)
        assert result.telemetry == {}
        assert "telemetry" not in result.payload()

    def test_trace_file_deterministic_and_canonical(self, tmp_path):
        spec = streaming_spec(telemetry=TelemetrySpec(sample_interval=0.5))
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            run(spec, seed=3, trace_path=str(path))
        first, second = (path.read_bytes() for path in paths)
        assert first == second and first
        events = [json.loads(line) for line in first.decode().splitlines()]
        assert all("t" in event and "event" in event for event in events)
        kinds = {event["event"] for event in events}
        assert "sample" in kinds and "cm.grant" in kinds

    def test_reservoir_event_log(self):
        telemetry = TelemetrySpec(events=("cm.grant",), ring_capacity=32,
                                  event_recorder="reservoir")
        a = run(streaming_spec(telemetry=telemetry), seed=4)
        b = run(streaming_spec(telemetry=telemetry), seed=4)
        assert a.telemetry["event_log"] == b.telemetry["event_log"]
        assert len(a.telemetry["event_log"]) == 32
        assert a.telemetry["events"]["cm.grant"]["count"] > 32
        times = [entry[0] for entry in a.telemetry["event_log"]]
        assert times == sorted(times)


class TestCliTrace:
    def test_run_with_trace_flag(self, tmp_path, capsys):
        trace = tmp_path / "dump.jsonl"
        code = scenario_main([
            "run", "libcm_select_streaming", "--seed", "1",
            "--trace", str(trace), "--quiet",
        ])
        assert code == 0
        assert trace.exists() and trace.stat().st_size > 0

    def test_multi_seed_trace_gets_seed_infix(self, tmp_path):
        trace = tmp_path / "dump.jsonl"
        code = scenario_main([
            "run", "web_vat_mix", "--seeds", "2", "--trace", str(trace), "--quiet",
        ])
        assert code == 0
        assert (tmp_path / "dump.seed1.jsonl").exists()
        assert (tmp_path / "dump.seed2.jsonl").exists()

    def test_dumbbell_bulk_preset_listed_and_valid(self):
        spec = get_preset("dumbbell_bulk")
        assert spec.telemetry is not None
        spec.validate()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()


class TestTimeseriesExperiment:
    def test_registered_with_smoke_config(self):
        from repro.experiments.registry import get_spec

        spec = get_spec("timeseries")
        assert spec.smoke["duration"] == 6.0

    def test_smoke_run_produces_series_and_is_byte_stable(self):
        from repro.experiments import timeseries

        a = timeseries.run(duration=4.0, sample_interval=0.5)
        b = timeseries.run(duration=4.0, sample_interval=0.5)
        assert a.to_json() == b.to_json()
        assert any(name.startswith("dumbbell_bulk.cm.") and name.endswith(".cwnd")
                   for name in a.series)
        assert any(name.startswith("libcm_select_streaming.cm.") for name in a.series)
        presets = set(a.column("preset"))
        assert presets == {"dumbbell_bulk", "libcm_select_streaming"}
