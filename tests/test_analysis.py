"""Tests for the analysis/metrics helpers."""

import pytest

from repro.analysis import (
    jain_fairness,
    mean,
    oscillation_count,
    relative_difference,
    series_max,
    series_mean,
    throughput_bytes_per_second,
)


class TestThroughput:
    def test_basic(self):
        assert throughput_bytes_per_second(1000, 2.0) == 500.0

    def test_zero_elapsed(self):
        assert throughput_bytes_per_second(1000, 0.0) == 0.0


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_user_of_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 0.0
        assert jain_fairness([0, 0]) == 1.0

    def test_bounded(self):
        value = jain_fairness([1, 2, 3, 4, 100])
        assert 0 < value <= 1


class TestSmallHelpers:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_relative_difference(self):
        assert relative_difference(100, 90) == pytest.approx(0.1)
        assert relative_difference(0, 0) == 0.0

    def test_series_helpers(self):
        series = [(0.0, 10.0), (1.0, 30.0)]
        assert series_mean(series) == 20.0
        assert series_max(series) == 30.0
        assert series_mean([]) == 0.0
        assert series_max([]) == 0.0

    def test_oscillation_count(self):
        assert oscillation_count([1, 1, 2, 2, 1, 3]) == 3
        assert oscillation_count([]) == 0
        assert oscillation_count([5]) == 0


class TestMetricsEdgeCases:
    """Previously untested branches of analysis.metrics (PR-4 satellite)."""

    def test_oscillation_count_constant_series(self):
        assert oscillation_count([7] * 100) == 0
        assert oscillation_count([0.5, 0.5, 0.5]) == 0

    def test_oscillation_count_alternating_series(self):
        assert oscillation_count([0, 1] * 50) == 99

    def test_series_helpers_single_point(self):
        assert series_mean([(3.0, 42.0)]) == 42.0
        assert series_max([(3.0, 42.0)]) == 42.0

    def test_series_max_with_negative_values(self):
        # max() of an all-negative value column must not be confused with
        # the empty-series 0.0 fallback.
        assert series_max([(0.0, -5.0), (1.0, -2.0)]) == -2.0

    def test_jain_ignores_negative_shares(self):
        # Negative shares are filtered before the index is computed.
        assert jain_fairness([-1.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness([-1.0, -2.0]) == 0.0

    def test_jain_all_zero_shares_are_fair(self):
        assert jain_fairness([0.0, 0.0, 0.0, 0.0]) == 1.0

    def test_jain_denormal_shares_underflow_to_fair(self):
        # Shares so small their squares underflow to 0.0 hit the explicit
        # squares == 0 branch: indistinguishable, i.e. perfectly fair.
        tiny = 1e-200
        assert jain_fairness([tiny, tiny, tiny]) == 1.0

    def test_throughput_negative_elapsed_is_zero(self):
        assert throughput_bytes_per_second(1000, -0.5) == 0.0

    def test_relative_difference_sign_and_magnitude(self):
        assert relative_difference(-100.0, 100.0) == pytest.approx(2.0)
        assert relative_difference(0.0, 50.0) == pytest.approx(1.0)
