"""Unit tests for the workload registry and its random processes."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ARRIVAL_PROCESSES,
    bounded_pareto,
    describe_workloads,
    geometric,
    get_workload,
    known_workloads,
    make_interarrival,
    validate_workload_params,
)
from repro.scenario.spec import SpecError


def _drive(draw, horizon: float):
    """Advance a mutable clock through a gap sampler; arrival times <= horizon."""
    now = [0.0]
    times = []
    while True:
        gap = draw(now)
        if now[0] + gap > horizon:
            return times
        now[0] += gap
        times.append(now[0])


def _clocked(arrival: str, rate: float, seed: int, **kwargs):
    """A (sampler, clock-box) pair wired together for :func:`_drive`."""
    box = [0.0]
    sampler = make_interarrival(random.Random(seed), arrival, rate,
                                clock=lambda: box[0], **kwargs)

    def draw(now):
        box[0] = now[0]
        return sampler()

    return draw


class TestArrivalProcesses:
    def test_poisson_mean_matches_rate(self):
        rng = random.Random(7)
        draw = make_interarrival(rng, "poisson", rate=4.0)
        gaps = [draw() for _ in range(20_000)]
        assert abs(sum(gaps) / len(gaps) - 0.25) < 0.01

    def test_weibull_mean_matches_rate_for_any_shape(self):
        for shape in (0.7, 1.0, 2.5):
            rng = random.Random(11)
            draw = make_interarrival(rng, "weibull", rate=2.0, weibull_shape=shape)
            gaps = [draw() for _ in range(20_000)]
            assert abs(sum(gaps) / len(gaps) - 0.5) < 0.02, shape

    def test_weibull_low_shape_is_burstier(self):
        # Burstiness = dispersion of the gaps; shape<1 must have a heavier
        # tail than shape>1 at the same mean.
        def cv(shape):
            rng = random.Random(3)
            draw = make_interarrival(rng, "weibull", rate=1.0, weibull_shape=shape)
            gaps = [draw() for _ in range(20_000)]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return math.sqrt(var) / mean

        assert cv(0.6) > cv(2.0)

    def test_same_seed_same_trajectory(self):
        a = make_interarrival(random.Random(5), "poisson", 3.0)
        b = make_interarrival(random.Random(5), "poisson", 3.0)
        assert [a() for _ in range(50)] == [b() for _ in range(50)]

    def test_invalid_arguments_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="rate"):
            make_interarrival(rng, "poisson", 0.0)
        with pytest.raises(ValueError, match="shape"):
            make_interarrival(rng, "weibull", 1.0, weibull_shape=-1.0)
        with pytest.raises(ValueError, match="unknown arrival"):
            make_interarrival(rng, "uniform", 1.0)

    @given(shape=st.floats(min_value=0.5, max_value=4.0),
           rate=st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=20, deadline=None)
    def test_weibull_mean_preservation_property(self, shape, rate):
        # The scale solved from Gamma(1 + 1/k) must keep the mean at 1/rate
        # for clustering (<1) and regularising (>1) shapes alike.
        rng = random.Random(29)
        draw = make_interarrival(rng, "weibull", rate, weibull_shape=shape)
        n = 3_000
        mean = sum(draw() for _ in range(n)) / n
        assert abs(mean * rate - 1.0) < 0.2

    def test_flash_crowd_concentrates_arrivals_near_peak(self):
        draw = _clocked("flash_crowd", 2.0, seed=23,
                        flash_peak=10.0, flash_at=5.0, flash_width=1.0)
        times = _drive(draw, horizon=10.0)
        near_peak = sum(1 for t in times if 4.0 <= t <= 6.0)
        early = sum(1 for t in times if t <= 2.0)
        # Rate is 10x baseline at the peak and ~baseline far from it.
        assert near_peak > 3 * max(early, 1)

    def test_diurnal_rate_oscillates_and_preserves_the_period_mean(self):
        draw = _clocked("diurnal", 40.0, seed=31,
                        diurnal_period=10.0, diurnal_depth=0.8)
        times = _drive(draw, horizon=10.0)  # exactly one full cycle
        peak = sum(1 for t in times if 1.5 <= t <= 3.5)    # around sin max (t=2.5)
        trough = sum(1 for t in times if 6.5 <= t <= 8.5)  # around sin min (t=7.5)
        assert peak > 3 * max(trough, 1)
        # The sinusoid integrates to zero over a whole period: the count must
        # come back to the baseline rate * horizon.
        assert abs(len(times) - 400) < 60

    def test_time_varying_processes_require_a_clock(self):
        rng = random.Random(0)
        for arrival in ("flash_crowd", "diurnal"):
            with pytest.raises(ValueError, match="clock"):
                make_interarrival(rng, arrival, 1.0)

    @pytest.mark.parametrize("kwargs, field", [
        (dict(flash_peak=0.5), "flash_peak"),
        (dict(flash_width=0.0), "flash_width"),
    ])
    def test_flash_crowd_invalid_params(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            make_interarrival(random.Random(0), "flash_crowd", 1.0,
                              clock=lambda: 0.0, **kwargs)

    @pytest.mark.parametrize("kwargs, field", [
        (dict(diurnal_depth=1.0), "diurnal_depth"),
        (dict(diurnal_depth=-0.1), "diurnal_depth"),
        (dict(diurnal_period=0.0), "diurnal_period"),
    ])
    def test_diurnal_invalid_params(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            make_interarrival(random.Random(0), "diurnal", 1.0,
                              clock=lambda: 0.0, **kwargs)

    def test_time_varying_trajectories_are_seed_deterministic(self):
        a = _drive(_clocked("flash_crowd", 3.0, seed=9), horizon=8.0)
        b = _drive(_clocked("flash_crowd", 3.0, seed=9), horizon=8.0)
        assert a == b and a

    def test_clock_is_inert_for_homogeneous_processes(self):
        # Passing a clock to poisson/weibull must not perturb the draw
        # sequence — this is what keeps pre-existing preset goldens stable
        # now that the generators always thread a clock through.
        plain = make_interarrival(random.Random(5), "poisson", 3.0)
        clocked = make_interarrival(random.Random(5), "poisson", 3.0,
                                    clock=lambda: 0.0)
        assert [plain() for _ in range(64)] == [clocked() for _ in range(64)]

    def test_registry_exposes_all_processes(self):
        assert ARRIVAL_PROCESSES == ("poisson", "weibull", "flash_crowd", "diurnal")


class TestSizeDistributions:
    def test_bounded_pareto_respects_bounds(self):
        rng = random.Random(13)
        draws = [bounded_pareto(rng, 1_000, 1.2, 50_000) for _ in range(5_000)]
        assert min(draws) >= 1_000
        assert max(draws) <= 50_000
        # Heavy tail: the cap must actually bind sometimes.
        assert any(d == 50_000 for d in draws)

    def test_bounded_pareto_argument_checks(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="minimum"):
            bounded_pareto(rng, 0, 1.5, 100)
        with pytest.raises(ValueError, match="maximum"):
            bounded_pareto(rng, 100, 1.5, 50)
        with pytest.raises(ValueError, match="alpha"):
            bounded_pareto(rng, 100, 0.0, 500)

    def test_geometric_mean_and_floor(self):
        rng = random.Random(17)
        draws = [geometric(rng, 4.0) for _ in range(20_000)]
        assert min(draws) >= 1
        assert abs(sum(draws) / len(draws) - 4.0) < 0.1
        assert geometric(rng, 1.0) == 1
        with pytest.raises(ValueError, match="mean"):
            geometric(rng, 0.5)

    @given(minimum=st.integers(min_value=1, max_value=500),
           span=st.integers(min_value=0, max_value=5_000),
           alpha=st.floats(min_value=0.2, max_value=5.0),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60, deadline=None)
    def test_bounded_pareto_always_lands_in_bounds(self, minimum, span, alpha, seed):
        # paretovariate >= 1, so minimum * draw >= minimum and the int()
        # truncation can never dip below the floor; the cap clips the tail.
        # Includes the degenerate minimum == maximum case (span == 0).
        rng = random.Random(seed)
        maximum = minimum + span
        for _ in range(25):
            d = bounded_pareto(rng, minimum, alpha, maximum)
            assert minimum <= d <= maximum

    def test_bounded_pareto_truncation_floor_with_steep_tail(self):
        # A very steep tail keeps raw draws just above the minimum; int()
        # truncation must collapse them onto the floor, never below it.
        rng = random.Random(19)
        draws = [bounded_pareto(rng, 7, 50.0, 1_000) for _ in range(2_000)]
        assert min(draws) == 7
        assert sum(1 for d in draws if d == 7) > len(draws) // 2

    def test_geometric_tail_is_finite_as_u_approaches_one(self):
        class FixedU:
            def __init__(self, u):
                self.u = u

            def random(self):
                return self.u

        # random.random() returns values in [0, 1); the CDF inversion must
        # stay finite (and deep in the tail) at the largest representable u.
        largest_u = 1.0 - 2.0**-53
        deep = geometric(FixedU(largest_u), 4.0)
        assert isinstance(deep, int)
        assert deep > geometric(FixedU(0.5), 4.0) >= 1


class TestRegistry:
    def test_bundled_generators_registered(self):
        assert known_workloads() == ["tcp_flows", "udp_blast", "vat_onoff", "web_sessions"]

    def test_get_workload_unknown_kind_lists_registry(self):
        with pytest.raises(KeyError, match="tcp_flows"):
            get_workload("smoke_signals")

    def test_describe_workloads_summarises_params(self):
        rows = {name: (desc, params) for name, desc, params in describe_workloads()}
        assert "tcp_flows" in rows
        desc, params = rows["tcp_flows"]
        assert desc
        assert any(line.startswith("rate (float, default=1.0)") for line in params)
        assert any("one of poisson/weibull" in line for line in params)

    def test_validate_params_applies_defaults(self):
        normalized = validate_workload_params("tcp_flows", {"rate": 3.0})
        assert normalized["rate"] == 3.0
        assert normalized["arrival"] == "poisson"
        assert normalized["max_active"] == 16

    def test_validate_params_rejects_by_name(self):
        with pytest.raises(SpecError, match="'burst_rate'"):
            validate_workload_params("tcp_flows", {"burst_rate": 2.0})
        with pytest.raises(SpecError, match="arrival"):
            validate_workload_params("tcp_flows", {"arrival": "uniform"})
        with pytest.raises(SpecError, match="rate"):
            validate_workload_params("tcp_flows", {"rate": "fast"})

    def test_out_of_range_params_fail_eagerly(self):
        # Regression: a zero reap interval used to pass validation and then
        # hang the run (the reap tick rescheduled itself at +0.0 forever);
        # zero-mean draws crashed mid-run in expovariate.  All of these must
        # be path-qualified SpecErrors at validation time.
        for kind, bad in (
            ("tcp_flows", {"reap_interval": 0.0}),
            ("tcp_flows", {"rate": 0.0}),
            ("tcp_flows", {"rate": -2.0}),
            ("tcp_flows", {"min_bytes": 0}),
            ("tcp_flows", {"pareto_alpha": 0.0}),
            ("tcp_flows", {"max_active": 0}),
            ("web_sessions", {"think_mean": 0.0}),
            ("web_sessions", {"requests_mean": 0.5}),
            ("vat_onoff", {"mean_on": 0.0}),
            ("vat_onoff", {"buffer_frames": 0}),
        ):
            with pytest.raises(SpecError, match=f"params.{list(bad)[0]}"):
                validate_workload_params(kind, bad)

    def test_size_bounds_cross_check_reported_at_build(self):
        from repro.scenario import (
            HostSpec,
            LinkSpec,
            ScenarioSpec,
            StopSpec,
            WorkloadSpec,
            build,
        )

        spec = ScenarioSpec(
            name="inverted_sizes",
            hosts=[HostSpec(name="a", cm=True), HostSpec(name="b")],
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
            workloads=[WorkloadSpec(kind="tcp_flows", host="a", peer="b",
                                    params={"min_bytes": 9_000, "max_bytes": 100})],
            stop=StopSpec(until=1.0),
        )
        with pytest.raises(SpecError, match="max_bytes .* min_bytes"):
            build(spec, seed=1)

    def test_validate_params_cache_serves_copies(self):
        first = validate_workload_params("web_sessions", {"rate": 2.0})
        first["rate"] = 99.0  # mutating the returned dict must not poison the memo
        second = validate_workload_params("web_sessions", {"rate": 2.0})
        assert second["rate"] == 2.0

    def test_reregistered_workload_invalidates_cached_params(self):
        from repro.scenario.applications import Param
        from repro.workloads import WORKLOADS, Workload, register_workload

        class FakeLoad(Workload):
            name = "cache_fake_wl"
            PARAMS = {"n": Param(int, default=1)}

        register_workload(FakeLoad)
        try:
            assert validate_workload_params("cache_fake_wl", {}) == {"n": 1}

            class FakeLoad2(Workload):
                name = "cache_fake_wl"
                PARAMS = {"n": Param(int, default=99)}

            register_workload(FakeLoad2)
            assert validate_workload_params("cache_fake_wl", {}) == {"n": 99}
        finally:
            WORKLOADS.pop("cache_fake_wl", None)

    def test_register_requires_a_name(self):
        from repro.workloads import Workload, register_workload

        class Nameless(Workload):
            pass

        with pytest.raises(ValueError, match="registry name"):
            register_workload(Nameless)
