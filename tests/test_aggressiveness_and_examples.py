"""Tests for the ensemble-aggressiveness experiment and the runnable examples."""

import runpy
from pathlib import Path

import pytest

from repro.experiments import aggressiveness

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestAggressiveness:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            aggressiveness.run_scenario("hybrid", 2, 1.0)

    def test_cm_ensemble_less_aggressive_than_parallel_tcps(self):
        cm = aggressiveness.run_scenario("cm", 3, duration=8.0)
        independent = aggressiveness.run_scenario("independent", 3, duration=8.0)
        # The single competing flow keeps more of the bottleneck against the
        # CM ensemble than against three independent TCP connections.
        assert cm["reference_share"] > independent["reference_share"]
        # The independent case approaches the 1/(N+1) squeeze the paper warns about.
        assert independent["reference_share"] < 0.45
        # Everybody makes progress.
        assert cm["ensemble_bytes"] > 0
        assert independent["ensemble_bytes"] > 0

    def test_result_table_shape(self):
        result = aggressiveness.run(ensemble_sizes=(2,), duration=4.0)
        assert result.columns[0] == "ensemble_size"
        assert len(result.rows) == 1
        assert 0.0 < result.rows[0][1] <= 1.0
        assert 0.0 < result.rows[0][2] <= 1.0


class TestExamples:
    """Each example must run end to end and print a sensible report."""

    def run_example(self, name, capsys):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        return capsys.readouterr().out

    def test_quickstart(self, capsys):
        out = self.run_example("quickstart.py", capsys)
        assert "packets sent" in out
        assert "CM rate estimate" in out

    def test_adaptive_audio(self, capsys):
        out = self.run_example("adaptive_audio.py", capsys)
        assert "uncongested path" in out and "constrained path" in out
        assert "dropped by policer" in out

    def test_web_transfer(self, capsys):
        out = self.run_example("web_transfer.py", capsys)
        assert "TCP/CM" in out
        assert "Congestion Manager" in out

    def test_layered_streaming(self, capsys):
        out = self.run_example("layered_streaming.py", capsys)
        assert "alf mode" in out and "rate mode" in out
