"""Golden determinism for the graph/workload presets.

Like ``tests/golden/figure3_smoke_seeds3.json`` for the experiment runner,
these files pin the *byte-exact* output of the three graph+workload presets
at their default seeds.  Any change to the spec tree, the graph compiler,
the routing tie-breaks, the workload RNG derivation or the arrival/size
distributions shows up here as a diff — which is exactly the point: those
are all load-bearing determinism contracts now.

The same-seed and jobs=N invariants mirror the experiment layer: repeat
runs are byte-identical, traces are byte-identical, and the ``scale``
experiment reduces to the same bytes no matter how its trials are sharded.
"""

import json
import os

import pytest

from repro.scenario import get_preset, run

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: (preset, seed) pairs with a checked-in golden result.
GOLDEN_PRESETS = (
    ("parking_lot_mix", 21),
    ("star_web_churn", 5),
    ("mesh_macroflow_sharing", 9),
    ("gilbert_wireless_bulk", 17),
    ("red_gateway_sharing", 19),
    ("flash_crowd_star", 23),
    ("cm_vs_udp_blast", 27),
    ("mobile_handoff_reroute", 31),
)

#: The realism presets additionally pin their bytes under the sharded engine.
SHARDED_GOLDEN_PRESETS = (
    ("gilbert_wireless_bulk", 17),
    ("red_gateway_sharing", 19),
    ("flash_crowd_star", 23),
    ("cm_vs_udp_blast", 27),
    ("mobile_handoff_reroute", 31),
)


def golden_path(name: str, seed: int) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.seed{seed}.json")


class TestGoldenPresets:
    @pytest.mark.parametrize("name,seed", GOLDEN_PRESETS)
    def test_preset_matches_checked_in_golden_bytes(self, name, seed):
        spec = get_preset(name)
        assert spec.seed == seed, "golden filename encodes the preset's default seed"
        produced = run(spec, seed=seed).to_json()
        with open(golden_path(name, seed), "r", encoding="utf-8") as fh:
            golden = fh.read()
        assert produced == golden

    @pytest.mark.parametrize("name,seed", GOLDEN_PRESETS)
    def test_same_seed_rerun_is_byte_identical(self, name, seed):
        spec = get_preset(name)
        assert run(spec, seed=seed).to_json() == run(spec, seed=seed).to_json()

    def test_goldens_are_not_vacuous(self):
        # The pinned results must actually contain churn: a regression that
        # silently stopped the workloads would otherwise still "match".
        with open(golden_path("parking_lot_mix", 21), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        flows = sum(entry["metrics"]["flows_started"] for entry in payload["workloads"])
        assert flows > 10
        assert any(entry["link"] == "r1->r2" for entry in payload["links"])

    @pytest.mark.parametrize("name,seed", SHARDED_GOLDEN_PRESETS)
    def test_sharded_run_matches_checked_in_golden_bytes(self, name, seed):
        # PR 9's byte-determinism contract extends to the realism features:
        # GE loss, RED, time-varying arrivals, udp_blast and mid-run reroutes
        # must all produce the exact golden bytes under the parallel engine.
        from repro.netsim.parallel import run_sharded

        spec = get_preset(name)
        produced = run_sharded(spec, seed=seed, shards=2).to_json()
        with open(golden_path(name, seed), "r", encoding="utf-8") as fh:
            golden = fh.read()
        assert produced == golden

    def test_realism_goldens_are_not_vacuous(self):
        # Each realism preset must exhibit the mechanism it exists to pin.
        with open(golden_path("gilbert_wireless_bulk", 17), encoding="utf-8") as fh:
            ge = json.load(fh)
        assert any(e["dropped_random"] > 0 for e in ge["links"])
        with open(golden_path("red_gateway_sharing", 19), encoding="utf-8") as fh:
            red = json.load(fh)
        assert any(e["ecn_marked"] > 0 for e in red["links"])
        with open(golden_path("cm_vs_udp_blast", 27), encoding="utf-8") as fh:
            blast = json.load(fh)
        wl = blast["workloads"][0]["metrics"]
        assert wl["packets_sent"] > 1000 and wl["packets_delivered"] > 1000
        with open(golden_path("mobile_handoff_reroute", 31), encoding="utf-8") as fh:
            handoff = json.load(fh)
        assert handoff["spec_digest"]  # reroutes participate in the digest

    @pytest.mark.parametrize("name,seed", GOLDEN_PRESETS[:1])
    def test_trace_files_are_byte_identical_across_runs(self, tmp_path, name, seed):
        spec = get_preset(name)
        trace_a = tmp_path / "a.jsonl"
        trace_b = tmp_path / "b.jsonl"
        run(spec, seed=seed, trace_path=str(trace_a))
        run(spec, seed=seed, trace_path=str(trace_b))
        assert trace_a.read_bytes() == trace_b.read_bytes()
        assert trace_a.stat().st_size > 0


class TestScaleExperimentSharding:
    def test_scale_smoke_jobs2_matches_jobs1_byte_for_byte(self):
        from repro.experiments import scale
        from repro.experiments.parallel import run_trials

        specs = scale.trials(host_counts=(2, 3), duration=4.0, seeds=(1, 2))
        serial = scale.reduce(run_trials(specs, jobs=1)).to_json()
        pooled = scale.reduce(run_trials(specs, jobs=2)).to_json()
        assert serial == pooled
        assert '"jain_fairness"' in serial
