"""Graph topology compilation and stochastic workload behaviour."""

import pytest

from repro.hostmodel import HostCosts
from repro.netsim import Packet, Simulator, build_graph
from repro.netsim.graph import shortest_path_next_hops
from repro.scenario import (
    AppSpec,
    GraphLinkSpec,
    GraphNodeSpec,
    GraphSpec,
    HostSpec,
    LinkSpec,
    RerouteSpec,
    ScenarioSpec,
    SpecError,
    StopSpec,
    WorkloadSpec,
    build,
    run,
)


def chain_graph() -> GraphSpec:
    """src - r0 - r1 - dst: the smallest multi-hop routed topology."""
    return GraphSpec(
        nodes=[
            GraphNodeSpec(name="src", cm=True),
            GraphNodeSpec(name="r0", kind="router"),
            GraphNodeSpec(name="r1", kind="router"),
            GraphNodeSpec(name="dst"),
        ],
        links=[
            GraphLinkSpec(a="src", b="r0", rate_bps=50e6, delay=0.001),
            GraphLinkSpec(a="r0", b="r1", rate_bps=5e6, delay=0.010),
            GraphLinkSpec(a="r1", b="dst", rate_bps=50e6, delay=0.001),
        ],
    )


def chain_scenario(**overrides) -> ScenarioSpec:
    fields = dict(
        name="chain",
        graph=chain_graph(),
        apps=[
            AppSpec(app="tcp_listener", host="dst", label="listener", params={"port": 5001}),
            AppSpec(app="tcp_sender", host="src", peer="dst", label="flow",
                    params={"variant": "cm", "port": 5001, "transfer_bytes": 200_000}),
        ],
        stop=StopSpec(until=5.0),
        metrics=("apps", "links", "hosts"),
        seed=2,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestShortestPathRouting:
    def test_delay_metric_prefers_the_faster_path(self):
        # a-b direct is slower (30ms) than a-c-b (10+10ms): route via c.
        table = shortest_path_next_hops({
            ("a", "b"): 0.030, ("b", "a"): 0.030,
            ("a", "c"): 0.010, ("c", "a"): 0.010,
            ("c", "b"): 0.010, ("b", "c"): 0.010,
        })
        assert table["a"]["b"] == "c"
        assert table["b"]["a"] == "c"

    def test_equal_delay_prefers_fewer_hops_then_names(self):
        # Two equal-delay paths a->b: direct (0.02) and via c (0.01+0.01);
        # the direct link wins on hop count.
        table = shortest_path_next_hops({
            ("a", "b"): 0.020, ("b", "a"): 0.020,
            ("a", "c"): 0.010, ("c", "a"): 0.010,
            ("c", "b"): 0.010, ("b", "c"): 0.010,
        })
        assert table["a"]["b"] == "b"

    def test_unreachable_destinations_are_absent(self):
        table = shortest_path_next_hops({("a", "b"): 0.01, ("b", "a"): 0.01,
                                         ("c", "d"): 0.01, ("d", "c"): 0.01})
        assert "c" not in table["a"]
        assert "a" in table["b"]


class TestBuildGraph:
    def test_multi_hop_delivery_through_routers(self):
        sim = Simulator()
        net = build_graph(
            sim,
            nodes=[{"name": "h0"}, {"name": "r", "kind": "router"}, {"name": "h1"}],
            links=[{"a": "h0", "b": "r", "rate_bps": 1e6, "delay": 0.001},
                   {"a": "r", "b": "h1", "rate_bps": 1e6, "delay": 0.001}],
            host_costs_factory=HostCosts,
        )
        h0, h1 = net.hosts["h0"], net.hosts["h1"]
        received = []
        h1.ip.register_handler("udp", 9, received.append)
        h0.ip.send(Packet(src=h0.addr, dst=h1.addr, sport=9, dport=9,
                          payload_bytes=100, protocol="udp"))
        sim.run()
        assert len(received) == 1
        assert net.nodes["r"].ip.packets_forwarded == 1

    def test_router_counts_unroutable_forward_drops(self):
        sim = Simulator()
        net = build_graph(
            sim,
            nodes=[{"name": "h0"}, {"name": "r", "kind": "router"}, {"name": "h1"}],
            links=[{"a": "h0", "b": "r", "rate_bps": 1e6, "delay": 0.001},
                   {"a": "r", "b": "h1", "rate_bps": 1e6, "delay": 0.001}],
        )
        router = net.nodes["r"]
        router.receive_from_link(Packet(src="10.9.9.9", dst="10.99.0.1", sport=1,
                                        dport=1, payload_bytes=10, protocol="udp"))
        assert router.ip.forward_drops == 1
        assert router.ip.packets_forwarded == 0

    def test_routers_never_get_cost_ledgers(self):
        sim = Simulator()
        net = build_graph(
            sim,
            nodes=[{"name": "h0"}, {"name": "r", "kind": "router"}],
            links=[{"a": "h0", "b": "r", "rate_bps": 1e6, "delay": 0.001}],
            host_costs_factory=HostCosts,
        )
        assert net.hosts["h0"].costs is not None
        assert net.nodes["r"].costs is None


class TestGraphScenarios:
    def test_chain_scenario_transfers_end_to_end(self):
        result = run(chain_scenario(), seed=2)
        assert result.app("flow")["metrics"]["done"] is True
        assert result.app("flow")["metrics"]["bytes_acked"] == 200_000
        # Every directed link reports metrics; the bottleneck carried data.
        links = {entry["link"]: entry for entry in result.links}
        assert set(links) == {"src->r0", "r0->src", "r0->r1", "r1->r0",
                              "r1->dst", "dst->r1"}
        assert links["r0->r1"]["delivered_packets"] > 0
        # Host metrics cover end systems only (routers have no CPU model).
        assert {entry["host"] for entry in result.hosts} == {"src", "dst"}

    def test_graph_scenario_is_byte_deterministic(self):
        spec = chain_scenario()
        assert run(spec, seed=7).to_json() == run(spec, seed=7).to_json()

    def test_apps_cannot_be_placed_on_routers(self):
        spec = chain_scenario(apps=[
            AppSpec(app="tcp_listener", host="r0", params={"port": 5001}),
        ])
        with pytest.raises(SpecError, match="unknown host 'r0'"):
            spec.validate()

    def test_cm_on_router_rejected(self):
        graph = chain_graph()
        graph.nodes[1] = GraphNodeSpec(name="r0", kind="router", cm=True)
        with pytest.raises(SpecError, match="routers cannot run a Congestion Manager"):
            chain_scenario(graph=graph, apps=[]).validate()

    def test_disconnected_graph_rejected(self):
        graph = GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b"),
                   GraphNodeSpec(name="c")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        )
        with pytest.raises(SpecError, match="disconnected.*'c'"):
            ScenarioSpec(name="x", graph=graph).validate()

    def test_parallel_links_rejected(self):
        graph = GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01),
                   GraphLinkSpec(a="b", b="a", rate_bps=2e6, delay=0.01)],
        )
        with pytest.raises(SpecError, match="duplicate link"):
            ScenarioSpec(name="x", graph=graph).validate()

    def test_graph_and_hosts_are_exclusive(self):
        spec = chain_scenario(hosts=[HostSpec(name="extra")])
        with pytest.raises(SpecError, match="graph"):
            spec.validate()

    def test_graph_and_dumbbell_are_exclusive(self):
        from repro.scenario import DumbbellSpec

        spec = chain_scenario(
            dumbbell=DumbbellSpec(n_pairs=1, bottleneck_bps=1e6, bottleneck_delay=0.01))
        with pytest.raises(SpecError, match="dumbbell or a graph"):
            spec.validate()


def workload_scenario(workload: WorkloadSpec, until: float = 5.0, **overrides) -> ScenarioSpec:
    fields = dict(
        name="wl",
        hosts=[HostSpec(name="src", cm=True), HostSpec(name="dst")],
        links=[LinkSpec(a="src", b="dst", rate_bps=10e6, delay=0.005)],
        workloads=[workload],
        stop=StopSpec(until=until),
        metrics=("apps", "links"),
        seed=6,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestWorkloadGenerators:
    def test_arrival_window_bounds_generation(self):
        late = WorkloadSpec(kind="tcp_flows", host="src", peer="dst", label="late",
                            start=10.0, params={"rate": 20.0})
        result = run(workload_scenario(late, until=3.0), seed=1)
        assert result.workload("late")["metrics"]["flows_started"] == 0

        windowed = WorkloadSpec(kind="tcp_flows", host="src", peer="dst", label="win",
                                start=0.0, stop=1.0, params={"rate": 8.0})
        result = run(workload_scenario(windowed, until=6.0), seed=1)
        started = result.workload("win")["metrics"]["flows_started"]
        # Arrivals only inside [0, 1]: far fewer than 6 s at 8/s could make.
        assert 1 <= started <= 16

    def test_max_active_cap_counts_suppressed_arrivals(self):
        capped = WorkloadSpec(
            kind="tcp_flows", host="src", peer="dst", label="capped",
            params={"rate": 30.0, "max_active": 1, "min_bytes": 500_000,
                    "max_bytes": 2_000_000, "reap_interval": 2.0},
        )
        result = run(workload_scenario(capped, until=3.0), seed=2)
        metrics = result.workload("capped")["metrics"]
        assert metrics["flows_suppressed"] > 0

    def test_different_seeds_draw_different_trajectories(self):
        spec = workload_scenario(WorkloadSpec(
            kind="tcp_flows", host="src", peer="dst", label="w",
            params={"rate": 4.0}))
        a = run(spec, seed=1).workload("w")["metrics"]
        b = run(spec, seed=2).workload("w")["metrics"]
        assert a != b

    def test_web_sessions_complete_against_a_web_server(self):
        spec = workload_scenario(
            WorkloadSpec(kind="web_sessions", host="dst", peer="src", label="sessions",
                         params={"rate": 2.0, "requests_mean": 2.0,
                                 "max_bytes": 64 * 1024}),
            until=6.0,
            apps=[AppSpec(app="web_server", host="src", label="server",
                          params={"port": 80, "variant": "cm"})],
        )
        result = run(spec, seed=3)
        metrics = result.workload("sessions")["metrics"]
        assert metrics["sessions_started"] >= 2
        assert metrics["requests_completed"] >= 1
        assert result.app("server")["metrics"]["requests_served"] >= metrics["requests_completed"]

    def test_vat_onoff_churns_fresh_cm_flows_per_burst(self):
        spec = workload_scenario(
            WorkloadSpec(kind="vat_onoff", host="src", peer="dst", label="audio",
                         params={"mean_on": 0.8, "mean_off": 0.4}),
            until=6.0,
            apps=[AppSpec(app="ack_reflector", host="dst", label="sink",
                          params={"port": 9001})],
        )
        scenario = build(spec, seed=5)
        from repro.scenario.runner import run_built

        result = run_built(scenario)
        metrics = result.workload("audio")["metrics"]
        assert metrics["bursts"] >= 2
        assert metrics["frames_sent"] > 0
        # Every burst's CM-UDP flow was closed on detach.
        assert scenario.hosts["src"].cm.open_flow_count == 0

    def test_workload_needing_cm_rejected_without_one(self):
        spec = workload_scenario(
            WorkloadSpec(kind="vat_onoff", host="src", peer="dst",
                         params={}),
            hosts=[HostSpec(name="src"), HostSpec(name="dst")],
        )
        with pytest.raises(SpecError, match="Congestion Manager"):
            build(spec, seed=1)

    def test_unknown_workload_kind_lists_registry(self):
        spec = workload_scenario(WorkloadSpec(kind="carrier_pigeons", host="src",
                                              peer="dst"))
        with pytest.raises(SpecError, match="tcp_flows"):
            spec.validate()

    def test_missing_peer_rejected(self):
        spec = workload_scenario(WorkloadSpec(kind="tcp_flows", host="src"))
        with pytest.raises(SpecError, match="peer"):
            spec.validate()


def diamond_graph(**overrides) -> GraphSpec:
    """src reaches dst over a fast path (via ra) and a slow one (via rb)."""
    fields = dict(
        nodes=[
            GraphNodeSpec(name="src", cm=True),
            GraphNodeSpec(name="ra", kind="router"),
            GraphNodeSpec(name="rb", kind="router"),
            GraphNodeSpec(name="dst"),
        ],
        links=[
            GraphLinkSpec(a="src", b="ra", rate_bps=10e6, delay=0.001),
            GraphLinkSpec(a="ra", b="dst", rate_bps=10e6, delay=0.001),
            GraphLinkSpec(a="src", b="rb", rate_bps=10e6, delay=0.010),
            GraphLinkSpec(a="rb", b="dst", rate_bps=10e6, delay=0.010),
        ],
    )
    fields.update(overrides)
    return GraphSpec(**fields)


class TestMidRunReroute:
    def test_apply_reroute_switches_next_hops_and_link_delay(self):
        sim = Simulator()
        net = build_graph(
            sim,
            nodes=[{"name": "h0"}, {"name": "ra", "kind": "router"},
                   {"name": "rb", "kind": "router"}, {"name": "h1"}],
            links=[{"a": "h0", "b": "ra", "rate_bps": 1e6, "delay": 0.001},
                   {"a": "ra", "b": "h1", "rate_bps": 1e6, "delay": 0.001},
                   {"a": "h0", "b": "rb", "rate_bps": 1e6, "delay": 0.010},
                   {"a": "rb", "b": "h1", "rate_bps": 1e6, "delay": 0.010}],
        )
        assert net.next_hops["h0"]["h1"] == "ra"
        net.apply_reroute("h0", "ra", 0.05)
        assert net.next_hops["h0"]["h1"] == "rb"
        # The physical link got slower in both directions, not just the table.
        assert net.links[("h0", "ra")].delay == 0.05
        assert net.links[("ra", "h0")].delay == 0.05
        h0, h1 = net.hosts["h0"], net.hosts["h1"]
        received = []
        h1.ip.register_handler("udp", 9, received.append)
        h0.ip.send(Packet(src=h0.addr, dst=h1.addr, sport=9, dport=9,
                          payload_bytes=100, protocol="udp"))
        sim.run()
        assert len(received) == 1
        assert net.nodes["rb"].ip.packets_forwarded == 1
        assert net.nodes["ra"].ip.packets_forwarded == 0

    def reroute_scenario(self, reroutes=()) -> ScenarioSpec:
        return ScenarioSpec(
            name="handoff",
            graph=diamond_graph(reroutes=list(reroutes)),
            apps=[
                AppSpec(app="tcp_listener", host="dst", label="listener",
                        params={"port": 5001}),
                # reno: the CM's rate estimate takes a while to re-converge
                # after a 10x RTT jump, so plain Reno keeps this test about
                # the routing handoff rather than CM ramp-up dynamics.
                AppSpec(app="tcp_sender", host="src", peer="dst", label="flow",
                        params={"variant": "reno", "port": 5001,
                                "transfer_bytes": 2_000_000}),
            ],
            stop=StopSpec(until=8.0),
            metrics=("apps", "links"),
            seed=3,
        )

    def test_scheduled_reroute_shifts_traffic_mid_run(self):
        steady = run(self.reroute_scenario(), seed=3)
        links = {entry["link"]: entry for entry in steady.links}
        assert links["src->rb"]["delivered_packets"] == 0  # fast path only

        rerouted = run(self.reroute_scenario(
            [RerouteSpec(time=0.7, a="src", b="ra", delay=0.08)]), seed=3)
        links = {entry["link"]: entry for entry in rerouted.links}
        # Traffic used the fast path first, then handed off to the detour.
        assert links["src->ra"]["delivered_packets"] > 0
        assert links["src->rb"]["delivered_packets"] > 0
        assert rerouted.app("flow")["metrics"]["done"] is True

    def test_reroute_scenario_is_byte_deterministic(self):
        spec = self.reroute_scenario(
            [RerouteSpec(time=0.7, a="src", b="ra", delay=0.08)])
        assert run(spec, seed=5).to_json() == run(spec, seed=5).to_json()

    def test_reroute_on_undeclared_link_rejected(self):
        graph = diamond_graph(reroutes=[RerouteSpec(time=1.0, a="src", b="dst",
                                                    delay=0.05)])
        with pytest.raises(SpecError, match="no declared link between 'src' and 'dst'"):
            ScenarioSpec(name="x", graph=graph, stop=StopSpec(until=2.0)).validate()

    def test_reroute_time_must_be_positive(self):
        graph = diamond_graph(reroutes=[RerouteSpec(time=0.0, a="src", b="ra",
                                                    delay=0.05)])
        with pytest.raises(SpecError, match=r"reroutes\[0\]\.time"):
            ScenarioSpec(name="x", graph=graph, stop=StopSpec(until=2.0)).validate()

    def test_reroute_times_must_be_non_decreasing(self):
        graph = diamond_graph(reroutes=[
            RerouteSpec(time=3.0, a="src", b="ra", delay=0.05),
            RerouteSpec(time=2.0, a="src", b="rb", delay=0.05),
        ])
        with pytest.raises(SpecError, match="non-decreasing"):
            ScenarioSpec(name="x", graph=graph, stop=StopSpec(until=5.0)).validate()

    def test_reroutes_round_trip_and_are_omitted_when_empty(self):
        spec = ScenarioSpec(
            name="x",
            graph=diamond_graph(reroutes=[RerouteSpec(time=1.5, a="src", b="ra",
                                                      delay=0.02)]),
            stop=StopSpec(until=2.0))
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.graph.reroutes[0].delay == 0.02
        plain = ScenarioSpec(name="x", graph=diamond_graph(),
                             stop=StopSpec(until=2.0)).to_dict()
        assert "reroutes" not in plain["graph"]

    def test_reroutes_change_the_spec_digest(self):
        from repro.scenario.runner import spec_digest

        plain = ScenarioSpec(name="x", graph=diamond_graph(), stop=StopSpec(until=2.0))
        moved = ScenarioSpec(
            name="x",
            graph=diamond_graph(reroutes=[RerouteSpec(time=1.0, a="src", b="ra",
                                                      delay=0.05)]),
            stop=StopSpec(until=2.0))
        assert spec_digest(plain) != spec_digest(moved)


class TestUdpBlast:
    def blast_spec(self, **params):
        merged = {"rate_bps": 2_000_000.0, "packet_bytes": 1_000, "port": 9900}
        merged.update(params)
        return workload_scenario(
            WorkloadSpec(kind="udp_blast", host="src", peer="dst", label="blast",
                         params=merged),
            until=2.0)

    def test_cbr_offered_load_and_delivery(self):
        result = run(self.blast_spec(), seed=4)
        metrics = result.workload("blast")["metrics"]
        # 2 Mbit/s in 1000-byte datagrams = 250 pkt/s over 2 s.
        assert 495 <= metrics["packets_sent"] <= 505
        assert 0 < metrics["packets_delivered"] <= metrics["packets_sent"]
        assert metrics["bytes_delivered"] == metrics["packets_delivered"] * 1_000
        # The 10 Mbit/s link is uncongested: nothing is lost, though the
        # final datagram may still be in flight at the stop horizon.
        assert metrics["packets_delivered"] >= metrics["packets_sent"] - 2

    def test_blast_never_joins_the_cm(self):
        # The source socket is deliberately unconnected, so even though the
        # host runs a CM the stream opens no CM flow and is never regulated.
        scenario = build(self.blast_spec(), seed=4)
        from repro.scenario.runner import run_built

        result = run_built(scenario)
        assert result.workload("blast")["metrics"]["packets_sent"] > 0
        assert scenario.hosts["src"].cm.open_flow_count == 0

    def test_blast_respects_the_arrival_window(self):
        spec = workload_scenario(
            WorkloadSpec(kind="udp_blast", host="src", peer="dst", label="blast",
                         start=0.5, stop=1.0,
                         params={"rate_bps": 800_000.0, "packet_bytes": 1_000}),
            until=3.0)
        metrics = run(spec, seed=1).workload("blast")["metrics"]
        # 100 pkt/s confined to a 0.5 s window.
        assert 45 <= metrics["packets_sent"] <= 55


class TestTimeVaryingArrivals:
    def test_flash_crowd_outdraws_the_poisson_baseline(self):
        def flows_started(arrival_params):
            spec = workload_scenario(
                WorkloadSpec(kind="tcp_flows", host="src", peer="dst", label="w",
                             params={"rate": 1.0, "max_active": 64,
                                     "min_bytes": 2_000, "max_bytes": 20_000,
                                     **arrival_params}),
                until=6.0)
            return run(spec, seed=11).workload("w")["metrics"]["flows_started"]

        poisson = flows_started({})
        flash = flows_started({"arrival": "flash_crowd", "flash_peak": 12.0,
                               "flash_at": 3.0, "flash_width": 1.0})
        assert flash > 2 * max(poisson, 1)

    def test_diurnal_arrivals_run_end_to_end(self):
        spec = workload_scenario(
            WorkloadSpec(kind="web_sessions", host="dst", peer="src", label="sessions",
                         params={"rate": 3.0, "arrival": "diurnal",
                                 "diurnal_period": 4.0, "diurnal_depth": 0.7,
                                 "max_bytes": 64 * 1024}),
            until=6.0,
            apps=[AppSpec(app="web_server", host="src", label="server",
                          params={"port": 80, "variant": "cm"})],
        )
        result = run(spec, seed=13)
        metrics = result.workload("sessions")["metrics"]
        assert metrics["sessions_started"] >= 2
        assert metrics["requests_completed"] >= 1

    def test_time_varying_trajectory_is_byte_deterministic(self):
        spec = workload_scenario(
            WorkloadSpec(kind="tcp_flows", host="src", peer="dst", label="w",
                         params={"rate": 2.0, "arrival": "flash_crowd"}),
            until=4.0)
        assert run(spec, seed=3).to_json() == run(spec, seed=3).to_json()


class TestWorkloadsOnGraphs:
    def test_churn_across_a_routed_path(self):
        spec = chain_scenario(
            apps=[],
            workloads=[WorkloadSpec(
                kind="tcp_flows", host="src", peer="dst", label="churn",
                params={"rate": 3.0, "min_bytes": 8_000, "max_bytes": 60_000},
            )],
            stop=StopSpec(until=6.0),
        )
        result = run(spec, seed=8)
        metrics = result.workload("churn")["metrics"]
        assert metrics["flows_completed"] >= 3
        links = {entry["link"]: entry for entry in result.links}
        assert links["r0->r1"]["delivered_packets"] > 0
