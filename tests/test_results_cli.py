"""End-to-end CLI tests for ``python -m repro.results`` and its integrations."""

from __future__ import annotations

import csv
import io
import json
import os

import pytest

from repro.results.cli import main
from repro.results.report import CSV_COLUMNS, render_csv, render_html
from repro.results.store import ResultStore

from test_result_store import MACHINE, bench_report, scenario_payload


@pytest.fixture
def baseline_dir(tmp_path):
    """A directory shaped like the repo root: checked-in BENCH history."""
    history = {
        "BENCH_PR1": {"event_churn": 1000.0, "grant_dispatch": 500.0},
        "BENCH_PR2": {"event_churn": 1100.0, "grant_dispatch": 520.0, "graph_build": 80.0},
    }
    for label, rows in history.items():
        (tmp_path / f"{label}.json").write_text(json.dumps(bench_report(label, rows)))
    return tmp_path


def run_cli(*argv):
    return main([str(arg) for arg in argv])


# --------------------------------------------------------------------- #
# ingest + query                                                        #
# --------------------------------------------------------------------- #
def test_ingest_then_query_round_trip(tmp_path, baseline_dir, capsys):
    db = tmp_path / "results.sqlite"
    assert run_cli("ingest", "--db", db, baseline_dir) == 0
    out = capsys.readouterr().out
    assert "ingested 2 run(s) (5 row(s))" in out

    assert run_cli("query", "--db", db, "--json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["runs"] == 2
    assert payload["counts"]["bench_rows"] == 5
    assert {run["label"] for run in payload["runs"]} == {"BENCH_PR1", "BENCH_PR2"}

    assert run_cli("query", "--db", db, "--name", "event_churn", "--json") == 0
    rows = json.loads(capsys.readouterr().out)
    assert [row["label"] for row in rows] == ["BENCH_PR1", "BENCH_PR2"]


def test_ingest_missing_path_is_strict_failure(tmp_path, capsys):
    db = tmp_path / "results.sqlite"
    assert run_cli("ingest", "--db", db, tmp_path / "nope.json") == 0
    assert run_cli("ingest", "--strict", "--db", db, tmp_path / "nope.json") == 1
    assert "no such file" in capsys.readouterr().out


def test_query_baseline_dir_uses_ephemeral_store(baseline_dir, capsys):
    assert run_cli("query", "--baseline-dir", baseline_dir, "--json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["runs"] == 2


# --------------------------------------------------------------------- #
# compare                                                               #
# --------------------------------------------------------------------- #
def test_compare_prints_ratios(baseline_dir, capsys):
    assert run_cli("compare", "BENCH_PR1", "BENCH_PR2", "--baseline-dir", baseline_dir) == 0
    out = capsys.readouterr().out
    assert "event_churn" in out and "x1.10" in out
    assert "graph_build" in out  # present only on the B side, still listed


def test_compare_unknown_label_is_usage_error(baseline_dir, capsys):
    assert run_cli("compare", "BENCH_PR1", "BENCH_PR9", "--baseline-dir", baseline_dir) == 2
    assert "BENCH_PR9" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# report                                                                #
# --------------------------------------------------------------------- #
def test_report_writes_html_and_csv_covering_every_row(tmp_path, baseline_dir, capsys):
    html_path = tmp_path / "report.html"
    csv_path = tmp_path / "report.csv"
    assert run_cli("report", "--baseline-dir", baseline_dir,
                   "--html", html_path, "--csv", csv_path, "--title", "PR trajectory") == 0

    with open(csv_path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 5  # every (label, benchmark) pair in the history
    assert set(rows[0]) == set(CSV_COLUMNS)
    assert {(row["label"], row["benchmark"]) for row in rows} >= {
        ("BENCH_PR1", "event_churn"), ("BENCH_PR2", "graph_build")}
    assert all(row["python"] == "3.11.7" for row in rows)

    html = html_path.read_text(encoding="utf-8")
    assert "PR trajectory" in html
    for name in ("event_churn", "grant_dispatch", "graph_build"):
        assert name in html
    assert "BENCH_PR1" in html and "BENCH_PR2" in html
    assert "<span class='delta'>x1.10</span>" in html  # delta vs the previous label


def test_report_without_outputs_or_data_is_usage_error(tmp_path, capsys):
    assert run_cli("report", "--baseline-dir", tmp_path) == 2  # no --html/--csv
    assert run_cli("report", "--baseline-dir", tmp_path, "--html", tmp_path / "x.html") == 2
    assert "empty" in capsys.readouterr().err


def test_render_covers_non_bench_artifacts(tmp_path):
    with ResultStore(":memory:") as store:
        store.ingest_bench_report(bench_report("BENCH_PR1", {"event_churn": 1000.0}))
        store.ingest_scenario_payload(scenario_payload(), label="PR6")
        trace = tmp_path / "t.jsonl"
        trace.write_text(json.dumps({"t": 0.0, "event": "sample", "series": "q"}) + "\n")
        store.ingest_trace(str(trace), label="PR6")
        html = render_html(store, title="t")
        assert "web_mix" in html and "spec digest" in html
        assert "sample" in html  # trace event summary section
        csv_text = render_csv(store)
    parsed = list(csv.DictReader(io.StringIO(csv_text)))
    assert len(parsed) == 1 and parsed[0]["benchmark"] == "event_churn"


# --------------------------------------------------------------------- #
# check: the regression gate                                            #
# --------------------------------------------------------------------- #
def test_check_exits_nonzero_on_30pct_slowdown(tmp_path, baseline_dir, capsys):
    candidate = bench_report(
        "BENCH_PR3", {"event_churn": 770.0, "grant_dispatch": 520.0})  # -30% vs best (1100)
    path = tmp_path / "BENCH_PR3.json"
    path.write_text(json.dumps(candidate))
    assert run_cli("check", "--baseline-dir", baseline_dir,
                   "--candidate", path, "--max-regression", "0.25") == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "event_churn" in out
    assert "perf check verdict: FAIL" in out


def test_check_passes_within_threshold(tmp_path, baseline_dir, capsys):
    candidate = bench_report(
        "BENCH_PR3", {"event_churn": 900.0, "grant_dispatch": 600.0})  # -18% / +15%
    path = tmp_path / "BENCH_PR3.json"
    path.write_text(json.dumps(candidate))
    assert run_cli("check", "--baseline-dir", baseline_dir,
                   "--candidate", path, "--max-regression", "0.25") == 0
    assert "perf check verdict: PASS" in capsys.readouterr().out


def test_check_skips_cross_machine_candidate(tmp_path, baseline_dir, capsys):
    machine = {"python": "3.12.1", "implementation": "CPython", "platform": "Darwin-arm64"}
    candidate = bench_report("BENCH_PR3", {"event_churn": 10.0}, machine=machine)
    path = tmp_path / "BENCH_PR3.json"
    path.write_text(json.dumps(candidate))
    assert run_cli("check", "--baseline-dir", baseline_dir,
                   "--candidate", path, "--max-regression", "0.25") == 0
    assert "SKIP" in capsys.readouterr().out


def test_check_defaults_to_highest_label(baseline_dir, capsys):
    # Without --candidate the gate judges BENCH_PR2 against BENCH_PR1: green.
    assert run_cli("check", "--baseline-dir", baseline_dir) == 0
    assert "BENCH_PR2" in capsys.readouterr().out


def test_check_bad_candidate_file_is_usage_error(tmp_path, baseline_dir, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    assert run_cli("check", "--baseline-dir", baseline_dir, "--candidate", path) == 2
    assert "cannot read candidate" in capsys.readouterr().err


def test_check_empty_store_is_usage_error(tmp_path, capsys):
    assert run_cli("check", "--baseline-dir", tmp_path) == 2
    assert "check:" in capsys.readouterr().err


def test_fresh_machine_run_never_false_fails_against_history(tmp_path, capsys):
    """The CI contract: a candidate measured on a machine the checked-in
    BENCH_PR*.json history has never seen is skipped row by row, not failed —
    the gate only compares rows with an identical machine fingerprint."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    machine = {"python": "3.11.7", "implementation": "CPython",
               "platform": "fingerprint-test-platform"}
    candidate = bench_report(
        "BENCH_PR99", {"event_churn": 1.0, "grant_dispatch": 1.0}, machine=machine)
    path = tmp_path / "BENCH_PR99.json"
    path.write_text(json.dumps(candidate))
    assert run_cli("check", "--baseline-dir", repo_root, "--candidate", path) == 0
    out = capsys.readouterr().out
    assert "SKIP" in out and "perf check verdict: PASS" in out


# --------------------------------------------------------------------- #
# integrations: perf harness label + experiment registration            #
# --------------------------------------------------------------------- #
def test_perf_main_store_flag_ingests_report(tmp_path, monkeypatch):
    # Drive the real module entry point with a stubbed harness so the test
    # exercises the label/output/--store plumbing without a 5-minute run.
    import repro.perf.__main__ as perf_main

    monkeypatch.setenv("REPRO_BENCH_LABEL", "BENCH_SMOKE")
    monkeypatch.setattr(
        perf_main, "run_benchmarks",
        lambda quick=False, label=None: bench_report(label, {"event_churn": 10.0}))
    monkeypatch.chdir(tmp_path)
    assert perf_main.main(["--quick", "--store", "results.sqlite"]) == 0
    assert (tmp_path / "BENCH_SMOKE.json").exists()
    with ResultStore(str(tmp_path / "results.sqlite")) as store:
        assert store.bench_labels() == ["BENCH_SMOKE"]


def test_experiment_registration_env_var(tmp_path, monkeypatch):
    from repro.experiments.artifacts import register_artifact
    from repro.experiments.base import ExperimentResult

    db = tmp_path / "results.sqlite"
    monkeypatch.setenv("REPRO_RESULT_STORE", str(db))
    result = ExperimentResult(name="t_env", title="via env", columns=["a"], rows=[[1]])
    assert register_artifact(result, source="t_env.json") is not None
    with ResultStore(str(db)) as store:
        (entry,) = store.experiment_results(name="t_env")
        assert entry["rows"] == [[1]]

    monkeypatch.delenv("REPRO_RESULT_STORE")
    assert register_artifact(result) is None  # no store configured: a no-op


def test_scenario_cli_store_flag(tmp_path, monkeypatch):
    from repro.scenario.cli import main as scenario_main

    monkeypatch.chdir(tmp_path)
    db = tmp_path / "scenario.sqlite"
    trace = tmp_path / "run.jsonl"
    assert scenario_main(["run", "web_vat_mix", "--seed", "2", "--quiet",
                          "--store", str(db), "--trace", str(trace)]) == 0
    with ResultStore(str(db)) as store:
        counts = store.counts()
        assert counts["scenario_results"] == 1
        assert counts["trace_events"] > 0
        (entry,) = store.scenario_results()
        assert entry["seed"] == 2
        assert store.metrics(scenario=entry["payload"]["name"])
