"""Flow-churn edge cases against the Congestion Manager.

The stochastic workload layer attaches and detaches flows while grants are
in flight, drains macroflows completely and re-populates them, and leaves
congestion state behind on paths whose last flow closed.  These tests pin
the manager-level invariants that churn leans on:

* closing a flow with a pending (undelivered) grant releases the window
  reservation and lets sibling flows use it;
* a grant callback that fires after ``cm_close`` finds a dead handle — the
  documented client contract is to decline via ``cm_notify`` and swallow
  the resulting error, never to be granted silently;
* an emptied macroflow retains its congestion state and hands it to the
  next flow to the same destination (Figure 7's behaviour), until the idle
  timeout expires it.
"""

import pytest

from repro.core.constants import CM_NO_CONGESTION
from repro.core.errors import UnknownFlowError
from repro.core.manager import CongestionManager
from repro.hostmodel import HostCosts
from repro.netsim import Host, Simulator

DST = "10.2.0.1"


def make_cm(**kwargs) -> CongestionManager:
    sim = Simulator()
    host = Host(sim, "churnhost", "10.1.0.1", costs=HostCosts())
    return CongestionManager(host, feedback_watchdog=False, **kwargs)


def open_flow(cm: CongestionManager, sport: int, callback=None) -> int:
    flow_id = cm.cm_open("10.1.0.1", DST, sport, 80, "tcp")
    cm.cm_register_send(flow_id, callback if callback is not None else lambda fid: None)
    return flow_id


class TestDetachMidGrant:
    def test_close_with_pending_grant_releases_the_reservation(self):
        cm = make_cm()
        granted = []
        f1 = open_flow(cm, 1001, granted.append)
        f2 = open_flow(cm, 1002, granted.append)
        macroflow = cm.macroflow_of(f1)

        cm.cm_request(f1)
        assert macroflow.reserved_bytes == macroflow.mtu  # grant issued, not delivered
        cm.cm_close(f1)  # the app detaches before the deferred callback runs
        assert macroflow.reserved_bytes == 0.0

        # The freed window must be grantable to the surviving sibling: with a
        # 1-MTU initial window a leaked reservation would starve f2 forever.
        cm.cm_request(f2)
        cm.sim.run()
        assert f2 in granted

    def test_grant_callback_firing_after_close_sees_dead_handle(self):
        cm = make_cm()
        outcomes = []

        def decline_like_a_client(flow_id):
            # CMTCPSender's documented contract: a grant arriving after close
            # is declined via cm_notify(flow, 0), and the client swallows the
            # unknown/closed-flow error because the race is benign.
            try:
                cm.cm_notify(flow_id, 0)
                outcomes.append("notified")
            except UnknownFlowError:
                outcomes.append("unknown")

        f1 = open_flow(cm, 1001, decline_like_a_client)
        cm.cm_request(f1)
        cm.cm_close(f1)
        cm.sim.run()  # the deferred cmapp_send fires now, after the close
        assert outcomes == ["unknown"]

    def test_closed_flow_entries_in_scheduler_consume_no_window(self):
        cm = make_cm()
        granted = []
        f1 = open_flow(cm, 1001, granted.append)
        f2 = open_flow(cm, 1002, granted.append)
        macroflow = cm.macroflow_of(f1)
        # Queue several requests for f1, then close it: the stale scheduler
        # entries must be skipped without burning grant allowance.
        macroflow.controller._cwnd = float(4 * macroflow.mtu)
        cm.cm_request(f1, count=3)
        cm.sim.run()
        granted.clear()
        cm.cm_close(f1)
        cm.cm_request(f2, count=2)
        cm.sim.run()
        assert granted == [f2, f2]


class TestMacroflowDrainAndRepopulate:
    def _grow_window(self, cm, flow_id, rounds=4):
        macroflow = cm.macroflow_of(flow_id)
        for _ in range(rounds):
            nbytes = int(macroflow.grant_allowance(64)) * macroflow.mtu or macroflow.mtu
            cm.cm_notify(flow_id, nbytes)
            cm.cm_update(flow_id, nbytes, nbytes, CM_NO_CONGESTION, 0.05)
        return macroflow.controller.cwnd

    def test_empty_macroflow_retains_state_for_the_next_flow(self):
        cm = make_cm()
        f1 = open_flow(cm, 1001)
        macroflow = cm.macroflow_of(f1)
        grown = self._grow_window(cm, f1)
        assert grown > macroflow.mtu  # the window actually opened

        cm.cm_close(f1)
        assert macroflow.is_empty

        f2 = open_flow(cm, 1002)
        assert cm.macroflow_of(f2) is macroflow  # same aggregate, not a new one
        assert macroflow.controller.cwnd == grown  # Figure 7: no fresh slow start

    def test_repopulating_cancels_the_scheduled_expiry(self):
        cm = make_cm(macroflow_idle_timeout=1.0)
        f1 = open_flow(cm, 1001)
        macroflow = cm.macroflow_of(f1)
        cm.cm_close(f1)
        f2 = open_flow(cm, 1002)

        cm.sim.schedule(5.0, lambda: None)  # idle the clock past the timeout
        cm.sim.run()
        assert macroflow in cm.macroflows  # expiry was cancelled by the re-add
        assert cm.macroflow_of(f2) is macroflow

    def test_state_after_last_flow_leaves_expires_on_the_idle_timeout(self):
        cm = make_cm(macroflow_idle_timeout=1.0)
        f1 = open_flow(cm, 1001)
        macroflow = cm.macroflow_of(f1)
        grown = self._grow_window(cm, f1)
        cm.cm_close(f1)

        # Within the timeout the state is retained...
        cm.sim.run(until=0.5)
        assert macroflow in cm.macroflows

        # ...and past it the macroflow is gone; a new flow to the same
        # destination starts from a fresh 1-MTU window.
        cm.sim.schedule(2.0, lambda: None)
        cm.sim.run()
        assert macroflow not in cm.macroflows
        f2 = open_flow(cm, 1003)
        fresh = cm.macroflow_of(f2)
        assert fresh is not macroflow
        assert fresh.controller.cwnd == fresh.mtu < grown

    def test_drained_macroflow_has_no_inflight_residue(self):
        cm = make_cm()
        f1 = open_flow(cm, 1001)
        macroflow = cm.macroflow_of(f1)
        cm.cm_request(f1)
        cm.cm_notify(f1, 500)  # bytes left the host, never acknowledged
        cm.cm_close(f1)
        assert macroflow.outstanding_bytes == 0.0
        assert macroflow.reserved_bytes == 0.0


class TestChurnThroughTheScenarioLayer:
    """End-to-end: the tcp_flows generator leaves the CM tables clean."""

    @pytest.mark.parametrize("variant", ["cm", "reno"])
    def test_churned_flows_all_leave_the_cm(self, variant):
        from repro.scenario import (
            HostSpec,
            LinkSpec,
            ScenarioSpec,
            StopSpec,
            WorkloadSpec,
        )
        from repro.scenario.builder import build
        from repro.scenario.runner import run_built

        spec = ScenarioSpec(
            name=f"churn_clean_{variant}",
            hosts=[HostSpec(name="src", cm=True), HostSpec(name="dst")],
            links=[LinkSpec(a="src", b="dst", rate_bps=20e6, delay=0.005)],
            workloads=[WorkloadSpec(
                kind="tcp_flows", host="src", peer="dst",
                params={"rate": 6.0, "variant": variant, "min_bytes": 5_000,
                        "max_bytes": 50_000, "reap_interval": 0.1},
            )],
            stop=StopSpec(until=4.0),
            seed=11,
        )
        scenario = build(spec, seed=11)
        result = run_built(scenario)
        metrics = result.workload("tcp_flows[0]")["metrics"]
        assert metrics["flows_started"] > 5
        # Every churned flow was detached: no CM flow table residue, and the
        # destination host holds no leftover TCP handlers from the listeners.
        assert scenario.hosts["src"].cm.open_flow_count == 0
        registered_tcp = [key for key in scenario.hosts["dst"].ip._handlers
                          if key[0] == "tcp"]
        assert registered_tcp == []

    def test_macroflow_survives_total_flow_drain_mid_run(self):
        from repro.scenario import (
            HostSpec,
            LinkSpec,
            ScenarioSpec,
            StopSpec,
            WorkloadSpec,
        )
        from repro.scenario.builder import build
        from repro.scenario.runner import run_built

        # A sparse arrival process on a fast link guarantees moments where
        # zero flows are active; the per-destination macroflow must persist
        # across them (idle timeout default is much longer than the gaps).
        spec = ScenarioSpec(
            name="drain_refill",
            hosts=[HostSpec(name="src", cm=True), HostSpec(name="dst")],
            links=[LinkSpec(a="src", b="dst", rate_bps=50e6, delay=0.002)],
            workloads=[WorkloadSpec(
                kind="tcp_flows", host="src", peer="dst",
                params={"rate": 1.5, "min_bytes": 4_000, "max_bytes": 20_000,
                        "reap_interval": 0.05},
            )],
            stop=StopSpec(until=6.0),
            seed=4,
        )
        scenario = build(spec, seed=4)
        result = run_built(scenario)
        metrics = result.workload("tcp_flows[0]")["metrics"]
        assert metrics["flows_completed"] >= 3
        cm = scenario.hosts["src"].cm
        # One shared macroflow served every generation of churned flows.
        keyed = [mf for mf in cm.macroflows if mf.key is not None]
        assert len(keyed) == 1
        assert keyed[0].bytes_acked_total >= metrics["bytes_acked"]
