"""Tests for UDP sockets, CM-paced UDP sockets and application-level feedback."""

import pytest

from repro.core import CM_NO_CONGESTION, CM_PERSISTENT_CONGESTION, CM_TRANSIENT_CONGESTION
from repro.transport.udp import AckReflector, AppFeedbackTracker, CMUDPSocket, UDPSocket


class TestUDPSocket:
    def test_send_and_receive(self, make_pair):
        pair = make_pair()
        received = []
        server = UDPSocket(pair.receiver, local_port=9000)
        server.on_receive = received.append
        client = UDPSocket(pair.sender)
        client.sendto(500, pair.receiver.addr, 9000, headers={"seq": 1})
        pair.sim.run()
        assert len(received) == 1
        assert received[0].headers["seq"] == 1
        assert server.bytes_received == 500

    def test_connected_send(self, make_pair):
        pair = make_pair()
        server = UDPSocket(pair.receiver, local_port=9000)
        client = UDPSocket(pair.sender)
        client.connect(pair.receiver.addr, 9000)
        packet = client.send(100)
        assert packet.cm_matchable is True
        assert client.is_connected

    def test_unconnected_send_requires_destination(self, make_pair):
        pair = make_pair()
        client = UDPSocket(pair.sender)
        with pytest.raises(RuntimeError):
            client.send(100)
        packet = client.sendto(100, pair.receiver.addr, 9000)
        assert packet.cm_matchable is False

    def test_send_charges_app_costs(self, make_pair):
        pair = make_pair()
        client = UDPSocket(pair.sender)
        before = pair.sender.costs.total_us
        client.sendto(1000, pair.receiver.addr, 9000)
        assert pair.sender.costs.total_us > before

    def test_closed_socket_rejects_send_and_ignores_receive(self, make_pair):
        pair = make_pair()
        client = UDPSocket(pair.sender)
        client.close()
        with pytest.raises(RuntimeError):
            client.sendto(10, pair.receiver.addr, 9000)

    def test_negative_payload_rejected(self, make_pair):
        pair = make_pair()
        client = UDPSocket(pair.sender)
        with pytest.raises(ValueError):
            client.sendto(-1, pair.receiver.addr, 9000)


class TestCMUDPSocket:
    def test_requires_cm(self, make_pair):
        pair = make_pair(with_cm=False)
        with pytest.raises(RuntimeError):
            CMUDPSocket(pair.sender)

    def test_must_connect_before_send(self, cm_pair):
        socket = CMUDPSocket(cm_pair.sender)
        with pytest.raises(RuntimeError):
            socket.sendto(100, cm_pair.receiver.addr, 9000)

    def test_transmissions_paced_by_cm(self, cm_pair):
        received = []
        server = UDPSocket(cm_pair.receiver, local_port=9000)
        server.on_receive = received.append
        socket = CMUDPSocket(cm_pair.sender)
        socket.connect(cm_pair.receiver.addr, 9000)
        for seq in range(5):
            socket.sendto(1400, cm_pair.receiver.addr, 9000, headers={"seq": seq})
        # With a 1-MTU initial window and no feedback, only the first packet
        # may leave immediately; the rest wait in the kernel queue.
        cm_pair.sim.run(until=0.5)
        assert len(received) <= 2
        assert socket.queued_packets >= 3

    def test_feedback_drains_the_queue(self, cm_pair):
        reflector = AckReflector(cm_pair.receiver, port=9000)
        socket = CMUDPSocket(cm_pair.sender)
        socket.connect(cm_pair.receiver.addr, 9000)
        tracker = AppFeedbackTracker()

        def on_ack(packet):
            report = tracker.on_ack(packet.headers["ack_seq"], packet.headers["ts_echo"], cm_pair.sim.now)
            if report:
                cm_pair.cm.cm_update(socket.flow_id, *report)

        socket.on_receive = on_ack
        for seq in range(20):
            socket.sendto(1400, cm_pair.receiver.addr, 9000, headers={"seq": seq, "ts": cm_pair.sim.now})
            tracker.on_sent(seq, 1400)
        cm_pair.sim.run(until=20.0)
        assert reflector.packets_received == 20
        assert socket.queued_packets == 0
        reflector.close()

    def test_queue_overflow_drops(self, cm_pair):
        socket = CMUDPSocket(cm_pair.sender, max_queue_packets=3)
        socket.connect(cm_pair.receiver.addr, 9000)
        for seq in range(10):
            socket.sendto(1400, cm_pair.receiver.addr, 9000, headers={"seq": seq})
        assert socket.queue_drops > 0

    def test_wrong_destination_rejected(self, cm_pair):
        socket = CMUDPSocket(cm_pair.sender)
        socket.connect(cm_pair.receiver.addr, 9000)
        with pytest.raises(ValueError):
            socket.sendto(10, "10.9.9.9", 1)

    def test_close_releases_cm_flow(self, cm_pair):
        socket = CMUDPSocket(cm_pair.sender)
        socket.connect(cm_pair.receiver.addr, 9000)
        assert cm_pair.cm.open_flow_count == 1
        socket.close()
        assert cm_pair.cm.open_flow_count == 0


class TestAckReflector:
    def test_per_packet_acks(self, make_pair):
        pair = make_pair()
        reflector = AckReflector(pair.receiver, port=9000)
        acks = []
        client = UDPSocket(pair.sender, local_port=5000)
        client.on_receive = acks.append
        for seq in range(3):
            client.sendto(200, pair.receiver.addr, 9000, headers={"seq": seq, "ts": pair.sim.now})
        pair.sim.run()
        assert len(acks) == 3
        assert acks[-1].headers["ack_seq"] == 2
        assert reflector.acks_sent == 3

    def test_batched_acks_by_count(self, make_pair):
        pair = make_pair()
        reflector = AckReflector(pair.receiver, port=9000, ack_every_packets=5)
        acks = []
        client = UDPSocket(pair.sender, local_port=5000)
        client.on_receive = acks.append
        for seq in range(10):
            client.sendto(200, pair.receiver.addr, 9000, headers={"seq": seq, "ts": pair.sim.now})
        pair.sim.run()
        assert len(acks) == 2
        assert acks[0].headers["acked_packets"] == 5

    def test_batched_acks_by_delay(self, make_pair):
        pair = make_pair()
        reflector = AckReflector(pair.receiver, port=9000, ack_every_packets=100, ack_delay=1.0)
        acks = []
        client = UDPSocket(pair.sender, local_port=5000)
        client.on_receive = acks.append
        for seq in range(3):
            client.sendto(200, pair.receiver.addr, 9000, headers={"seq": seq, "ts": pair.sim.now})
        pair.sim.run(until=3.0)
        assert len(acks) == 1
        assert acks[0].headers["acked_packets"] == 3

    def test_invalid_batching(self, make_pair):
        pair = make_pair()
        with pytest.raises(ValueError):
            AckReflector(pair.receiver, port=9000, ack_every_packets=0)


class TestAppFeedbackTracker:
    def test_in_order_ack(self):
        tracker = AppFeedbackTracker()
        tracker.on_sent(0, 1000)
        report = tracker.on_ack(0, ts_echo=1.0, now=1.05)
        assert report.nsent == 1000
        assert report.nrecd == 1000
        assert report.lossmode == CM_NO_CONGESTION
        assert report.rtt == pytest.approx(0.05)

    def test_gap_detected_as_transient_loss(self):
        tracker = AppFeedbackTracker()
        for seq in range(3):
            tracker.on_sent(seq, 1000)
        tracker.on_ack(0, None, 1.0)
        report = tracker.on_ack(2, None, 1.1)  # seq 1 missing
        assert report.lossmode == CM_TRANSIENT_CONGESTION
        assert report.nsent == 2000
        assert report.nrecd == 1000
        assert tracker.loss_events == 1

    def test_mostly_missing_batch_is_persistent(self):
        tracker = AppFeedbackTracker()
        for seq in range(6):
            tracker.on_sent(seq, 1000)
        report = tracker.on_ack(5, None, 1.0)  # only one of six arrived
        assert report.lossmode == CM_PERSISTENT_CONGESTION

    def test_stale_and_duplicate_acks_ignored(self):
        tracker = AppFeedbackTracker()
        tracker.on_sent(0, 1000)
        tracker.on_sent(1, 1000)
        assert tracker.on_ack(1, None, 1.0) is not None
        assert tracker.on_ack(1, None, 1.1) is None
        assert tracker.on_ack(0, None, 1.2) is None

    def test_cumulative_ack(self):
        tracker = AppFeedbackTracker()
        for seq in range(10):
            tracker.on_sent(seq, 100)
        report = tracker.on_cumulative_ack(
            acked_packets=10, acked_bytes=1000, ts_echo=0.5, now=0.6, highest_seq=9
        )
        assert report.nsent == 1000
        assert report.nrecd == 1000
        assert report.lossmode == CM_NO_CONGESTION
        assert tracker.in_flight_packets == 0

    def test_cumulative_ack_with_losses(self):
        tracker = AppFeedbackTracker()
        for seq in range(10):
            tracker.on_sent(seq, 100)
        report = tracker.on_cumulative_ack(
            acked_packets=8, acked_bytes=800, ts_echo=None, now=1.0, highest_seq=9
        )
        assert report.lossmode == CM_TRANSIENT_CONGESTION
        assert report.nsent == 1000
        assert report.nrecd == 800

    def test_report_tuple_fields(self):
        tracker = AppFeedbackTracker()
        tracker.on_sent(0, 10)
        report = tracker.on_ack(0, None, 1.0)
        nsent, nrecd, lossmode, rtt = report
        assert (nsent, nrecd, lossmode, rtt) == (report.nsent, report.nrecd, report.lossmode, report.rtt)
