"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.netsim.engine import SimulationError, Simulator, Timer


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start=5.0).now == 5.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        order = []
        for name in "abcd":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == list("abcd")

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_at_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_call_soon_runs_after_current_event(self, sim):
        order = []

        def first():
            order.append("first")
            sim.call_soon(order.append, "soon")
            order.append("still-first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "still-first", "soon"]

    def test_keyword_arguments_rejected(self, sim):
        # Callback arguments are positional-only on the scheduling fast path
        # (a kwargs dict per call is an allocation the hot path can't
        # afford); functools.partial is the supported spelling.
        import functools

        with pytest.raises(TypeError):
            sim.schedule(0.1, lambda **kw: None, value=42)
        seen = {}
        sim.schedule(0.1, functools.partial(lambda **kw: seen.update(kw), value=42))
        sim.run()
        assert seen == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_pending_lifecycle(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert event.pending
        sim.run()
        assert not event.pending


class TestRun:
    def test_run_until_horizon_leaves_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        end = sim.run(until=2.0)
        assert fired == ["early"]
        assert end == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_with_no_events_advances_to_horizon(self, sim):
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0

    def test_run_until_before_now_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_max_events_limits_dispatch(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(0.1, fired.append, 1)
        sim.schedule(0.2, sim.stop)
        sim.schedule(0.3, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_events_dispatched_counter(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_skips_cancelled(self, sim):
        event = sim.schedule(0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.peek() == 1.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None

    def test_run_until_idle(self, sim):
        fired = []
        sim.schedule(0.5, fired.append, 1)
        sim.run_until_idle()
        assert fired == [1]


class TestTimer:
    def test_timer_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(1.0)
        sim.run()
        assert fired == ["x"]

    def test_timer_restart_pushes_back_expiry(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.schedule(0.5, timer.restart, 1.0)
        sim.run()
        assert fired == [1.5]

    def test_timer_cancel_prevents_fire(self, sim):
        fired = []
        timer = Timer(sim, fired.append, 1)
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_timer_pending_and_expiry(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        assert timer.expires_at is None
        timer.start(2.0)
        assert timer.pending
        assert timer.expires_at == pytest.approx(2.0)
        sim.run()
        assert not timer.pending

    def test_timer_can_be_restarted_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]


class TestStrictCancellation:
    """PR 1: misuse that used to silently misbehave now raises."""

    def test_cancel_after_dispatch_raises(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert event.dispatched
        with pytest.raises(SimulationError):
            event.cancel()

    def test_cancel_after_dispatch_raises_even_via_step(self, sim):
        event = sim.schedule(0.5, lambda: None)
        assert sim.step() is True
        with pytest.raises(SimulationError):
            event.cancel()

    def test_cancel_twice_still_fine(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()  # idempotent for never-dispatched events
        assert event.cancelled and not event.pending

    def test_stop_then_resume_with_earlier_horizon_raises(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, sim.stop)
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=10.0)
        assert fired == ["a"]
        with pytest.raises(SimulationError):
            sim.run(until=1.5)
        # Resuming with a legal horizon still works.
        sim.run(until=6.0)
        assert fired == ["a", "b"]

    def test_stop_then_resume_with_earlier_horizon_raises_after_plain_run(self, sim):
        sim.schedule(3.0, sim.stop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=2.0)


class TestLazyHeap:
    def test_cancelled_events_do_not_linger_forever(self, sim):
        # Mass-cancel far more events than the compaction threshold; the
        # internal heap must shrink without any of them being dispatched.
        events = [sim.schedule(10.0, lambda: None) for _ in range(5000)]
        for event in events:
            event.cancel()
        assert len(sim._heap) < 5000
        assert sim.peek() is None
        sim.run()
        assert sim.events_dispatched == 0

    def test_cancel_interleaved_with_dispatch(self, sim):
        fired = []
        keep = [sim.schedule(0.1 * (i + 1), fired.append, i) for i in range(10)]
        for event in keep[1::2]:
            event.cancel()
        sim.run()
        assert fired == [0, 2, 4, 6, 8]

    def test_mid_run_compaction_keeps_dispatching(self, sim):
        # A callback that mass-cancels (triggering heap compaction) and then
        # schedules more work: the dispatch loop must keep draining the same
        # (compacted) heap, and the dead-entry accounting must stay sane.
        fired = []
        victims = []

        def setup():
            victims.extend(sim.schedule(10.0, lambda: None) for _ in range(1200))

        def purge_and_continue():
            for event in victims:
                event.cancel()
            sim.schedule(1.0, fired.append, "follow-up")

        sim.schedule(0.1, setup)
        sim.schedule(0.5, purge_and_continue)
        sim.run()
        assert fired == ["follow-up"]
        assert sim._dead == 0
        assert sim.peek() is None

    def test_horizon_overshoot_event_survives(self, sim):
        # The first event past the horizon is popped and pushed back; it must
        # still fire, in order, on the next run.
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "late")
        sim.schedule(3.0, fired.append, "later")
        sim.run(until=2.0)
        assert fired == ["early"]
        sim.run()
        assert fired == ["early", "late", "later"]


class TestTimerCoalescing:
    def test_restart_later_keeps_single_heap_entry(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        depth = len(sim._heap)
        for _ in range(100):
            timer.restart(2.0)  # deadline only ever moves later
        assert len(sim._heap) == depth
        assert timer.expires_at == pytest.approx(2.0)

    def test_restart_later_fires_at_final_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        for delay in (0.5, 1.0, 1.5, 2.0):
            sim.schedule(delay, timer.restart, 1.0)
        sim.run()
        assert fired == [pytest.approx(3.0)]

    def test_restart_earlier_requeues(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        timer.restart(1.0)
        sim.run()
        assert fired == [pytest.approx(1.0)]

    def test_cancel_after_coalesced_restart(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(1.0)
        timer.restart(2.0)
        timer.cancel()
        assert not timer.pending and timer.expires_at is None
        sim.run()
        assert fired == []

    def test_cancel_then_restart(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.cancel()
        timer.start(2.0)
        sim.run()
        assert fired == [pytest.approx(2.0)]

    def test_negative_delay_rejected(self, sim):
        timer = Timer(sim, lambda: None)
        with pytest.raises(SimulationError):
            timer.start(-0.5)

    def test_restart_from_callback_during_run(self, sim):
        # The re-arm path runs inside the dispatch loop; firing must happen
        # exactly once, at the coalesced deadline.
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.3)

        def ack(i):
            if i < 5:
                timer.restart(0.3)

        for i in range(5):
            sim.schedule(0.1 * (i + 1), ack, i)
        sim.run()
        assert fired == [pytest.approx(0.8)]
