"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.netsim.engine import SimulationError, Simulator, Timer


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start=5.0).now == 5.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        order = []
        for name in "abcd":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == list("abcd")

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_at_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_call_soon_runs_after_current_event(self, sim):
        order = []

        def first():
            order.append("first")
            sim.call_soon(order.append, "soon")
            order.append("still-first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "still-first", "soon"]

    def test_kwargs_passed_to_callback(self, sim):
        seen = {}
        sim.schedule(0.1, lambda **kw: seen.update(kw), value=42)
        sim.run()
        assert seen == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_pending_lifecycle(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert event.pending
        sim.run()
        assert not event.pending


class TestRun:
    def test_run_until_horizon_leaves_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        end = sim.run(until=2.0)
        assert fired == ["early"]
        assert end == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_with_no_events_advances_to_horizon(self, sim):
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0

    def test_run_until_before_now_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_max_events_limits_dispatch(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(0.1, fired.append, 1)
        sim.schedule(0.2, sim.stop)
        sim.schedule(0.3, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_events_dispatched_counter(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_skips_cancelled(self, sim):
        event = sim.schedule(0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.peek() == 1.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None

    def test_run_until_idle(self, sim):
        fired = []
        sim.schedule(0.5, fired.append, 1)
        sim.run_until_idle()
        assert fired == [1]


class TestTimer:
    def test_timer_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(1.0)
        sim.run()
        assert fired == ["x"]

    def test_timer_restart_pushes_back_expiry(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.schedule(0.5, timer.restart, 1.0)
        sim.run()
        assert fired == [1.5]

    def test_timer_cancel_prevents_fire(self, sim):
        fired = []
        timer = Timer(sim, fired.append, 1)
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_timer_pending_and_expiry(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        assert timer.expires_at is None
        timer.start(2.0)
        assert timer.pending
        assert timer.expires_at == pytest.approx(2.0)
        sim.run()
        assert not timer.pending

    def test_timer_can_be_restarted_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]
