"""Tests for the end-host CPU cost model."""

import pytest

from repro.hostmodel import CostModel, CpuLedger, HostCosts, OPERATIONS


class TestCostModel:
    def test_price_lookup(self):
        model = CostModel()
        assert model.price("syscall") == model.syscall

    def test_unknown_operation_raises(self):
        with pytest.raises(KeyError):
            CostModel().price("frobnicate")

    def test_scaled_multiplies_every_price(self):
        model = CostModel()
        doubled = model.scaled(2.0)
        for op in OPERATIONS:
            assert doubled.price(op) == pytest.approx(2.0 * model.price(op))

    def test_all_operations_listed(self):
        model = CostModel()
        for op in OPERATIONS:
            assert model.price(op) >= 0


class TestCpuLedger:
    def test_charge_accumulates(self):
        ledger = CpuLedger()
        ledger.charge("tcp", 5.0)
        ledger.charge("tcp", 3.0)
        ledger.charge("cm", 1.0)
        assert ledger.total_us == pytest.approx(9.0)
        assert ledger.busy_us_by_category["tcp"] == pytest.approx(8.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CpuLedger().charge("x", -1.0)

    def test_utilization(self):
        ledger = CpuLedger()
        ledger.charge("x", 500_000)  # 0.5 s of work
        assert ledger.utilization(1.0) == pytest.approx(0.5)
        assert ledger.utilization(0.25) == 1.0  # capped
        assert ledger.utilization(0.0) == 0.0

    def test_snapshot_is_a_copy(self):
        ledger = CpuLedger()
        ledger.charge("x", 1.0)
        snap = ledger.snapshot()
        ledger.charge("x", 1.0)
        assert snap["x"] == pytest.approx(1.0)

    def test_reset(self):
        ledger = CpuLedger()
        ledger.charge("x", 1.0)
        ledger.count("op", 3)
        ledger.reset()
        assert ledger.total_us == 0.0
        assert not ledger.operation_counts


class TestHostCosts:
    def test_charge_operation_counts_and_prices(self):
        costs = HostCosts()
        charged = costs.charge_operation("ioctl", count=2)
        assert charged == pytest.approx(2 * costs.model.ioctl)
        assert costs.ledger.operation_counts["ioctl"] == 2

    def test_copy_scales_with_bytes(self):
        costs = HostCosts()
        small = costs.charge_copy(1024)
        large = costs.charge_copy(4096)
        assert large == pytest.approx(4 * small)

    def test_syscall_flavour_adds_trap_and_op(self):
        costs = HostCosts()
        total = costs.syscall("recv_call")
        assert total == pytest.approx(costs.model.syscall + costs.model.recv_call)

    def test_kernel_paths_charge_checksum(self):
        costs = HostCosts()
        tx = costs.kernel_tx(1500)
        assert tx > costs.model.kernel_tx_packet

    def test_utilization_passthrough(self):
        costs = HostCosts()
        costs.ledger.charge("x", 1e6)
        assert costs.utilization(2.0) == pytest.approx(0.5)
        assert costs.total_us == pytest.approx(1e6)
