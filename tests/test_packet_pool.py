"""Packet-pool contract: no aliasing, no double-release, no leaks.

The pool's safety argument is a three-state machine per packet (unmanaged /
live / free): acquire may only hand out free or brand-new packets, release
may only park live ones.  These tests pin the two failure modes that would
silently corrupt a simulation — an acquire returning a packet somebody still
holds (aliasing), and a pooled packet never coming back (a leak, which in a
long scenario turns the "pool" back into an allocator).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Channel, Host, Simulator
from repro.netsim.packet import Packet, PacketPool, pool_for
from repro.transport.tcp import RenoTCPSender, TCPListener


class TestPoolStateMachine:
    def test_acquire_creates_then_reuses(self):
        pool = PacketPool()
        first = pool.acquire("a", "b", 1, 2, 100)
        assert pool.created == 1 and pool.reused == 0
        pool.release(first)
        again = pool.acquire("c", "d", 3, 4, 200)
        assert again is first  # recycled, not reallocated
        assert pool.created == 1 and pool.reused == 1
        assert (again.src, again.dst, again.payload_bytes) == ("c", "d", 200)
        assert again.ecn_marked is False and again.flow_id is None

    def test_release_of_unmanaged_packet_is_noop(self):
        pool = PacketPool()
        packet = Packet(src="a", dst="b", sport=1, dport=2, protocol="tcp")
        pool.release(packet)
        assert pool.free_count == 0 and pool.released == 0

    def test_double_release_raises(self):
        pool = PacketPool()
        packet = pool.acquire("a", "b", 1, 2)
        pool.release(packet)
        with pytest.raises(RuntimeError):
            pool.release(packet)

    def test_pool_for_is_per_simulator_and_idempotent(self):
        sim_a, sim_b = Simulator(), Simulator()
        pool_a = pool_for(sim_a)
        assert pool_for(sim_a) is pool_a
        assert pool_for(sim_b) is not pool_a

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200), st.randoms())
    def test_acquire_release_interleavings_never_alias_a_live_packet(self, ops, rng):
        # Drive the pool through an arbitrary acquire/release interleaving
        # (True = acquire, False = release a randomly chosen live packet).
        # At every step, each acquired packet must be distinct from every
        # packet currently held live — an acquire that returns an object
        # somebody still references would let two "packets" share one body.
        pool = PacketPool()
        live = []
        for acquire in ops:
            if acquire or not live:
                packet = pool.acquire("s", "d", 1, 2, 100)
                assert all(packet is not held for held in live)
                live.append(packet)
            else:
                pool.release(live.pop(rng.randrange(len(live))))
            assert pool.live_count == len(live)
        # Conservation: everything ever created is either live or free.
        assert pool.created == len(live) + pool.free_count


def _run_transfer(nbytes: int = 200_000):
    sim = Simulator()
    sender_host = Host(sim, "snd", "10.0.0.1")
    receiver_host = Host(sim, "rcv", "10.0.0.2")
    Channel(sim, sender_host, receiver_host, rate_bps=8e6, one_way_delay=0.01,
            queue_limit=20, loss_rate=0.02, seed=7)
    TCPListener(receiver_host, port=80)
    sender = RenoTCPSender(sender_host, receiver_host.addr, 80)
    sender.send(nbytes)
    sim.run()
    assert sender.done
    return sim


class TestPoolLeaks:
    def test_pool_returns_to_baseline_after_a_drained_run(self):
        # Once the simulator drains, every TCP segment ever acquired must be
        # back on the free list: delivered segments are released by the IP
        # input path, lost ones by the link drop paths.
        sim = _run_transfer()
        pool = sim.packet_pool
        assert pool is not None and pool.reused > 0
        assert pool.live_count == 0
        assert pool.free_count == pool.created
        # The whole transfer ran on a handful of recycled segments.
        assert pool.created < 50

    def test_back_to_back_runs_recycle_in_identical_order(self):
        # Pooling must not break run-to-run determinism: the pool hangs off
        # the simulator, so two identical runs see identical recycling.
        stats = []
        for _ in range(2):
            pool = _run_transfer().packet_pool
            stats.append((pool.created, pool.reused, pool.released))
        assert stats[0] == stats[1]

    def test_scenario_run_accounts_for_every_pooled_packet(self):
        # A scenario stops at its horizon with packets still on the wire, so
        # the pool cannot be fully idle — but every live packet must be
        # physically inside a link (queued, serialising or propagating).
        # Anything else is a leak.
        from repro.scenario import get_preset
        from repro.scenario.builder import build
        from repro.scenario.runner import run_built

        scenario = build(get_preset("parking_lot_mix"))
        run_built(scenario)
        pool = scenario.sim.packet_pool
        assert pool is not None and pool.reused > 0

        links = list(scenario.graph_net.links.values()) if scenario.graph_net else []
        for channel in scenario.channels.values():
            links.extend([channel.forward, channel.reverse])
        in_links = 0
        for link in links:
            queued = [packet for packet, _ in link._queue]
            serialising = [link._tx_packet] if link._busy else []
            for packet in queued + serialising + list(link._in_flight):
                if packet._pool_state == 1:
                    in_links += 1
        assert pool.live_count == in_links
