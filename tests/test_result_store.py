"""Result store: ingest/query round trips, dedup, corruption tolerance, gate math."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.results.analytics import check_regressions, compare_labels
from repro.results.labels import (
    current_pr_label,
    derive_bench_label,
    label_sort_key,
    sort_labels,
)
from repro.results.store import IngestReport, ResultStore, classify_payload

# --------------------------------------------------------------------- #
# fixtures                                                              #
# --------------------------------------------------------------------- #
MACHINE = {
    "python": "3.11.7",
    "implementation": "CPython",
    "platform": "Linux-test-x86_64",
}


def bench_report(label, rows, quick=False, machine=None, git_revision="deadbeef"):
    """A BENCH_*.json-shaped dict; ``rows`` maps name -> ops_per_sec."""
    meta = dict(machine or MACHINE)
    meta.update({"label": label, "quick": quick, "git_revision": git_revision,
                 "timestamp": "2026-08-08T00:00:00+0000"})
    benchmarks = {}
    for name, ops_per_sec in rows.items():
        benchmarks[name] = {
            "ops": 1000,
            "wall_s": 1000.0 / ops_per_sec,
            "ops_per_sec": ops_per_sec,
            "notes": f"fixture row {name}",
        }
    return {"meta": meta, "benchmarks": benchmarks}


def scenario_payload(name="web_mix", seed=3, digest="ab" * 32):
    return {
        "name": name,
        "seed": seed,
        "spec_digest": digest,
        "duration_s": 30.0,
        "apps": [{"app": "vat", "host": "h1", "label": "audio",
                  "metrics": {"packets": 120, "goodput_bps": 64000.0, "adapted": True}}],
        "links": [{"link": "h1->h2", "delivered_packets": 400, "dropped_overflow": 3}],
        "hosts": [{"host": "h1", "cpu_total_us": 1234.5}],
        "workloads": [{"kind": "tcp_flows", "host": "h1", "label": "churn",
                       "metrics": {"flows_started": 17}}],
    }


@pytest.fixture
def store():
    with ResultStore(":memory:") as opened:
        yield opened


# --------------------------------------------------------------------- #
# classification                                                        #
# --------------------------------------------------------------------- #
def test_classify_payload_covers_every_artifact_family():
    assert classify_payload(bench_report("BENCH_PR1", {"x": 1.0})) == "bench"
    assert classify_payload(scenario_payload()) == "scenario"
    assert classify_payload({"name": "table1", "title": "t", "columns": [], "rows": []}) \
        == "experiment"
    assert classify_payload({"experiment": "table1", "trials": 4}) == "experiment-meta"
    assert classify_payload({"unrelated": 1}) is None
    assert classify_payload([1, 2, 3]) is None


# --------------------------------------------------------------------- #
# bench ingest / query round trip + dedup                               #
# --------------------------------------------------------------------- #
def test_bench_ingest_query_round_trip(store):
    report = bench_report("BENCH_PR1", {"event_churn": 1000.0, "grant_dispatch": 2000.0})
    outcome = store.ingest_bench_report(report, source="BENCH_PR1.json")
    assert (outcome.ingested, outcome.rows, outcome.deduped) == (1, 2, 0)

    rows = store.bench_rows(label="BENCH_PR1")
    assert {row["name"] for row in rows} == {"event_churn", "grant_dispatch"}
    churn = next(row for row in rows if row["name"] == "event_churn")
    assert churn["ops_per_sec"] == 1000.0
    assert churn["git_revision"] == "deadbeef"
    assert churn["python"] == "3.11.7"
    assert churn["notes"] == "fixture row event_churn"
    assert store.bench_names() == ["event_churn", "grant_dispatch"]
    assert store.bench_labels() == ["BENCH_PR1"]


def test_reingest_identical_report_is_a_counted_dedup(store):
    report = bench_report("BENCH_PR1", {"event_churn": 1000.0})
    store.ingest_bench_report(report)
    outcome = store.ingest_bench_report(report)
    assert (outcome.ingested, outcome.deduped) == (0, 1)
    assert len(store.runs(kind="bench")) == 1
    assert len(store.bench_rows()) == 1


def test_regenerated_label_keeps_history_queries_see_latest(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"event_churn": 1000.0}))
    store.ingest_bench_report(bench_report("BENCH_PR1", {"event_churn": 1500.0}))
    assert len(store.runs(kind="bench", label="BENCH_PR1")) == 2
    rows = store.bench_rows(label="BENCH_PR1")
    assert len(rows) == 1 and rows[0]["ops_per_sec"] == 1500.0


def test_bench_extra_fields_preserved_in_extra_json(store):
    report = bench_report("BENCH_PR1", {"graph_build": 200.0})
    report["benchmarks"]["graph_build"]["nodes"] = 38.0
    store.ingest_bench_report(report)
    row = store.bench_rows(name="graph_build")[0]
    assert json.loads(row["extra"]) == {"nodes": 38.0}


def test_bench_trajectory_orders_labels_numerically(store):
    for pr in (10, 2, 1):
        store.ingest_bench_report(bench_report(f"BENCH_PR{pr}", {"event_churn": 100.0 * pr}))
    trajectory = store.bench_trajectory()
    assert [row["label"] for row in trajectory["event_churn"]] == \
        ["BENCH_PR1", "BENCH_PR2", "BENCH_PR10"]


# --------------------------------------------------------------------- #
# experiment / scenario / trace ingest                                  #
# --------------------------------------------------------------------- #
def test_experiment_artifact_with_sidecar_round_trips(tmp_path, store):
    payload = {"name": "table1", "title": "Table 1", "columns": ["a", "b"],
               "rows": [[1, 2], [3, 4]], "series": {"s": [[0.0, 1.0]]}, "notes": ["n"]}
    sidecar = {"experiment": "table1", "seeds": [1, 2, 3], "jobs": 2, "trials": 6,
               "trials_from_cache": 4, "wall_clock_s": 1.5, "git_revision": "cafe",
               "python": "3.11.7", "timestamp": "t"}
    (tmp_path / "table1.json").write_text(json.dumps(payload))
    (tmp_path / "table1.meta.json").write_text(json.dumps(sidecar))
    outcome = store.ingest_file(str(tmp_path / "table1.json"), label="PR6")
    assert outcome.ingested == 1

    (entry,) = store.experiment_results(name="table1")
    assert entry["label"] == "PR6"
    assert entry["rows"] == [[1, 2], [3, 4]]
    assert entry["series"] == {"s": [[0.0, 1.0]]}
    assert entry["seeds"] == [1, 2, 3]
    assert entry["jobs"] == 2 and entry["trials_from_cache"] == 4
    assert entry["git_revision"] == "cafe"


def test_scenario_ingest_flattens_numeric_metrics(store):
    outcome = store.ingest_scenario_payload(scenario_payload(), label="PR6")
    assert outcome.ingested == 1

    (entry,) = store.scenario_results(name="web_mix")
    assert entry["seed"] == 3 and entry["payload"]["name"] == "web_mix"

    metrics = store.metrics(scenario="web_mix")
    by_key = {(m["scope"], m["entity"], m["metric"]): m["value"] for m in metrics}
    assert by_key[("app", "audio", "goodput_bps")] == 64000.0
    assert by_key[("link", "h1->h2", "delivered_packets")] == 400.0
    assert by_key[("host", "h1", "cpu_total_us")] == 1234.5
    assert by_key[("workload", "churn", "flows_started")] == 17.0
    # Booleans are not numeric metrics.
    assert ("app", "audio", "adapted") not in by_key
    # Everything is keyed by the spec digest.
    assert all(m["spec_digest"] == "ab" * 32 for m in metrics)


def test_scenario_dedup_by_content(store):
    payload = scenario_payload()
    store.ingest_scenario_payload(payload, label="PR6")
    outcome = store.ingest_scenario_payload(payload, label="PR6")
    assert outcome.deduped == 1
    assert len(store.scenario_results()) == 1


def test_trace_ingest_tolerates_torn_lines(tmp_path, store):
    trace = tmp_path / "run.jsonl"
    lines = [
        json.dumps({"t": 0.1, "event": "packet.enqueue", "link": "a->b"}),
        json.dumps({"t": 0.2, "event": "sample", "series": "rate", "value": 5.0}),
        '{"t": 0.3, "event": "packet.deli',  # torn mid-write
    ]
    trace.write_text("\n".join(lines) + "\n")
    outcome = store.ingest_trace(str(trace), label="PR6")
    assert outcome.ingested == 1 and outcome.rows == 2
    assert any("unparseable" in error for error in outcome.errors)

    summary = store.trace_summary()
    assert {(entry["event"], entry["n"]) for entry in summary} == \
        {("packet.enqueue", 1), ("sample", 1)}
    run = store.runs(kind="trace")[0]
    assert json.loads(run["meta"])["bad_lines"] == 1
    # Re-ingesting the same file is a dedup, not a duplicate trace.
    assert store.ingest_trace(str(trace), label="PR6").deduped == 1


# --------------------------------------------------------------------- #
# corruption tolerance + directory walk                                 #
# --------------------------------------------------------------------- #
def test_corrupt_and_unknown_files_are_counted_skips(tmp_path, store):
    (tmp_path / "torn.json").write_text('{"meta": {"label": "BENCH_X"')
    (tmp_path / "mystery.json").write_text('{"what": "ever"}')
    (tmp_path / "good.json").write_text(json.dumps(bench_report("BENCH_PR1", {"x": 1.0})))
    outcome = store.ingest_path(str(tmp_path))
    assert outcome.ingested == 1
    assert outcome.skipped == 2
    assert len(outcome.errors) == 2
    assert any("corrupt" in error for error in outcome.errors)
    assert any("unrecognized" in error for error in outcome.errors)


def test_directory_walk_skips_sidecars_and_ingests_everything_else(tmp_path, store):
    (tmp_path / "BENCH_PR1.json").write_text(json.dumps(bench_report("BENCH_PR1", {"x": 1.0})))
    (tmp_path / "web.json").write_text(json.dumps(scenario_payload()))
    (tmp_path / "t1.json").write_text(json.dumps(
        {"name": "t1", "title": "", "columns": [], "rows": [], "series": {}, "notes": []}))
    (tmp_path / "t1.meta.json").write_text(json.dumps({"experiment": "t1", "trials": 1}))
    (tmp_path / "trace.jsonl").write_text(json.dumps({"t": 0.0, "event": "e"}) + "\n")
    (tmp_path / "notes.txt").write_text("not an artifact")
    outcome = store.ingest_path(str(tmp_path), label="PR6")
    assert outcome.ingested == 4
    assert outcome.skipped == 0
    kinds = sorted(run["kind"] for run in store.runs())
    assert kinds == ["bench", "experiment", "scenario", "trace"]


def test_sidecar_passed_alone_is_an_explained_skip(tmp_path, store):
    path = tmp_path / "t1.meta.json"
    path.write_text(json.dumps({"experiment": "t1", "trials": 1}))
    outcome = store.ingest_file(str(path))
    assert outcome.skipped == 1
    assert "sidecar" in outcome.errors[0]


def test_ingest_report_merge_accumulates():
    a = IngestReport(ingested=1, rows=5)
    b = IngestReport(deduped=2, skipped=1, errors=["boom"])
    a.merge(b)
    assert (a.ingested, a.deduped, a.skipped, a.rows) == (1, 2, 1, 5)
    assert "boom" in a.summary()


# --------------------------------------------------------------------- #
# compare / check math (the CI gate contract)                           #
# --------------------------------------------------------------------- #
def test_compare_labels_ratio_math(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 100.0, "b": 50.0}))
    store.ingest_bench_report(bench_report("BENCH_PR2", {"a": 150.0, "c": 10.0}))
    comparisons = {entry.name: entry for entry in compare_labels(store, "BENCH_PR1", "BENCH_PR2")}
    assert comparisons["a"].ratio == pytest.approx(1.5)
    assert comparisons["b"].ratio is None  # missing on the B side
    assert comparisons["c"].a_ops_per_sec is None


def test_check_trips_on_30pct_slowdown_at_25pct_threshold(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"event_churn": 1000.0}))
    store.ingest_bench_report(bench_report("BENCH_PR2", {"event_churn": 700.0}))
    result = check_regressions(store, max_regression=0.25)
    assert result.candidate_label == "BENCH_PR2"
    assert not result.ok
    (outcome,) = result.regressed
    assert outcome.name == "event_churn"
    assert outcome.baseline_label == "BENCH_PR1"
    assert outcome.ratio == pytest.approx(0.7)
    assert "FAIL" in result.summary()


def test_check_passes_within_threshold_and_on_improvement(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 1000.0, "b": 10.0}))
    store.ingest_bench_report(bench_report("BENCH_PR2", {"a": 800.0, "b": 400.0}))
    result = check_regressions(store, max_regression=0.25)
    assert result.ok  # a: -20% tolerated; b: massive improvement
    assert {outcome.status for outcome in result.outcomes} == {"ok"}


def test_check_uses_best_prior_not_most_recent(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 1000.0}))
    store.ingest_bench_report(bench_report("BENCH_PR2", {"a": 600.0}))
    store.ingest_bench_report(bench_report("BENCH_PR3", {"a": 700.0}))
    result = check_regressions(store, max_regression=0.25)
    # 700 vs best prior (1000, PR1) is a 30% regression even though it beats PR2.
    assert not result.ok
    assert result.regressed[0].baseline_label == "BENCH_PR1"


def test_check_skips_incomparable_quick_and_platform_rows(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 1000.0, "b": 1000.0}))
    candidate = bench_report("BENCH_PR2", {"a": 100.0}, quick=True)
    other_machine = bench_report("BENCH_PR2", {"b": 100.0},
                                 machine={"python": "3.12.1", "implementation": "CPython",
                                          "platform": "Linux-other"})
    store.ingest_bench_report(candidate)
    result = check_regressions(store, candidate_label="BENCH_PR2", max_regression=0.25)
    assert result.ok  # quick candidate vs full history: skipped, not failed
    assert result.outcomes[0].status == "skipped"
    assert "quick=True" in result.outcomes[0].reason

    with ResultStore(":memory:") as fresh:
        fresh.ingest_bench_report(bench_report("BENCH_PR1", {"b": 1000.0}))
        fresh.ingest_bench_report(other_machine)
        result = check_regressions(fresh, max_regression=0.25)
        assert result.ok
        assert result.outcomes[0].status == "skipped"
        # But a deliberate cross-machine comparison can opt out of the
        # platform component (interpreter series still must match).
        loose = check_regressions(fresh, max_regression=0.25, loose=True)
        assert loose.outcomes[0].status == "skipped"  # 3.11 vs 3.12 still blocks

    with ResultStore(":memory:") as fresh:
        same_python = bench_report("BENCH_PR2", {"b": 100.0},
                                   machine={"python": "3.11.9", "implementation": "CPython",
                                            "platform": "Linux-other"})
        fresh.ingest_bench_report(bench_report("BENCH_PR1", {"b": 1000.0}))
        fresh.ingest_bench_report(same_python)
        loose = check_regressions(fresh, max_regression=0.25, loose=True)
        assert not loose.ok  # same interpreter series, platform ignored


def test_check_candidate_without_history_is_all_skips(store):
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 1000.0}))
    result = check_regressions(store, max_regression=0.25)
    assert result.ok
    assert [outcome.status for outcome in result.outcomes] == ["skipped"]


def test_check_rejects_bad_inputs(store):
    with pytest.raises(ValueError):
        check_regressions(store)  # empty store
    store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 1.0}))
    with pytest.raises(ValueError):
        check_regressions(store, candidate_label="BENCH_PR9")
    with pytest.raises(ValueError):
        check_regressions(store, max_regression=1.5)


# --------------------------------------------------------------------- #
# label derivation                                                      #
# --------------------------------------------------------------------- #
def test_label_sort_key_orders_pr_numbers_numerically():
    labels = ["BENCH_PR10", "BENCH_PR2", "BENCH_CI_A", "BENCH_PR1"]
    assert sort_labels(labels) == ["BENCH_PR1", "BENCH_PR2", "BENCH_PR10", "BENCH_CI_A"]
    assert label_sort_key("PR3") < label_sort_key("PR12")


def test_derive_label_env_var_wins(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_LABEL", "BENCH_CUSTOM")
    assert derive_bench_label(str(tmp_path)) == "BENCH_CUSTOM"
    monkeypatch.delenv("REPRO_BENCH_LABEL")
    monkeypatch.setenv("REPRO_PR_LABEL", "PR99")
    assert derive_bench_label(str(tmp_path)) == "BENCH_PR99"
    assert current_pr_label(str(tmp_path)) == "PR99"


def test_derive_label_from_checked_in_history(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_BENCH_LABEL", raising=False)
    monkeypatch.delenv("REPRO_PR_LABEL", raising=False)
    for pr in (1, 2, 5):
        (tmp_path / f"BENCH_PR{pr}.json").write_text("{}")
    (tmp_path / "BENCH_notapr.json").write_text("{}")
    assert current_pr_label(str(tmp_path)) == "PR6"
    assert derive_bench_label(str(tmp_path)) == "BENCH_PR6"


def test_derive_label_without_history_falls_back_to_git(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_BENCH_LABEL", raising=False)
    monkeypatch.delenv("REPRO_PR_LABEL", raising=False)
    label = current_pr_label(str(tmp_path))
    # Inside this checkout git is available; outside it would be "local".
    assert label.startswith("git-") or label == "local"


# --------------------------------------------------------------------- #
# store lifecycle                                                       #
# --------------------------------------------------------------------- #
def test_store_persists_to_disk_and_reopens(tmp_path):
    path = str(tmp_path / "nested" / "results.sqlite")
    with ResultStore(path) as store:
        store.ingest_bench_report(bench_report("BENCH_PR1", {"a": 123.0}))
    with ResultStore(path) as store:
        assert store.bench_rows()[0]["ops_per_sec"] == 123.0
    # The schema version is recorded for forward compatibility.
    db = sqlite3.connect(path)
    (version,) = db.execute(
        "SELECT value FROM store_meta WHERE key = 'schema_version'").fetchone()
    assert version == "1"


def test_counts_reports_every_table(store):
    counts = store.counts()
    assert set(counts) == {"runs", "bench_rows", "experiment_results",
                           "scenario_results", "metrics", "trace_events"}
    assert all(value == 0 for value in counts.values())
