"""Property-based coverage (hypothesis) for the trial layer and its helpers.

Three families of invariants:

* the sharded executor: random seed sets and job counts never change what
  ``reduce()`` sees — outcomes always arrive in spec order, with the same
  JSON-normalized values a serial run would produce;
* the statistics: the NumPy-free mean/stddev/CI agree with the stdlib
  ``statistics`` module on random samples;
* ``format_table``: arbitrary cell widths round-trip through the renderer
  without misalignment.
"""

import json
import math
import statistics

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import stats
from repro.experiments import figure3
from repro.experiments.base import format_table
from repro.experiments.parallel import TrialOutcome, TrialSpec, run_trials
from repro.experiments.registry import ExperimentSpec, register, unregister

# --------------------------------------------------------------------- #
# A deterministic, instant fake experiment for executor properties.      #
# --------------------------------------------------------------------- #
_ECHO_NAME = "_prop_echo"


def _echo_trial(params: dict) -> dict:
    seed = params["seed"]
    # An arbitrary but deterministic function of the seed, mixing int and
    # float payloads so JSON normalization is exercised on both.
    return {"seed": seed, "hash": (seed * 2654435761) % 1_000_003, "value": seed / 7.0}


@pytest.fixture(scope="module", autouse=True)
def _register_echo_experiment():
    register(
        ExperimentSpec(
            name=_ECHO_NAME,
            trials=lambda seeds=(): [TrialSpec(_ECHO_NAME, {"seed": s}) for s in seeds],
            trial=_echo_trial,
            reduce=lambda outcomes: None,
            run=lambda **kwargs: None,
            supports_seeds=True,
        )
    )
    yield
    unregister(_ECHO_NAME)


class TestExecutorProperties:
    @given(
        seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12, unique=True),
        jobs=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_jobs_never_change_outcomes_or_order(self, seeds, jobs):
        specs = [TrialSpec(_ECHO_NAME, {"seed": seed}) for seed in seeds]
        expected = [json.loads(json.dumps(_echo_trial(spec.params))) for spec in specs]
        outcomes = run_trials(specs, jobs=jobs)
        assert [outcome.value for outcome in outcomes] == expected
        assert [outcome.spec.params["seed"] for outcome in outcomes] == list(seeds)

    @given(seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=8, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_cache_key_is_stable_and_collision_free_across_params(self, seeds):
        specs = [TrialSpec(_ECHO_NAME, {"seed": seed}) for seed in seeds]
        keys = {spec.cache_key() for spec in specs}
        assert len(keys) == len(seeds)
        assert all(spec.cache_key() == spec.cache_key() for spec in specs)

    @given(
        throughputs=st.lists(
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=2, max_size=8
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_figure3_reduce_is_pure(self, throughputs):
        # reduce() must be a pure function of the outcome list: synthetic
        # trial values, two calls, byte-identical JSON.
        specs = figure3.trials(
            loss_rates=(0.01,), transfer_bytes=1000, seeds=tuple(range(len(throughputs)))
        )
        outcomes = [
            TrialOutcome(spec=spec, value=throughputs[index % len(throughputs)])
            for index, spec in enumerate(specs)
        ]
        assert figure3.reduce(outcomes).to_json() == figure3.reduce(outcomes).to_json()


class TestStatsMatchReference:
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_and_stddev_match_stdlib(self, samples):
        summary = stats.summarize(samples)
        assert math.isclose(summary.mean, statistics.fmean(samples), rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(
            summary.stddev, statistics.stdev(samples), rel_tol=1e-7, abs_tol=1e-6
        )

    @given(
        samples=st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=2, max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ci_matches_t_times_standard_error(self, samples):
        summary = stats.summarize(samples)
        expected = (
            stats.t_critical_95(len(samples) - 1)
            * statistics.stdev(samples)
            / math.sqrt(len(samples))
        )
        assert math.isclose(summary.ci95, expected, rel_tol=1e-7, abs_tol=1e-6)

    def test_degenerate_sample_counts(self):
        assert stats.summarize([]).mean == 0.0
        assert stats.summarize([5.0]).stddev == 0.0
        assert stats.summarize([5.0]).ci95 == 0.0
        assert stats.t_critical_95(0) == 0.0
        # t decreases towards the normal critical value as df grows.
        assert stats.t_critical_95(1) > stats.t_critical_95(10) > stats.t_critical_95(1000)
        assert stats.t_critical_95(1000) == pytest.approx(1.960)


_cell = st.one_of(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.",
        min_size=0,
        max_size=18,
    ),
    st.integers(min_value=-10**12, max_value=10**12),
)


class TestFormatTableRoundTrip:
    @staticmethod
    def _fmt(value):
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    @given(
        columns=st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
            min_size=1,
            max_size=5,
        ),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_cells_round_trip_without_misalignment(self, columns, data):
        rows = data.draw(
            st.lists(
                st.lists(_cell, min_size=len(columns), max_size=len(columns)),
                min_size=0,
                max_size=6,
            )
        )
        text = format_table(columns, rows)
        lines = text.split("\n")
        assert len(lines) == 2 + len(rows)

        # Every line is padded to exactly the same width: nothing overflows
        # its column and nothing shifts the columns to its right.
        assert len({len(line) for line in lines}) == 1

        # The separator's dash runs define the column spans; slicing any data
        # line by those spans must recover the formatted cell values exactly.
        separator = lines[1]
        spans = []
        start = 0
        for width in (len(group) for group in separator.split("  ")):
            spans.append((start, start + width))
            start += width + 2
        assert len(spans) == len(columns)
        for line, row in zip(lines[2:], rows):
            for (begin, end), value in zip(spans, row):
                assert line[begin:end].strip() == self._fmt(value)
