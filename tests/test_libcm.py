"""Tests for libcm: the user-space CM library and its control-socket dispatch."""

import pytest

from repro import CongestionManager, HostCosts, LibCM
from repro.core import CM_NO_CONGESTION
from repro.netsim import Host

SRC = "10.0.0.1"
DST = "10.0.0.2"


@pytest.fixture
def host(sim):
    host = Host(sim, "app-host", SRC, costs=HostCosts())
    CongestionManager(host)
    return host


@pytest.fixture
def libcm(host):
    return LibCM(host)


class TestSetupAndValidation:
    def test_requires_cm_on_host(self, sim):
        bare = Host(sim, "bare", "10.0.0.9")
        with pytest.raises(RuntimeError):
            LibCM(bare)

    def test_unknown_mode_rejected(self, host):
        with pytest.raises(ValueError):
            LibCM(host, mode="interrupts")

    def test_request_before_register_rejected(self, libcm):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        with pytest.raises(LookupError):
            libcm.cm_request(fid)

    def test_cm_mtu_passthrough(self, libcm, host):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        assert libcm.cm_mtu(fid) == host.mtu


class TestDispatch:
    def test_send_grant_delivered_through_control_socket(self, libcm, sim):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        grants = []
        libcm.cm_register_send(fid, grants.append)
        libcm.cm_request(fid)
        sim.run()
        assert grants == [fid]
        assert libcm.stats["selects"] >= 1
        assert libcm.stats["ioctls"] >= 1

    def test_batched_grants_use_single_ioctl(self, libcm, sim, host):
        # Two flows to different destinations become ready at the same time;
        # the library must fetch both with one ioctl (the batching argument
        # of paper §2.2.2).
        f1 = libcm.cm_open(SRC, DST, 1000, 80)
        f2 = libcm.cm_open(SRC, "10.0.0.3", 1001, 80)
        grants = []
        libcm.cm_register_send(f1, grants.append)
        libcm.cm_register_send(f2, grants.append)
        ioctls_before = libcm.stats["ioctls"]
        libcm.cm_bulk_request([f1, f2])
        sim.run()
        assert sorted(grants) == sorted([f1, f2])
        # one ioctl for the bulk request plus one to drain both grants
        assert libcm.stats["ioctls"] - ioctls_before == 2

    def test_status_update_delivered(self, libcm, sim):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        updates = []
        libcm.cm_register_update(fid, lambda f, status: updates.append(status))
        libcm.cm_thresh(fid, 1.5, 1.5)
        libcm.cm_update(fid, 0, 0, CM_NO_CONGESTION, 0.05)
        sim.run()
        assert len(updates) == 1
        assert updates[0].srtt == pytest.approx(0.05)

    def test_only_latest_status_survives_coalescing(self, libcm, sim, host):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        updates = []
        libcm.cm_register_update(fid, lambda f, status: updates.append(status.cwnd_bytes))
        libcm.cm_thresh(fid, 1.0001, 1.0001)
        # Generate several status changes before the app's event loop runs.
        for _ in range(3):
            libcm.cm_notify(fid, 1448)
            libcm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        sim.run()
        # The app sees the *current* state (possibly after one coalesced
        # dispatch), not a backlog of three historical snapshots per change.
        assert len(updates) <= 3
        assert updates[-1] == pytest.approx(host.cm.cm_query(fid).cwnd_bytes)

    def test_unregistered_send_callback_declines_grant(self, libcm, sim, host):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        # Bypass the library guard by requesting through the kernel directly,
        # as a buggy application might.
        host.cm.cm_request(fid)
        sim.run()
        macroflow = host.cm.macroflow_of(fid)
        assert macroflow.reserved_bytes == 0  # grant was returned via cm_notify(0)

    def test_poll_mode_requires_explicit_poll(self, host, sim):
        libcm = LibCM(host, mode="poll")
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        grants = []
        libcm.cm_register_send(fid, grants.append)
        libcm.cm_request(fid)
        sim.run()
        assert grants == []  # nothing delivered until the app polls
        delivered = libcm.poll()
        assert delivered == 1
        assert grants == [fid]

    def test_sigio_mode_charges_signal(self, host, sim):
        libcm = LibCM(host, mode="sigio")
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        libcm.cm_register_send(fid, lambda f: None)
        libcm.cm_request(fid)
        sim.run()
        assert libcm.stats["signals"] == 1
        assert host.costs.ledger.operation_counts["signal_delivery"] == 1


class TestPollMode:
    """Polling applications drain events on their own schedule (§2.2)."""

    def test_wakeups_fully_suppressed_for_grants_and_statuses(self, host, sim):
        libcm = LibCM(host, mode="poll")
        f1 = libcm.cm_open(SRC, DST, 1000, 80)
        f2 = libcm.cm_open(SRC, "10.0.0.3", 1001, 80)  # second macroflow
        grants, updates = [], []
        libcm.cm_register_send(f1, grants.append)
        libcm.cm_register_send(f2, grants.append)
        libcm.cm_register_update(f1, lambda f, status: updates.append(f))
        libcm.cm_thresh(f1, 1.5, 1.5)
        libcm.cm_bulk_request([f1, f2])
        libcm.cm_update(f1, 0, 0, CM_NO_CONGESTION, 0.04)
        sim.run()
        # No event-loop integration: nothing delivered, no selects, no signals.
        assert grants == [] and updates == []
        assert libcm.stats["selects"] == 0
        assert libcm.stats["signals"] == 0
        assert libcm.stats["dispatches"] == 0

    def test_poll_returns_callback_count_and_charges_selects(self, host, sim):
        libcm = LibCM(host, mode="poll")
        f1 = libcm.cm_open(SRC, DST, 1000, 80)
        f2 = libcm.cm_open(SRC, "10.0.0.3", 1001, 80)
        grants, updates = [], []
        libcm.cm_register_send(f1, grants.append)
        libcm.cm_register_send(f2, grants.append)
        libcm.cm_register_update(f1, lambda f, status: updates.append(f))
        libcm.cm_thresh(f1, 1.5, 1.5)
        libcm.cm_bulk_request([f1, f2])
        libcm.cm_update(f1, 0, 0, CM_NO_CONGESTION, 0.04)
        sim.run()
        selects_before = host.costs.ledger.operation_counts.get("select_call", 0)
        # Each macroflow starts with a one-MTU window, so both flows were
        # granted; the status change adds a third callback.
        assert libcm.poll() == 3
        assert sorted(grants) == sorted([f1, f2])
        assert updates == [f1]
        # An idle poll delivers nothing but still pays its readiness check.
        assert libcm.poll() == 0
        assert libcm.stats["selects"] == 2
        assert host.costs.ledger.operation_counts["select_call"] - selects_before == 2
        assert libcm.stats["signals"] == 0


class TestSigioMode:
    """SIGIO delivery costs one signal per wakeup, not per event."""

    def test_batched_events_cost_one_signal(self, host, sim):
        libcm = LibCM(host, mode="sigio")
        f1 = libcm.cm_open(SRC, DST, 1000, 80)
        f2 = libcm.cm_open(SRC, "10.0.0.3", 1001, 80)
        grants = []
        libcm.cm_register_send(f1, grants.append)
        libcm.cm_register_send(f2, grants.append)
        libcm.cm_bulk_request([f1, f2])  # both become ready before the wakeup
        sim.run()
        assert sorted(grants) == sorted([f1, f2])
        assert libcm.stats["signals"] == 1
        assert libcm.stats["selects"] == 1
        assert host.costs.ledger.operation_counts["signal_delivery"] == 1

    def test_each_wakeup_costs_a_fresh_signal(self, host, sim):
        libcm = LibCM(host, mode="sigio")
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        updates = []
        libcm.cm_register_update(fid, lambda f, status: updates.append(f))
        libcm.cm_thresh(fid, 1.0001, 1.0001)
        libcm.cm_update(fid, 0, 0, CM_NO_CONGESTION, 0.05)
        sim.run()
        assert updates == [fid]
        assert libcm.stats["signals"] == 1
        # A later rate change past the threshold is a second wakeup and a
        # second signal (the srtt EWMA moves, so the reported rate does too).
        libcm.cm_update(fid, 0, 0, CM_NO_CONGESTION, 0.01)
        sim.run()
        assert updates == [fid, fid]
        assert libcm.stats["signals"] == 2
        assert host.costs.ledger.operation_counts["signal_delivery"] == 2


class TestCloseGrantReturn:
    def test_close_returns_undelivered_grants_to_siblings(self, host, sim):
        """Regression: cm_close used to drop undelivered grants from
        ``_sendable`` without ``cm_notify``-ing them back, instead of using
        the same decline path ``_drain`` applies to unregistered callbacks."""
        libcm = LibCM(host, mode="poll")  # poll keeps grants undelivered
        fa = libcm.cm_open(SRC, DST, 1000, 80)
        fb = libcm.cm_open(SRC, DST, 1001, 80)  # same macroflow as fa
        grants_b = []
        libcm.cm_register_send(fa, lambda f: None)
        libcm.cm_register_send(fb, grants_b.append)
        macroflow = host.cm.macroflow_of(fa)
        libcm.cm_request(fa)  # the one-MTU initial window goes to fa's grant
        libcm.cm_request(fb)  # queued behind it
        assert macroflow.reserved_bytes == macroflow.mtu
        returned = []
        original_notify = host.cm.cm_notify

        def spying_notify(flow_id, nsent):
            returned.append((flow_id, nsent))
            original_notify(flow_id, nsent)

        host.cm.cm_notify = spying_notify
        try:
            libcm.cm_close(fa)
        finally:
            host.cm.cm_notify = original_notify
        # The undelivered grant went back through the API, not into the void.
        assert (fa, 0) in returned
        # ... and the freed window was granted to the sibling immediately.
        assert libcm.poll() == 1
        assert grants_b == [fb]
        assert fb in host.cm._flows and fa not in host.cm._flows


class TestCosts:
    def test_each_wrapper_charges_a_crossing(self, libcm, host):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        before = host.costs.ledger.operation_counts["ioctl"]
        libcm.cm_query(fid)
        libcm.cm_notify(fid, 100)
        libcm.cm_update(fid, 100, 100, CM_NO_CONGESTION, 0.01)
        assert host.costs.ledger.operation_counts["ioctl"] == before + 3

    def test_close_forgets_callbacks(self, libcm, host):
        fid = libcm.cm_open(SRC, DST, 1000, 80)
        libcm.cm_register_send(fid, lambda f: None)
        libcm.cm_close(fid)
        assert not libcm.has_update_callback(fid)
        with pytest.raises(Exception):
            host.cm.cm_query(fid)
