"""Scaled-down runs of every experiment harness, checking the paper's qualitative claims.

These are integration tests: each one runs the same code path as the
corresponding benchmark but with reduced workloads so the whole file stays
in the tens of seconds.
"""

import math

import pytest

from repro.experiments import figure3, figure4, figure5, figure6, figure7, figure8, figure9, figure10, table1
from repro.experiments import ablations
from repro.experiments.base import ExperimentResult, format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestResultContainer:
    def test_add_row_and_column(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_unknown_column(self):
        result = ExperimentResult("x", "t", ["a"])
        with pytest.raises(ValueError):
            result.column("zzz")

    def test_to_text_includes_everything(self):
        result = ExperimentResult("x", "title", ["a"])
        result.add_row(1)
        result.add_series("s", [(0.0, 1.0)])
        result.notes.append("hello")
        text = result.to_text()
        assert "title" in text and "hello" in text and "series: s" in text

    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["x", 1.234567]])
        assert "1.23" in text


class TestFigure3:
    def test_throughput_decreases_with_loss_and_variants_comparable(self):
        result = figure3.run(loss_rates=(0.0, 0.02), transfer_bytes=600_000, seeds=(1,))
        cm = result.column("tcp_cm_kBps")
        linux = result.column("tcp_linux_kBps")
        assert cm[0] > cm[-1]
        assert linux[0] > linux[-1]
        # At zero loss both sit near the receive-window limit (~450-530 KB/s).
        assert 350 < cm[0] < 600
        assert 350 < linux[0] < 600
        assert 0.9 < cm[0] / linux[0] < 1.1


class TestFigures4And5:
    def test_throughput_and_cpu_comparison(self):
        sweep = figure4.bulk_sweep(buffer_counts=(2000, 8000))
        fig4 = figure4.run(sweep=sweep)
        fig5 = figure5.run(sweep=sweep)
        # Long transfers: CM throughput within a few percent of native TCP.
        assert abs(fig4.rows[-1][3]) < 5.0
        # CPU overhead of the CM is small but positive.
        diff_points = fig5.rows[-1][3]
        assert 0.0 < diff_points < 5.0


class TestFigure6AndTable1:
    def test_api_cost_ordering(self):
        result = figure6.run(packet_sizes=(168, 1400), npackets=300)
        variants = result.columns[1:]
        first_row = dict(zip(variants, result.rows[0][1:]))
        assert first_row["alf_noconnect"] > first_row["alf"] > first_row["tcp_cm"]
        assert first_row["buffered"] > first_row["tcp_cm"]
        # Costs grow with packet size for every API.
        last_row = dict(zip(variants, result.rows[-1][1:]))
        for variant in variants:
            assert last_row[variant] > first_row[variant]

    def test_table1_incremental_operations(self):
        result = table1.run(packet_size=700, npackets=250)
        rows = {row[0]: dict(zip(result.columns[1:], row[1:])) for row in result.rows}
        assert rows["alf_noconnect"]["ioctl"] > rows["alf"]["ioctl"]
        assert rows["alf"]["ioctl"] > rows["buffered"]["ioctl"]
        assert rows["buffered"]["gettimeofday"] >= 2.0 - 0.1
        assert rows["tcp_cm"]["ioctl"] == 0.0


class TestFigure7:
    def test_sharing_speeds_up_later_requests(self):
        result = figure7.run(file_size=96 * 1024, n_requests=5)
        cm = result.column("tcp_cm_ms")
        linux = result.column("tcp_linux_ms")
        # Later CM requests are much faster than the first; native TCP's are not.
        assert cm[-1] < 0.8 * cm[0]
        assert linux[-1] > 0.8 * linux[0]
        assert cm[-1] < linux[-1]


class TestFigures8To10:
    def test_alf_adaptation_tracks_bandwidth(self):
        result = figure8.run(duration=12.0, bandwidth_schedule=((0.0, 16e6), (6.0, 4e6)))
        tx = result.series["transmission_rate"]
        early = [v for t, v in tx if 3.0 <= t < 6.0]
        late = [v for t, v in tx if 8.0 <= t < 12.0]
        assert sum(early) / len(early) > sum(late) / len(late)
        assert result.series["cm_reported_rate"]

    def test_rate_callback_mode_switches_less_often(self):
        fig8 = figure8.run(duration=10.0)
        fig9 = figure9.run(duration=10.0)
        switches8 = dict((r[0], r[1]) for r in fig8.rows)["layer_switches"]
        switches9 = dict((r[0], r[1]) for r in fig9.rows)["layer_switches"]
        callbacks9 = dict((r[0], r[1]) for r in fig9.rows)["rate_callbacks"]
        assert switches9 <= switches8
        assert callbacks9 < 200  # threshold-driven, not per-packet

    def test_delayed_feedback_is_bursty_and_slow_to_start(self):
        result = figure10.run(duration=30.0)
        rows = dict((r[0], r[1]) for r in result.rows)
        assert not math.isnan(rows["time_of_first_rate_increase_s"])
        assert rows["time_of_first_rate_increase_s"] > 1.0
        assert rows["peak_to_mean_ratio"] > 1.2


class TestAblationsAndRunner:
    def test_scheduler_ablation_weighted_share(self):
        result = ablations.run_scheduler_ablation(transfer_bytes=4_000_000)
        shares = {row[0]: row[3] for row in result.rows}
        assert abs(shares["round-robin"] - 0.5) < 0.1
        assert shares["weighted 3:1"] > 0.6

    def test_sharing_ablation(self):
        result = ablations.run_sharing_ablation()
        rows = {row[0]: row for row in result.rows}
        shared_second = rows["shared macroflow"][2]
        split_second = rows["cm_split (no sharing)"][2]
        assert shared_second < split_second

    def test_runner_knows_every_experiment(self):
        assert set(EXPERIMENTS) == {
            "figure3", "figure4", "figure5", "figure6", "table1",
            "figure7", "figure8", "figure9", "figure10", "ablations",
            "aggressiveness", "timeseries", "scale", "hostile", "burstloss",
        }

    def test_runner_rejects_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("figure99", verbose=False)
