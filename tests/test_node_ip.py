"""Tests for hosts, routers, routing and the IP layer (including the cm_notify hook)."""

import pytest

from repro import HostCosts
from repro.iplayer import NoRouteError
from repro.netsim import Channel, Host, Packet, Router, Simulator, build_dumbbell
from repro.netsim.packet import PROTO_UDP


def udp_packet(src, dst, sport=1000, dport=2000, payload=100, **kw):
    return Packet(src=src, dst=dst, sport=sport, dport=dport,
                  protocol=PROTO_UDP, payload_bytes=payload, **kw)


class TestHostRouting:
    def test_channel_installs_routes_both_ways(self, make_pair):
        pair = make_pair()
        assert pair.sender.route_for(pair.receiver.addr) is pair.channel.forward
        assert pair.receiver.route_for(pair.sender.addr) is pair.channel.reverse

    def test_default_route_used_for_unknown_destination(self, make_pair):
        pair = make_pair()
        pair.sender.set_default_route(pair.channel.forward)
        assert pair.sender.route_for("unknown") is pair.channel.forward

    def test_no_route_raises(self, sim):
        host = Host(sim, "lonely", "10.9.9.9")
        with pytest.raises(NoRouteError):
            host.ip.send(udp_packet(host.addr, "10.0.0.1"))

    def test_allocate_port_monotonic(self, sim):
        host = Host(sim, "h", "10.0.0.1")
        ports = {host.allocate_port() for _ in range(10)}
        assert len(ports) == 10


class TestPerSimulatorPacketIds:
    def _send_some(self):
        sim = Simulator()
        sender = Host(sim, "sender", "10.0.0.1")
        receiver = Host(sim, "receiver", "10.0.0.2")
        Channel(sim, sender, receiver, rate_bps=10e6, one_way_delay=0.01)
        got = []
        receiver.ip.register_handler(PROTO_UDP, 2000, got.append)
        for _ in range(3):
            sender.ip.send(udp_packet(sender.addr, receiver.addr))
        sim.run()
        return [p.packet_id for p in got]

    def test_sent_packet_ids_restart_per_simulator(self):
        # Ids on the wire come from the simulator, not a process-global
        # counter: back-to-back identical simulations must see identical
        # ids, no matter how many packets earlier runs created.
        first = self._send_some()
        second = self._send_some()
        assert first == [1, 2, 3]
        assert first == second

    def test_construction_ids_still_unique_without_a_simulator(self):
        a = udp_packet("10.0.0.1", "10.0.0.2")
        b = udp_packet("10.0.0.1", "10.0.0.2")
        assert a.packet_id != b.packet_id


class TestIPDemux:
    def test_delivery_to_registered_handler(self, make_pair):
        pair = make_pair()
        got = []
        pair.receiver.ip.register_handler(PROTO_UDP, 2000, got.append)
        pair.sender.ip.send(udp_packet(pair.sender.addr, pair.receiver.addr))
        pair.sim.run()
        assert len(got) == 1
        assert pair.receiver.ip.packets_received == 1

    def test_wildcard_port_handler(self, make_pair):
        pair = make_pair()
        got = []
        pair.receiver.ip.register_handler(PROTO_UDP, 0, got.append)
        pair.sender.ip.send(udp_packet(pair.sender.addr, pair.receiver.addr, dport=7777))
        pair.sim.run()
        assert len(got) == 1

    def test_unregistered_port_counted_as_no_handler(self, make_pair):
        pair = make_pair()
        pair.sender.ip.send(udp_packet(pair.sender.addr, pair.receiver.addr, dport=9))
        pair.sim.run()
        assert pair.receiver.ip.packets_no_handler == 1

    def test_duplicate_registration_rejected(self, make_pair):
        pair = make_pair()
        pair.receiver.ip.register_handler(PROTO_UDP, 2000, lambda p: None)
        with pytest.raises(ValueError):
            pair.receiver.ip.register_handler(PROTO_UDP, 2000, lambda p: None)

    def test_unregister_then_reregister(self, make_pair):
        pair = make_pair()
        pair.receiver.ip.register_handler(PROTO_UDP, 2000, lambda p: None)
        pair.receiver.ip.unregister_handler(PROTO_UDP, 2000)
        pair.receiver.ip.register_handler(PROTO_UDP, 2000, lambda p: None)

    def test_misdelivered_packet_dropped_silently(self, make_pair):
        pair = make_pair()
        packet = udp_packet(pair.sender.addr, "10.99.99.99")
        pair.sender.add_route("10.99.99.99", pair.channel.forward)
        pair.sender.ip.send(packet)
        pair.sim.run()
        assert pair.receiver.ip.packets_received == 0

    def test_kernel_costs_charged_per_packet(self, make_pair):
        pair = make_pair()
        pair.receiver.ip.register_handler(PROTO_UDP, 2000, lambda p: None)
        before = pair.sender.costs.total_us
        pair.sender.ip.send(udp_packet(pair.sender.addr, pair.receiver.addr))
        assert pair.sender.costs.total_us > before


class TestCmNotifyHook:
    def test_matchable_packet_notifies_cm(self, cm_pair):
        cm = cm_pair.cm
        flow_id = cm.cm_open(cm_pair.sender.addr, cm_pair.receiver.addr, 1000, 2000, PROTO_UDP)
        packet = udp_packet(cm_pair.sender.addr, cm_pair.receiver.addr, 1000, 2000, payload=500)
        cm_pair.sender.ip.send(packet)
        assert packet.flow_id == flow_id
        assert cm.macroflow_of(flow_id).outstanding_bytes == 500

    def test_unmatchable_packet_skips_cm(self, cm_pair):
        cm = cm_pair.cm
        flow_id = cm.cm_open(cm_pair.sender.addr, cm_pair.receiver.addr, 1000, 2000, PROTO_UDP)
        packet = udp_packet(cm_pair.sender.addr, cm_pair.receiver.addr, 1000, 2000,
                            payload=500, cm_matchable=False)
        cm_pair.sender.ip.send(packet)
        assert packet.flow_id is None
        assert cm.macroflow_of(flow_id).outstanding_bytes == 0

    def test_packet_for_unknown_flow_not_charged(self, cm_pair):
        packet = udp_packet(cm_pair.sender.addr, cm_pair.receiver.addr, 1, 2)
        cm_pair.sender.ip.send(packet)
        assert packet.flow_id is None


class TestRouterForwarding:
    def test_dumbbell_end_to_end_delivery(self):
        sim = Simulator()
        bell = build_dumbbell(sim, n_pairs=2, bottleneck_bps=10e6, bottleneck_delay=0.005)
        got = []
        bell.receivers[1].ip.register_handler(PROTO_UDP, 2000, got.append)
        bell.senders[0].ip.send(udp_packet(bell.senders[0].addr, bell.receivers[1].addr))
        sim.run()
        assert len(got) == 1
        assert bell.left_router.ip.packets_forwarded == 1
        assert bell.right_router.ip.packets_forwarded == 1

    def test_router_drops_unroutable_silently(self, sim):
        router = Router(sim, "r")
        router.ip.receive(udp_packet("10.0.0.1", "10.0.0.99"))
        assert router.ip.packets_forwarded == 0

    def test_router_has_no_cpu_accounting(self, sim):
        assert Router(sim, "r").costs is None

    def test_dumbbell_requires_at_least_one_pair(self, sim):
        with pytest.raises(ValueError):
            build_dumbbell(sim, n_pairs=0, bottleneck_bps=1e6, bottleneck_delay=0.01)

    def test_reverse_path_works(self):
        sim = Simulator()
        bell = build_dumbbell(sim, n_pairs=1, bottleneck_bps=10e6, bottleneck_delay=0.005)
        got = []
        bell.senders[0].ip.register_handler(PROTO_UDP, 5, got.append)
        bell.receivers[0].ip.send(udp_packet(bell.receivers[0].addr, bell.senders[0].addr, dport=5))
        sim.run()
        assert len(got) == 1


class TestChannel:
    def test_rtt_property(self, make_pair):
        pair = make_pair(one_way_delay=0.03)
        assert pair.channel.rtt == pytest.approx(0.06)

    def test_set_rate_changes_both_directions(self, make_pair):
        pair = make_pair()
        pair.channel.set_rate(5e6)
        assert pair.channel.forward.rate_bps == 5e6
        assert pair.channel.reverse.rate_bps == 5e6

    def test_set_loss_rate_forward_only_by_default(self, make_pair):
        pair = make_pair()
        pair.channel.set_loss_rate(0.1)
        assert pair.channel.forward.loss_rate == 0.1
        assert pair.channel.reverse.loss_rate == 0.0
