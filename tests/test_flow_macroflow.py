"""Tests for flow records and macroflow accounting."""

import pytest

from repro.core import AimdWindowController, RoundRobinScheduler, CM_NO_CONGESTION, CM_TRANSIENT_CONGESTION
from repro.core.flow import DirectChannel, Flow
from repro.core.macroflow import Macroflow
from repro.netsim import Simulator

MTU = 1500


def make_flow(flow_id=1, sim=None):
    sim = sim or Simulator()
    return Flow(flow_id, "10.0.0.1", "10.0.0.2", 1000, 80, "tcp", DirectChannel(sim))


def make_macroflow():
    return Macroflow(1, "10.0.0.2", MTU, AimdWindowController(MTU), RoundRobinScheduler())


class TestFlow:
    def test_flow_key(self):
        flow = make_flow()
        assert flow.key == ("10.0.0.1", "10.0.0.2", 1000, 80, "tcp")

    def test_close_transitions_state(self):
        flow = make_flow()
        assert flow.is_open
        flow.close()
        assert not flow.is_open

    def test_direct_channel_without_callback_is_noop(self, sim):
        flow = make_flow(sim=sim)
        flow.channel.post_send_grant(flow)
        sim.run()  # nothing scheduled, nothing crashes

    def test_direct_channel_defers_callback(self, sim):
        flow = make_flow(sim=sim)
        calls = []
        flow.send_callback = calls.append
        flow.channel.post_send_grant(flow)
        assert calls == []  # not synchronous
        sim.run()
        assert calls == [flow.flow_id]


class TestMacroflowAccounting:
    def test_add_remove_flow(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        assert not macroflow.is_empty
        assert flow.macroflow is macroflow
        macroflow.remove_flow(flow)
        assert macroflow.is_empty
        assert flow.macroflow is None

    def test_charge_transmission_tracks_outstanding(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 1000, now=1.0)
        assert macroflow.outstanding_bytes == 1000
        assert flow.outstanding_bytes == 1000
        assert macroflow.bytes_sent_total == 1000

    def test_grant_reservation_released_by_notify(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.reserved_bytes += MTU
        flow.granted_unnotified += 1
        macroflow.charge_transmission(flow, 0, now=1.0)  # declined grant
        assert macroflow.reserved_bytes == 0
        assert macroflow.outstanding_bytes == 0

    def test_feedback_releases_outstanding_and_grows_window(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 1448, now=0.0)
        before = macroflow.controller.cwnd
        macroflow.apply_feedback(flow, 1448, 1448, CM_NO_CONGESTION, 0.05, now=0.1)
        assert macroflow.outstanding_bytes == 0
        assert macroflow.controller.cwnd > before
        assert macroflow.rtt.smoothed_rtt() == pytest.approx(0.05)

    def test_application_limited_feedback_does_not_grow_window(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        # Grow the window first so a tiny transmission is clearly app-limited.
        for _ in range(6):
            macroflow.charge_transmission(flow, 1448, now=0.0)
            macroflow.apply_feedback(flow, 1448, 1448, CM_NO_CONGESTION, 0.05, now=0.0)
        before = macroflow.controller.cwnd
        macroflow.charge_transmission(flow, 100, now=1.0)
        macroflow.apply_feedback(flow, 100, 100, CM_NO_CONGESTION, 0.05, now=1.1)
        assert macroflow.controller.cwnd == pytest.approx(before)

    def test_congestion_applied_even_when_app_limited(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        for _ in range(6):
            macroflow.charge_transmission(flow, 1448, now=0.0)
            macroflow.apply_feedback(flow, 1448, 1448, CM_NO_CONGESTION, 0.05, now=0.0)
        before = macroflow.controller.cwnd
        macroflow.apply_feedback(flow, 100, 0, CM_TRANSIENT_CONGESTION, 0.0, now=1.0)
        assert macroflow.controller.cwnd < before

    def test_loss_rate_ewma(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 1000, now=0.0)
        macroflow.apply_feedback(flow, 1000, 500, CM_TRANSIENT_CONGESTION, 0.0, now=0.1)
        assert 0 < macroflow.loss_rate <= 0.5

    def test_window_open_rules(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        assert macroflow.window_open()
        macroflow.charge_transmission(flow, 1448, now=0.0)
        # Full-size senders must wait for feedback once the window is used...
        assert not macroflow.window_open()
        macroflow.apply_feedback(flow, 1448, 1448, CM_NO_CONGESTION, 0.05, now=0.1)
        assert macroflow.window_open()

    def test_window_open_for_small_packet_senders(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 172, now=0.0)
        # Only a sliver of the window is used; small-datagram flows may
        # continue even though a full MTU is not available.
        assert macroflow.window_open()

    def test_remove_flow_drops_its_in_flight_accounting(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 2000, now=0.0)
        macroflow.reserved_bytes += MTU
        flow.granted_unnotified += 1
        macroflow.remove_flow(flow)
        assert macroflow.outstanding_bytes == 0
        assert macroflow.reserved_bytes == 0

    def test_clear_in_flight(self):
        macroflow = make_macroflow()
        flow = make_flow()
        macroflow.add_flow(flow)
        macroflow.charge_transmission(flow, 5000, now=0.0)
        macroflow.clear_in_flight()
        assert macroflow.outstanding_bytes == 0
        assert flow.outstanding_bytes == 0

    def test_status_snapshot(self):
        macroflow = make_macroflow()
        status = macroflow.status()
        assert status.cwnd_bytes == MTU
        assert status.mtu == MTU
        assert status.rate > 0
