"""Sharded parallel engine: determinism contract, partitioner, plumbing.

The headline invariant is byte-determinism: ``shards=N`` must reproduce the
single-process result *exactly* — same JSON bytes, same digest — for any N.
These tests pin that against the checked-in preset goldens, then cover the
pieces the contract stands on: the partitioner (hypothesis properties), the
engine's late-event lane, the per-node ingress sequencing, boundary-link
stats reconciliation, shard-invariant workload RNG streams, and the service
integration (progress = barrier time, no mailbox on sharded jobs).
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.ingress import IngressSequencer
from repro.netsim.parallel import partition_graph, run_sharded
from repro.netsim.parallel.boundary import BoundaryLink
from repro.netsim.parallel.wire import decode_packet, encode_packet
from repro.netsim.packet import Packet, TCPHeader
from repro.scenario import get_preset
from repro.scenario.builder import workload_rng_seed
from repro.scenario.runner import run, spec_digest
from repro.scenario.spec import (
    AppSpec,
    EngineSpec,
    GraphLinkSpec,
    GraphNodeSpec,
    GraphSpec,
    ScenarioSpec,
    SpecError,
    StopSpec,
    WorkloadSpec,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# ===================================================================== #
# Byte-determinism against the checked-in goldens                       #
# ===================================================================== #
class TestShardedByteIdentity:
    @pytest.mark.parametrize("preset,seed", [
        ("star_web_churn", 5),
        ("mesh_macroflow_sharing", 9),
    ])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_run_matches_the_golden_bytes(self, preset, seed, shards):
        spec = get_preset(preset)
        produced = run_sharded(spec, seed=seed, shards=shards).to_json()
        with open(os.path.join(GOLDEN_DIR, f"{preset}.seed{seed}.json"),
                  encoding="utf-8") as fh:
            assert produced == fh.read()

    def test_engine_block_is_excluded_from_the_digest(self):
        plain = get_preset("mesh_macroflow_sharing")
        sharded = get_preset("mesh_macroflow_sharing")
        sharded.engine = EngineSpec(shards=4)
        sharded.validate()
        assert spec_digest(plain) == spec_digest(sharded)

    def test_run_dispatches_on_the_spec_engine_block(self):
        baseline = run(get_preset("star_web_churn")).to_json()
        spec = get_preset("star_web_churn")
        spec.engine = EngineSpec(shards=2)
        assert run(spec).to_json() == baseline

    def test_shards_argument_overrides_the_spec_engine_block(self):
        spec = get_preset("star_web_churn")
        spec.engine = EngineSpec(shards=4)
        # shards=1 forces the single-process path despite the spec.
        assert run(spec, shards=1).to_json() == run(get_preset("star_web_churn")).to_json()

    def test_realism_blocks_and_reroute_shard_byte_identically(self):
        from repro.scenario.spec import RerouteSpec

        # Gilbert–Elliott loss, RED, and a scheduled reroute all at once:
        # the per-direction model state and the global route recomputation
        # must reproduce the single-process bytes across the shard boundary.
        graph = GraphSpec(
            nodes=[GraphNodeSpec(name="src", cm=True),
                   GraphNodeSpec(name="ra", kind="router"),
                   GraphNodeSpec(name="rb", kind="router"),
                   GraphNodeSpec(name="dst")],
            links=[
                GraphLinkSpec(a="src", b="ra", rate_bps=4e6, delay=0.002,
                              loss={"kind": "gilbert_elliott",
                                    "p_good_bad": 0.01, "p_bad_good": 0.3}),
                GraphLinkSpec(a="ra", b="dst", rate_bps=4e6, delay=0.002,
                              queue_limit=32,
                              aqm={"kind": "red", "min_th": 4, "max_th": 12}),
                GraphLinkSpec(a="src", b="rb", rate_bps=4e6, delay=0.008),
                GraphLinkSpec(a="rb", b="dst", rate_bps=4e6, delay=0.008),
            ],
            reroutes=[RerouteSpec(time=1.3, a="src", b="ra", delay=0.03)],
        )
        spec = ScenarioSpec(
            name="realism_shards", graph=graph,
            workloads=[WorkloadSpec(kind="tcp_flows", host="src", peer="dst",
                                    label="churn",
                                    params={"rate": 3.0, "min_bytes": 5_000,
                                            "max_bytes": 40_000})],
            stop=StopSpec(until=3.0), metrics=("apps", "links"), seed=2)
        sharded = run_sharded(spec, seed=2, shards=2).to_json()
        assert sharded == run(spec, seed=2, shards=1).to_json()

    def test_sharding_a_non_graph_spec_is_a_spec_error(self):
        spec = get_preset("web_vat_mix")
        assert spec.graph is None
        with pytest.raises(SpecError, match="graph topology"):
            run(spec, shards=2)

    def test_sharding_a_telemetry_spec_is_a_spec_error(self):
        spec = get_preset("dumbbell_bulk")
        with pytest.raises(SpecError):
            run(spec, shards=2)


# ===================================================================== #
# Partitioner properties                                                #
# ===================================================================== #
def _chain_spec(names, delays, shuffle=None):
    """A path graph host0 - host1 - ... with the given per-hop delays."""
    nodes = [GraphNodeSpec(name=name) for name in names]
    links = [
        GraphLinkSpec(a=names[i], b=names[i + 1], rate_bps=10e6, delay=delays[i])
        for i in range(len(names) - 1)
    ]
    if shuffle is not None:
        nodes = [nodes[i] for i in shuffle[0]]
        links = [links[i] for i in shuffle[1]]
    return ScenarioSpec(
        name="chain", graph=GraphSpec(nodes=nodes, links=links),
        stop=StopSpec(until=1.0), seed=1,
    )


@st.composite
def random_graphs(draw):
    """A connected random graph: a spanning chain plus random extra edges."""
    n = draw(st.integers(min_value=2, max_value=12))
    names = [f"n{i}" for i in range(n)]
    delay = st.floats(min_value=1e-4, max_value=0.05,
                      allow_nan=False, allow_infinity=False)
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=8))
    seen = set(edges)
    for a, b in extra:
        pair = (min(a, b), max(a, b))
        if a != b and pair not in seen:
            seen.add(pair)
            edges.append(pair)
    delays = [draw(delay) for _ in edges]
    nodes = [GraphNodeSpec(name=name) for name in names]
    links = [GraphLinkSpec(a=names[a], b=names[b], rate_bps=10e6, delay=d)
             for (a, b), d in zip(edges, delays)]
    spec = ScenarioSpec(name="rand", graph=GraphSpec(nodes=nodes, links=links),
                        stop=StopSpec(until=1.0), seed=1)
    shards = draw(st.integers(min_value=1, max_value=5))
    return spec, shards


class TestPartitionerProperties:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_graphs())
    def test_every_node_lands_in_exactly_one_shard(self, case):
        spec, shards = case
        part = partition_graph(spec, shards)
        names = {node.name for node in spec.graph.nodes}
        assert set(part.shard_of) == names
        assert set(part.shard_of.values()) <= set(range(part.shards))
        # Every shard index in [0, shards) is actually inhabited.
        assert set(part.shard_of.values()) == set(range(part.shards))

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_graphs())
    def test_cut_pairs_are_exactly_the_inter_shard_links(self, case):
        spec, shards = case
        part = partition_graph(spec, shards)
        for link in spec.graph.links:
            crosses = part.shard_of[link.a] != part.shard_of[link.b]
            assert part.is_cut(link.a, link.b) == crosses
            assert part.is_cut(link.b, link.a) == crosses
        if part.shards > 1:
            cut_delays = [link.delay for link in spec.graph.links
                          if part.is_cut(link.a, link.b)]
            assert part.lookahead == min(cut_delays)
            assert part.lookahead > 0.0

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_graphs(), st.randoms(use_true_random=False))
    def test_declaration_order_does_not_change_the_partition(self, case, rng):
        spec, shards = case
        part = partition_graph(spec, shards)
        nodes = list(spec.graph.nodes)
        links = list(spec.graph.links)
        rng.shuffle(nodes)
        rng.shuffle(links)
        shuffled = ScenarioSpec(
            name="rand", graph=GraphSpec(nodes=nodes, links=links),
            stop=StopSpec(until=1.0), seed=1)
        assert partition_graph(shuffled, shards).shard_of == part.shard_of

    def test_min_delay_links_are_cut_last(self):
        # Chain of 4 hosts; the middle hop is 10x slower to cross, so a
        # 2-way split must cut there and leave the fast edges internal.
        spec = _chain_spec(["a", "b", "c", "d"], [0.001, 0.010, 0.001])
        part = partition_graph(spec, 2)
        assert part.shards == 2
        assert part.cut_pairs == frozenset({("b", "c")})
        assert part.lookahead == 0.010

    def test_colocate_peer_apps_share_a_shard(self):
        # BulkApp installs a listener on the live peer object, so the
        # partitioner must keep the pair together even across the best cut.
        spec = _chain_spec(["a", "b", "c", "d"], [0.001, 0.010, 0.001])
        spec.apps = [AppSpec(app="bulk", host="b", peer="c",
                             params={"port": 5001, "transfer_bytes": 1000})]
        part = partition_graph(spec, 2)
        assert part.shard_of["b"] == part.shard_of["c"]

    def test_zero_delay_cut_is_rejected(self):
        spec = _chain_spec(["a", "b"], [0.0])
        with pytest.raises(SpecError, match="engine.shards"):
            partition_graph(spec, 2)

    def test_reroutes_lower_the_effective_lookahead(self):
        from repro.scenario.spec import RerouteSpec

        # The conservative window must stay safe over the link's whole
        # lifetime: a reroute that shrinks the cut link's delay mid-run
        # caps the lookahead from build time.
        spec = _chain_spec(["a", "b", "c", "d"], [0.001, 0.010, 0.001])
        spec.graph.reroutes = [RerouteSpec(time=1.0, a="c", b="b", delay=0.004)]
        part = partition_graph(spec, 2)
        assert part.cut_pairs == frozenset({("b", "c")})
        assert part.lookahead == 0.004

    def test_reroute_to_zero_delay_on_a_cut_link_is_rejected(self):
        from repro.scenario.spec import RerouteSpec

        # With spare capacity the clusterer absorbs a rerouted-to-zero link
        # into one shard (it sorts by effective delay), so force the cut:
        # two nodes, one link, delay rerouted to zero mid-run.
        spec = _chain_spec(["a", "b"], [0.004])
        spec.graph.reroutes = [RerouteSpec(time=1.0, a="a", b="b", delay=0.0)]
        with pytest.raises(SpecError, match="scheduled reroute"):
            partition_graph(spec, 2)

    def test_zero_delay_reroute_link_is_absorbed_when_capacity_allows(self):
        from repro.scenario.spec import RerouteSpec

        # The clusterer weights links by lifetime-minimum delay, so the
        # rerouted-to-zero middle hop sorts first and stays shard-internal.
        spec = _chain_spec(["a", "b", "c", "d"], [0.001, 0.010, 0.001])
        spec.graph.reroutes = [RerouteSpec(time=1.0, a="b", b="c", delay=0.0)]
        part = partition_graph(spec, 2)
        assert part.shard_of["b"] == part.shard_of["c"]
        assert ("b", "c") not in part.cut_pairs

    def test_requesting_more_shards_than_nodes_clamps(self):
        spec = _chain_spec(["a", "b"], [0.004])
        part = partition_graph(spec, 5)
        assert part.shards <= 2


# ===================================================================== #
# Engine late lane + ingress sequencing                                 #
# ===================================================================== #
class TestPushLate:
    def test_late_entry_runs_after_every_normal_event_at_its_time(self):
        sim = Simulator()
        order = []
        sim.push_late(1.0, 5, order.append, ("late",))
        sim.at(1.0, order.append, "first")
        sim.at(1.0, order.append, "second")
        sim.at(2.0, order.append, "next-instant")
        sim.run()
        assert order == ["first", "second", "late", "next-instant"]

    def test_same_time_late_entries_order_by_rank(self):
        sim = Simulator()
        order = []
        sim.push_late(1.0, 7, order.append, ("rank7",))
        sim.push_late(1.0, 2, order.append, ("rank2",))
        sim.run()
        assert order == ["rank2", "rank7"]

    def test_past_time_raises(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(Exception):
            sim.push_late(0.5, 0, lambda: None)

    def test_horizon_overshoot_keeps_the_late_entry_out_of_the_tail(self):
        # A late entry pushed back at the horizon must not poison the tail:
        # a subsequent same-time normal push would otherwise dispatch after
        # it, violating (time, seq) order.
        sim = Simulator()
        order = []
        sim.push_late(2.0, 1, order.append, ("late",))
        sim.run(until=1.0)  # pops the late entry, pushes it back
        sim.at(2.0, order.append, "normal")
        sim.run()
        assert order == ["normal", "late"]


class TestIngressSequencer:
    def test_same_instant_deliveries_drain_in_link_then_seq_order(self):
        sim = Simulator()
        got = []
        seq = IngressSequencer(sim, rank=0, receiver=got.append)
        port_hi = seq.port(9)
        port_lo = seq.port(3)
        # Arrival order disagrees with link order on purpose.
        sim.at(1.0, port_hi, "hi-0")
        sim.at(1.0, port_lo, "lo-0")
        sim.at(1.0, port_hi, "hi-1")
        sim.run()
        assert got == ["lo-0", "hi-0", "hi-1"]

    def test_distinct_instants_stay_separate(self):
        sim = Simulator()
        got = []
        seq = IngressSequencer(sim, rank=0, receiver=got.append)
        port = seq.port(0)
        sim.at(1.0, port, "t1")
        sim.at(2.0, port, "t2")
        sim.run()
        assert got == ["t1", "t2"]

    def test_injection_joins_the_same_instant_ordering(self):
        sim = Simulator()
        got = []
        seq = IngressSequencer(sim, rank=0, receiver=got.append)
        port = seq.port(6)
        seq.inject(1.0, 2, 0, "injected")  # lower link index than the port
        sim.at(1.0, port, "local")
        sim.run()
        assert got == ["injected", "local"]


# ===================================================================== #
# Wire format + boundary link                                           #
# ===================================================================== #
class TestWireAndBoundary:
    def test_tcp_packet_round_trips(self):
        header = TCPHeader()
        header.seq, header.ack, header.syn = 7, 3, True
        packet = Packet("10.0.0.1", "10.0.0.2", 5001, 80, protocol="tcp",
                        payload_bytes=1460, headers=header, ecn_capable=True,
                        flow_id=4, created_at=1.25)
        clone = decode_packet(encode_packet(packet))
        assert (clone.src, clone.dst, clone.sport, clone.dport) == (
            packet.src, packet.dst, packet.sport, packet.dport)
        assert (clone.headers.seq, clone.headers.ack, clone.headers.syn) == (7, 3, True)
        assert clone.ecn_capable and clone.flow_id == 4 and clone.created_at == 1.25
        assert clone._pool_state == 0  # unmanaged: receiver release is a no-op

    def test_boundary_link_emits_instead_of_delivering(self):
        sim = Simulator()
        outbox = []
        link = BoundaryLink(sim, outbox, 12, rate_bps=8e6, delay=0.01, name="x->y")
        packet = Packet("10.0.0.1", "10.0.0.2", 1, 2, protocol="udp", payload_bytes=1000)
        sim.at(0.0, link.send, packet)
        sim.run()
        assert len(outbox) == 1
        deliver_ts, link_index, emit_seq, wire = outbox[0]
        assert link_index == 12 and emit_seq == 0
        assert deliver_ts == pytest.approx(packet.size * 8 / 8e6 + 0.01)
        assert decode_packet(wire).payload_bytes == 1000
        assert link.stats.delivered_packets == 1

    def test_finalize_backs_out_in_flight_emissions(self):
        sim = Simulator()
        outbox = []
        link = BoundaryLink(sim, outbox, 0, rate_bps=8e6, delay=5.0, name="x->y")
        packet = Packet("10.0.0.1", "10.0.0.2", 1, 2, protocol="udp", payload_bytes=1000)
        sim.at(0.0, link.send, packet)
        sim.run()
        assert link.stats.delivered_packets == 1
        link.finalize(end_time=1.0)  # delivery at ~5s is beyond the horizon
        assert link.stats.delivered_packets == 0
        assert link.stats.delivered_bytes == 0


# ===================================================================== #
# Workload RNG shard invariance                                         #
# ===================================================================== #
class TestWorkloadRngInvariance:
    def test_seed_derivation_depends_only_on_global_identity(self):
        # The derivation takes (run_seed, seed_offset, global index) and
        # nothing else — there is no shard-local input it *could* vary by.
        assert workload_rng_seed(5, None, 0) == workload_rng_seed(5, None, 0)
        assert workload_rng_seed(5, None, 0) != workload_rng_seed(5, None, 1)
        assert workload_rng_seed(5, 3, 0) == workload_rng_seed(5, 3, 7)

    def test_workload_streams_are_identical_across_hosting_shards(self):
        # Run star_web_churn at every shard count; each client workload's
        # flow metrics (arrival times, sizes — all RNG-driven) must agree
        # no matter which shard hosted the generator.
        spec = get_preset("star_web_churn")
        baseline = json.loads(run(spec, seed=5).to_json())["workloads"]
        for shards in (2, 3, 4):
            sharded = json.loads(
                run_sharded(get_preset("star_web_churn"), seed=5,
                            shards=shards).to_json())["workloads"]
            assert sharded == baseline


# ===================================================================== #
# Coordinator progress + service integration                            #
# ===================================================================== #
def _graph_spec_with_engine(shards):
    spec = get_preset("star_web_churn")
    spec.engine = EngineSpec(shards=shards)
    return spec


class TestCoordinatorProgress:
    def test_progress_reports_monotone_barrier_times(self):
        spec = get_preset("star_web_churn")
        ticks = []
        run_sharded(spec, seed=5, shards=2,
                    progress_cb=lambda now, horizon: ticks.append((now, horizon)))
        times = [now for now, _ in ticks]
        assert times[0] == 0.0
        assert times == sorted(times)
        assert times[-1] <= spec.stop.until
        horizon = {h for _, h in ticks}
        assert horizon == {spec.stop.until}
        # Barrier granularity: consecutive ticks are at most one lookahead
        # window apart (the min shard sim-time can never be stale by more).
        lookahead = partition_graph(spec, 2).lookahead
        assert all(b - a <= lookahead + 1e-12 for a, b in zip(times, times[1:]))


class TestServiceSharding:
    def test_sharded_job_runs_to_done_with_identical_bytes(self):
        from repro.service.jobs import JobManager

        manager = JobManager(slots=1)
        try:
            job = manager.submit(get_preset("star_web_churn"), shards=2)
            assert job.shards == 2
            manager.wait(job.id, timeout=120.0)
            assert job.state == "done"
            assert job.result.to_json() == run(get_preset("star_web_churn")).to_json()
            status = job.status()
            assert status["shards"] == 2
            assert status["progress"]["fraction"] == pytest.approx(1.0)
        finally:
            manager.shutdown()

    def test_sharded_job_progress_is_the_min_shard_sim_time(self):
        # The worker publishes sim_time from the coordinator's barrier
        # callback; at DONE it equals the final barrier = stop time.
        from repro.service.jobs import JobManager

        manager = JobManager(slots=1)
        try:
            job = manager.submit(_graph_spec_with_engine(2))
            manager.wait(job.id, timeout=120.0)
            assert job.sim_time == pytest.approx(job.result.duration_s)
        finally:
            manager.shutdown()

    def test_mailbox_requests_are_rejected_on_sharded_jobs(self):
        from repro.service.jobs import JobManager, JobNotLive

        manager = JobManager(slots=1)
        try:
            job = manager.submit(get_preset("star_web_churn"), shards=2)
            with pytest.raises(JobNotLive, match="sharded"):
                job.request(lambda scenario: None)
            manager.wait(job.id, timeout=120.0)
        finally:
            manager.shutdown()

    def test_mailbox_rejection_maps_to_http_409(self):
        from repro.service.api import ServiceApi
        from repro.service.jobs import JobManager

        manager = JobManager(slots=1)
        api = ServiceApi(manager)
        try:
            body = json.dumps({"preset": "star_web_churn", "shards": 2}).encode()
            response = api.dispatch("POST", "/v1/jobs", body)
            assert response.status == 201
            job_id = response.json()["job"]["id"]
            assert response.json()["job"]["shards"] == 2
            hosts = api.dispatch("GET", f"/v1/jobs/{job_id}/hosts")
            assert hosts.status == 409
            assert "sharded" in hosts.json()["error"]
            manager.wait(job_id, timeout=120.0)
        finally:
            manager.shutdown()

    def test_submitting_shards_on_a_non_graph_spec_is_http_400(self):
        from repro.service.api import ServiceApi
        from repro.service.jobs import JobManager

        manager = JobManager(slots=1)
        api = ServiceApi(manager)
        try:
            body = json.dumps({"preset": "web_vat_mix", "shards": 2}).encode()
            response = api.dispatch("POST", "/v1/jobs", body)
            assert response.status == 400
            assert "graph" in response.json()["error"]
        finally:
            manager.shutdown()

    def test_control_hook_on_sharded_run_is_a_spec_error(self):
        from repro.scenario.runner import run_streaming

        with pytest.raises(SpecError, match="control hooks"):
            run_streaming(get_preset("star_web_churn"), shards=2,
                          control_hook=lambda scenario: None)


# ===================================================================== #
# Per-shard traces                                                      #
# ===================================================================== #
class TestShardedTraces:
    def test_merged_trace_is_time_ordered_jsonl(self, tmp_path):
        trace = tmp_path / "sharded.jsonl"
        run_sharded(get_preset("star_web_churn"), seed=5, shards=2,
                    trace_path=str(trace))
        lines = trace.read_text().splitlines()
        assert lines, "sharded trace must not be empty"
        times = [json.loads(line).get("t", 0.0) for line in lines]
        assert times == sorted(times)
        # No stray per-shard files left behind.
        assert not list(tmp_path.glob("*.shard*"))
