"""Tests for the Congestion Manager core: flows, macroflows, API semantics."""

import pytest

from repro import CongestionManager, HostCosts
from repro.core import (
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
    FlowClosedError,
    NotRegisteredError,
    UnknownFlowError,
)
from repro.netsim import Host, Simulator

SRC = "10.0.0.1"
DST = "10.0.0.2"
OTHER_DST = "10.0.0.3"


@pytest.fixture
def cm(sim):
    host = Host(sim, "sender", SRC, costs=HostCosts())
    return CongestionManager(host)


def open_flow(cm, dport=80, dst=DST, sport=1000):
    return cm.cm_open(SRC, dst, sport, dport, "tcp")


class TestStateManagement:
    def test_open_returns_increasing_flow_ids(self, cm):
        assert open_flow(cm, 80) != open_flow(cm, 81, sport=1001)

    def test_open_requires_addresses(self, cm):
        with pytest.raises(ValueError):
            cm.cm_open("", DST)
        with pytest.raises(ValueError):
            cm.cm_open(SRC, "")

    def test_flows_to_same_destination_share_macroflow(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        assert cm.macroflow_of(f1) is cm.macroflow_of(f2)

    def test_flows_to_different_destinations_use_different_macroflows(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 80, dst=OTHER_DST)
        assert cm.macroflow_of(f1) is not cm.macroflow_of(f2)

    def test_close_retains_macroflow_state_for_reuse(self, cm):
        f1 = open_flow(cm, 80)
        macroflow = cm.macroflow_of(f1)
        macroflow.controller.on_ack(10_000)
        cm.cm_close(f1)
        f2 = open_flow(cm, 81, sport=1001)
        assert cm.macroflow_of(f2) is macroflow

    def test_macroflow_expires_after_idle_timeout(self, sim):
        host = Host(sim, "s", SRC)
        cm = CongestionManager(host, macroflow_idle_timeout=10.0)
        f1 = open_flow(cm, 80)
        old_macroflow = cm.macroflow_of(f1)
        cm.cm_close(f1)
        sim.run(until=11.0)
        f2 = open_flow(cm, 81, sport=1001)
        assert cm.macroflow_of(f2) is not old_macroflow

    def test_unknown_flow_rejected(self, cm):
        with pytest.raises(UnknownFlowError):
            cm.cm_query(999)

    def test_closed_flow_rejected(self, cm):
        fid = open_flow(cm)
        cm.cm_close(fid)
        with pytest.raises(UnknownFlowError):
            cm.cm_request(fid)

    def test_double_close_is_safe(self, cm):
        fid = open_flow(cm)
        cm.cm_close(fid)
        cm.cm_close(fid) if False else None  # second close of an unknown id raises
        with pytest.raises(UnknownFlowError):
            cm.cm_close(fid)

    def test_cm_mtu(self, cm):
        fid = open_flow(cm)
        assert cm.cm_mtu(fid) == cm.host.mtu

    def test_open_flow_count(self, cm):
        open_flow(cm, 80)
        open_flow(cm, 81, sport=1001)
        assert cm.open_flow_count == 2


class TestRequestGrant:
    def test_request_without_callback_rejected(self, cm):
        fid = open_flow(cm)
        with pytest.raises(NotRegisteredError):
            cm.cm_request(fid)

    def test_grant_delivered_via_callback(self, cm, sim):
        fid = open_flow(cm)
        grants = []
        cm.cm_register_send(fid, grants.append)
        cm.cm_request(fid)
        sim.run()
        assert grants == [fid]

    def test_initial_window_grants_only_one_mtu(self, cm, sim):
        fid = open_flow(cm)
        grants = []

        def on_grant(flow_id):
            grants.append(flow_id)
            cm.cm_notify(flow_id, 1448)  # consume the grant with a full segment

        cm.cm_register_send(fid, on_grant)
        cm.cm_request(fid, count=4)
        sim.run(until=0.5)  # well before the feedback watchdog could kick in
        assert len(grants) == 1  # remaining requests wait for feedback

    def test_window_opens_after_feedback(self, cm, sim):
        fid = open_flow(cm)
        grants = []

        def on_grant(flow_id):
            grants.append(flow_id)
            cm.cm_notify(flow_id, 1448)

        cm.cm_register_send(fid, on_grant)
        cm.cm_request(fid, count=3)
        sim.run(until=0.5)
        assert len(grants) == 1
        cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        sim.run(until=1.0)
        assert len(grants) >= 2

    def test_declined_grant_passes_to_other_flow(self, cm, sim):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        grants = []
        cm.cm_register_send(f1, lambda fid: (grants.append(fid), cm.cm_notify(fid, 0)))
        cm.cm_register_send(f2, lambda fid: (grants.append(fid), cm.cm_notify(fid, 1448)))
        cm.cm_request(f1)
        cm.cm_request(f2)
        sim.run()
        assert grants == [f1, f2]

    def test_round_robin_across_flows(self, cm, sim):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        grants = []

        def handler(fid):
            grants.append(fid)
            cm.cm_notify(fid, 100)  # small packets keep the window open

        cm.cm_register_send(f1, handler)
        cm.cm_register_send(f2, handler)
        for _ in range(3):
            cm.cm_request(f1)
            cm.cm_request(f2)
        sim.run()
        assert grants[:4] == [f1, f2, f1, f2]

    def test_bulk_request(self, cm, sim):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        grants = []
        cm.cm_register_send(f1, lambda fid: (grants.append(fid), cm.cm_notify(fid, 100)))
        cm.cm_register_send(f2, lambda fid: (grants.append(fid), cm.cm_notify(fid, 100)))
        cm.cm_bulk_request([f1, f2])
        sim.run()
        assert set(grants) == {f1, f2}

    def test_request_count_validation(self, cm):
        fid = open_flow(cm)
        cm.cm_register_send(fid, lambda f: None)
        with pytest.raises(ValueError):
            cm.cm_request(fid, count=0)


class TestUpdateAndQuery:
    def test_update_grows_window(self, cm):
        fid = open_flow(cm)
        macroflow = cm.macroflow_of(fid)
        cm.cm_notify(fid, 1448)
        before = macroflow.controller.cwnd
        cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        assert macroflow.controller.cwnd > before

    def test_update_with_loss_shrinks_window(self, cm):
        fid = open_flow(cm)
        macroflow = cm.macroflow_of(fid)
        for _ in range(5):
            cm.cm_notify(fid, 1448)
            cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        before = macroflow.controller.cwnd
        cm.cm_update(fid, 1448, 0, CM_TRANSIENT_CONGESTION, 0.0)
        assert macroflow.controller.cwnd < before

    def test_update_validation(self, cm):
        fid = open_flow(cm)
        with pytest.raises(ValueError):
            cm.cm_update(fid, -1, 0, CM_NO_CONGESTION, 0)
        with pytest.raises(ValueError):
            cm.cm_update(fid, 100, 200, CM_NO_CONGESTION, 0)
        with pytest.raises(ValueError):
            cm.cm_update(fid, 100, 100, "weird", 0)

    def test_notify_validation(self, cm):
        fid = open_flow(cm)
        with pytest.raises(ValueError):
            cm.cm_notify(fid, -1)

    def test_query_reflects_shared_rtt(self, cm):
        f1 = open_flow(cm, 80)
        cm.cm_update(f1, 0, 0, CM_NO_CONGESTION, 0.08)
        f2 = open_flow(cm, 81, sport=1001)
        status = cm.cm_query(f2)
        assert status.srtt == pytest.approx(0.08)
        assert status.rate > 0
        assert status.mtu == cm.mtu

    def test_query_result_unit_conversions(self, cm):
        fid = open_flow(cm)
        status = cm.cm_query(fid)
        assert status.bandwidth_bps == pytest.approx(status.rate * 8)
        assert status.rto >= status.srtt

    def test_loss_rate_tracked(self, cm):
        fid = open_flow(cm)
        cm.cm_notify(fid, 1000)
        cm.cm_update(fid, 1000, 500, CM_TRANSIENT_CONGESTION, 0.05)
        assert cm.cm_query(fid).loss_rate > 0


class TestRateCallbacks:
    def test_thresh_validation(self, cm):
        fid = open_flow(cm)
        with pytest.raises(ValueError):
            cm.cm_thresh(fid, 0.5, 2.0)

    def test_update_callback_fires_on_first_feedback(self, cm, sim):
        fid = open_flow(cm)
        updates = []
        cm.cm_register_update(fid, lambda f, status: updates.append(status.rate))
        cm.cm_thresh(fid, 2.0, 2.0)
        cm.cm_update(fid, 0, 0, CM_NO_CONGESTION, 0.05)
        sim.run()
        assert len(updates) == 1

    def test_update_callback_respects_thresholds(self, cm, sim):
        fid = open_flow(cm)
        updates = []
        cm.cm_register_update(fid, lambda f, status: updates.append(status.rate))
        cm.cm_thresh(fid, 4.0, 4.0)
        # First feedback always notifies; subsequent small changes must not.
        cm.cm_notify(fid, 1448)
        cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        sim.run()
        count_after_first = len(updates)
        cm.cm_notify(fid, 1448)
        cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        sim.run()
        assert len(updates) == count_after_first

    def test_update_callback_fires_on_large_drop(self, cm, sim):
        fid = open_flow(cm)
        updates = []
        cm.cm_register_update(fid, lambda f, status: updates.append(status.rate))
        cm.cm_thresh(fid, 1.5, 1.5)
        for _ in range(6):
            cm.cm_notify(fid, 1448)
            cm.cm_update(fid, 1448, 1448, CM_NO_CONGESTION, 0.05)
        sim.run()
        before = len(updates)
        cm.cm_update(fid, 0, 0, CM_PERSISTENT_CONGESTION, 0.0)
        sim.run()
        assert len(updates) > before
        assert updates[-1] < updates[before - 1]


class TestMacroflowConstruction:
    def test_split_creates_private_macroflow(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        new_macroflow = cm.cm_split(f2)
        assert cm.macroflow_of(f1) is not new_macroflow
        assert cm.macroflow_of(f2) is new_macroflow
        assert new_macroflow.key is None

    def test_split_flow_does_not_share_growth(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        cm.cm_split(f2)
        cm.cm_notify(f1, 1448)
        cm.cm_update(f1, 1448, 1448, CM_NO_CONGESTION, 0.05)
        assert cm.macroflow_of(f2).controller.cwnd == cm.mtu

    def test_merge_rejoins_macroflows(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        cm.cm_split(f2)
        merged = cm.cm_merge(f2, f1)
        assert cm.macroflow_of(f2) is merged
        assert cm.macroflow_of(f1) is merged

    def test_merge_same_macroflow_is_noop(self, cm):
        f1 = open_flow(cm, 80)
        f2 = open_flow(cm, 81, sport=1001)
        assert cm.cm_merge(f2, f1) is cm.macroflow_of(f1)


class TestLookupAndWatchdog:
    def test_lookup_exact_and_wildcard(self, cm):
        fid = cm.cm_open(SRC, DST, 5000, 0, "udp")
        assert cm.lookup_flow(SRC, DST, 5000, 9999, "udp") == fid
        assert cm.lookup_flow(SRC, DST, 1, 2, "udp") is None

    def test_lookup_prefers_exact_match(self, cm):
        wildcard = cm.cm_open(SRC, DST, 0, 0, "udp")
        exact = cm.cm_open(SRC, DST, 5000, 80, "udp")
        assert cm.lookup_flow(SRC, DST, 5000, 80, "udp") == exact
        assert cm.lookup_flow(SRC, DST, 1234, 80, "udp") == wildcard

    def test_watchdog_recovers_stalled_macroflow(self, sim):
        host = Host(sim, "s", SRC)
        cm = CongestionManager(host)
        fid = cm.cm_open(SRC, DST, 1000, 80, "udp")
        grants = []
        cm.cm_register_send(fid, lambda f: grants.append(sim.now))
        # Consume the window with a transmission whose feedback never arrives.
        cm.cm_notify(fid, 1448)
        cm.cm_request(fid)
        sim.run(until=30.0)
        # The watchdog eventually treats the silence as persistent congestion,
        # clears the stuck accounting and grants the pending request.
        assert grants, "pending request should have been granted by the watchdog"
        macroflow = cm.macroflow_of(fid)
        assert macroflow.outstanding_bytes == 0

    def test_watchdog_can_be_disabled(self, sim):
        host = Host(sim, "s", SRC)
        cm = CongestionManager(host, feedback_watchdog=False)
        fid = cm.cm_open(SRC, DST, 1000, 80, "udp")
        grants = []
        cm.cm_register_send(fid, lambda f: grants.append(sim.now))
        cm.cm_notify(fid, 1448)
        cm.cm_request(fid)
        sim.run(until=30.0)
        assert not grants

    def test_kernel_op_costs_charged(self, cm):
        before = cm.host.costs.ledger.operation_counts["cm_kernel_op"]
        fid = open_flow(cm)
        cm.cm_query(fid)
        assert cm.host.costs.ledger.operation_counts["cm_kernel_op"] > before
