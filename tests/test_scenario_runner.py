"""Building and running scenarios: determinism, equivalence, metrics, CLI."""

import json

import pytest

from repro.experiments.topology import build_testbed, dummynet_pair_spec, lan_pair_spec
from repro.scenario import (
    AppSpec,
    DumbbellSpec,
    HostSpec,
    LinkSpec,
    ScenarioSpec,
    StopSpec,
    build,
    run,
    validate_result_payload,
)
from repro.scenario.cli import main as scenario_main


def tiny_transfer_spec(**stop_overrides) -> ScenarioSpec:
    """A fast-to-run single-transfer scenario used across these tests."""
    stop = dict(until=30.0, when_apps_done=True)
    stop.update(stop_overrides)
    return ScenarioSpec(
        name="tiny_transfer",
        hosts=[HostSpec(name="tx", cm=True), HostSpec(name="rx")],
        links=[LinkSpec(a="tx", b="rx", rate_bps=8e6, delay=0.01, queue_limit=50)],
        apps=[
            AppSpec(app="tcp_listener", host="rx", label="sink", params={"port": 5001}),
            AppSpec(app="tcp_sender", host="tx", peer="rx", label="flow",
                    params={"variant": "cm", "port": 5001, "transfer_bytes": 200_000}),
        ],
        stop=StopSpec(**stop),
        metrics=("apps", "links", "hosts"),
        seed=3,
    )


class TestBuild:
    def test_pair_spec_matches_legacy_testbed_shape(self):
        testbed = build_testbed(lan_pair_spec(), seed=7)
        assert testbed.sender.addr == "10.1.0.1"
        assert testbed.receiver.addr == "10.2.0.1"
        assert testbed.channel.rate_bps == 100e6
        assert testbed.sender.costs is not None

    def test_pair_without_costs(self):
        testbed = build_testbed(dummynet_pair_spec(loss_rate=0.0, with_costs=False), seed=1)
        assert testbed.sender.costs is None and testbed.receiver.costs is None

    def test_legacy_wrappers_compile_their_specs(self):
        from repro.experiments.topology import dummynet_pair, lan_pair, wan_pair

        assert lan_pair(seed=2).channel.rate_bps == 100e6
        dummynet = dummynet_pair(loss_rate=0.02, seed=2)
        assert dummynet.channel.forward.loss_rate == 0.02
        assert dummynet.channel.reverse.loss_rate == 0.0
        assert wan_pair(seed=2).channel.rtt == pytest.approx(0.075)

    def test_cm_attachment_with_named_controller(self):
        spec = ScenarioSpec(
            name="cm",
            hosts=[HostSpec(name="a", cm=True, cm_controller="aimd_rate",
                            cm_scheduler="weighted"), HostSpec(name="b")],
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        )
        scenario = build(spec, seed=0)
        from repro.core import RateAimdController, WeightedRoundRobinScheduler

        cm = scenario.host("a").cm
        assert cm is not None
        fid = cm.cm_open("10.1.0.1", "10.2.0.1", 1, 2)
        macroflow = cm.macroflow_of(fid)
        assert isinstance(macroflow.controller, RateAimdController)
        assert isinstance(macroflow.scheduler, WeightedRoundRobinScheduler)
        assert scenario.host("b").cm is None

    def test_dumbbell_build_names_hosts_and_attaches_cms(self):
        spec = ScenarioSpec(
            name="bell",
            dumbbell=DumbbellSpec(n_pairs=2, bottleneck_bps=4e6, bottleneck_delay=0.01,
                                  cm_senders=(1,)),
        )
        scenario = build(spec, seed=0)
        assert set(scenario.hosts) == {"sender0", "sender1", "receiver0", "receiver1"}
        assert scenario.host("sender1").cm is not None
        assert scenario.host("sender0").cm is None
        assert scenario.dumbbell is not None

    def test_sibling_links_get_independent_loss_rngs_by_default(self):
        spec = ScenarioSpec(
            name="two_paths",
            hosts=[HostSpec(name="a1"), HostSpec(name="b1"),
                   HostSpec(name="a2"), HostSpec(name="b2")],
            links=[LinkSpec(a="a1", b="b1", rate_bps=1e6, delay=0.01, loss_rate=0.1),
                   LinkSpec(a="a2", b="b2", rate_bps=1e6, delay=0.01, loss_rate=0.1)],
        )
        scenario = build(spec, seed=4)
        first = scenario.channel("a1", "b1").forward._rng
        second = scenario.channel("a2", "b2").forward._rng
        assert [first.random() for _ in range(8)] != [second.random() for _ in range(8)]

    def test_build_rejects_invalid_spec(self):
        from repro.scenario import SpecError

        with pytest.raises(SpecError):
            build(ScenarioSpec(name="broken"), seed=0)

    def test_app_needing_cm_fails_with_actionable_error(self):
        from repro.scenario import SpecError

        spec = tiny_transfer_spec()
        spec.hosts[0].cm = False
        with pytest.raises(SpecError, match="requires a Congestion Manager"):
            build(spec, seed=0)


class TestRun:
    def test_transfer_completes_and_reports_metrics(self):
        result = run(tiny_transfer_spec(), seed=3)
        flow = result.app("flow")["metrics"]
        assert flow["done"] is True
        assert flow["bytes_acked"] == 200_000
        sink = result.app("sink")["metrics"]
        assert sink["bytes_received"] == 200_000
        assert any(entry["link"] == "tx->rx" for entry in result.links)
        assert any(entry["host"] == "tx" and "cpu_total_us" in entry for entry in result.hosts)

    def test_when_apps_done_stops_early(self):
        result = run(tiny_transfer_spec(), seed=3)
        assert result.duration_s < 30.0

    def test_fixed_horizon_runs_to_horizon(self):
        result = run(tiny_transfer_spec(until=2.5, when_apps_done=False), seed=3)
        assert result.duration_s == pytest.approx(2.5)

    def test_same_seed_byte_identical_json(self):
        first = run(tiny_transfer_spec(), seed=9).to_json()
        second = run(tiny_transfer_spec(), seed=9).to_json()
        assert first == second

    def test_result_passes_golden_schema(self):
        payload = json.loads(run(tiny_transfer_spec(), seed=3).to_json())
        assert validate_result_payload(payload) == []

    def test_schema_validator_flags_problems(self):
        payload = json.loads(run(tiny_transfer_spec(), seed=3).to_json())
        del payload["spec_digest"]
        payload["apps"][0].pop("metrics")
        problems = validate_result_payload(payload)
        assert any("spec_digest" in p for p in problems)
        assert any("apps[0]" in p for p in problems)

    def test_unfinished_fetches_serialize_as_null_not_nan(self):
        spec = ScenarioSpec(
            name="slow_web",
            hosts=[HostSpec(name="server", cm=True), HostSpec(name="client")],
            links=[LinkSpec(a="server", b="client", rate_bps=1e6, delay=0.05)],
            apps=[
                AppSpec(app="web_server", host="server", params={"port": 80}),
                AppSpec(app="web_client", host="client", peer="server", label="web",
                        params={"server_port": 80, "n_requests": 2, "size": 512 * 1024}),
            ],
            stop=StopSpec(until=0.5),  # far too short for the fetches to finish
        )
        result = run(spec, seed=1)
        text = result.to_json()
        assert "NaN" not in text
        metrics = result.app("web")["metrics"]
        assert metrics["requests_completed"] == 0
        assert all(d is None for d in metrics["durations_ms"])
        json.loads(text, parse_constant=lambda c: pytest.fail(f"non-strict JSON constant {c}"))

    def test_rate_schedule_applied(self):
        spec = tiny_transfer_spec(until=4.0, when_apps_done=False)
        spec.links[0].rate_schedule = ((1.0, 1e6),)
        scenario = build(spec, seed=3)
        from repro.scenario import run_built

        run_built(scenario)
        assert scenario.channel("tx", "rx").rate_bps == 1e6

    def test_rate_schedule_rescales_both_directions(self):
        # Documented contract (Channel.set_rate): a rate_schedule step models
        # reconfiguring one Dummynet pipe, so the reverse (ACK) path rescales
        # with the forward path.  The libcm_*_streaming presets and their
        # pinned results encode this — scoping a step to the forward
        # direction only would shift every golden that uses a schedule.
        spec = tiny_transfer_spec(until=4.0, when_apps_done=False)
        spec.links[0].rate_schedule = ((1.0, 1e6),)
        scenario = build(spec, seed=3)
        from repro.scenario import run_built

        run_built(scenario)
        channel = scenario.channel("tx", "rx")
        assert channel.forward.rate_bps == 1e6
        assert channel.reverse.rate_bps == 1e6


class TestCli:
    def test_list_runs(self, capsys):
        assert scenario_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "web_vat_mix" in out and "tcp_sender" in out

    def test_dump_then_run_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(tiny_transfer_spec().to_dict()) + "\n")
        json_dir = tmp_path / "out"
        assert scenario_main(["run", str(spec_path), "--seed", "4",
                              "--json-dir", str(json_dir), "--quiet"]) == 0
        result_path = json_dir / "tiny_transfer.seed4.json"
        payload = json.loads(result_path.read_text())
        assert validate_result_payload(payload) == []
        assert payload["seed"] == 4
        assert scenario_main(["validate", str(result_path)]) == 0

    def test_dump_preset_is_loadable(self, tmp_path):
        out = tmp_path / "preset.json"
        assert scenario_main(["dump", "web_vat_mix", "--output", str(out)]) == 0
        from repro.scenario import ScenarioSpec as Spec

        Spec.from_dict(json.loads(out.read_text())).validate()

    def test_unknown_preset_is_reported(self, capsys):
        assert scenario_main(["run", "no_such_preset"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_invalid_spec_file_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "warp": 9}))
        assert scenario_main(["run", str(bad)]) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_build_time_spec_error_exits_2(self, tmp_path, capsys):
        spec = tiny_transfer_spec()
        spec.hosts[0].cm = False  # tcp_sender variant=cm now fails at build
        spec_path = tmp_path / "no_cm.json"
        spec_path.write_text(json.dumps(spec.to_dict()) + "\n")
        assert scenario_main(["run", str(spec_path), "--quiet"]) == 2
        assert "invalid scenario" in capsys.readouterr().err

    def test_validate_flags_bad_result(self, tmp_path, capsys):
        bad = tmp_path / "result.json"
        bad.write_text(json.dumps({"name": "x"}))
        assert scenario_main(["validate", str(bad)]) == 1
        assert "schema violation" in capsys.readouterr().err
