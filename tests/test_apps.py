"""Tests for the application case studies: layered streaming, vat, web server, bulk, API apps."""

import pytest

from repro.apps import (
    AudioBuffer,
    BulkTransferApp,
    FileServer,
    LayeredStreamingServer,
    Policer,
    TCPApiTestApp,
    UDPApiTestApp,
    VatApplication,
    WebClient,
)
from repro.transport.udp import AckReflector


class TestPolicerAndBuffer:
    def test_policer_admits_at_configured_rate(self):
        policer = Policer(initial_rate=1000.0, bucket_depth=500)
        admitted = sum(policer.admit(100, now=t * 0.1) for t in range(100))
        # 10 seconds at 1000 B/s admits about 100 * 100-byte frames worth.
        assert 80 <= admitted <= 100

    def test_policer_drops_excess(self):
        policer = Policer(initial_rate=100.0, bucket_depth=100)
        results = [policer.admit(100, now=0.001 * i) for i in range(50)]
        assert results.count(False) > 0
        assert policer.dropped == results.count(False)

    def test_policer_rate_can_change(self):
        policer = Policer(initial_rate=100.0)
        policer.set_rate(10_000.0)
        assert policer.rate == 10_000.0
        policer.set_rate(-5)
        assert policer.rate == 0.0

    def test_buffer_drop_from_head_keeps_newest(self):
        buffer = AudioBuffer(capacity_frames=2, policy=AudioBuffer.DROP_FROM_HEAD)
        for seq in range(4):
            buffer.push(seq, generated_at=seq * 0.02)
        assert buffer.drops == 2
        assert buffer.pop()[0] == 2
        assert buffer.pop()[0] == 3

    def test_buffer_drop_tail_keeps_oldest(self):
        buffer = AudioBuffer(capacity_frames=2, policy=AudioBuffer.DROP_TAIL)
        for seq in range(4):
            buffer.push(seq, generated_at=0.0)
        assert buffer.pop()[0] == 0
        assert buffer.pop()[0] == 1

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            AudioBuffer(capacity_frames=0)
        with pytest.raises(ValueError):
            AudioBuffer(policy="random-drop")

    def test_buffer_pop_empty(self):
        assert AudioBuffer().pop() is None


class TestVat:
    def test_requires_cm(self, make_pair):
        pair = make_pair(with_cm=False)
        with pytest.raises(RuntimeError):
            VatApplication(pair.sender, pair.receiver.addr, 4000)

    def test_uncongested_path_delivers_nearly_everything(self, cm_pair):
        reflector = AckReflector(cm_pair.receiver, 4000)
        vat = VatApplication(cm_pair.sender, cm_pair.receiver.addr, 4000)
        vat.start()
        cm_pair.sim.run(until=10.0)
        vat.stop()
        assert vat.frames_generated >= 490
        delivered_fraction = vat.frames_sent / vat.frames_generated
        assert delivered_fraction > 0.95
        assert vat.mean_delivery_delay() < 0.1
        reflector.close()

    def test_constrained_path_polices_preemptively(self, make_pair):
        pair = make_pair(with_cm=True, rate_bps=48e3, one_way_delay=0.025, queue_limit=10)
        reflector = AckReflector(pair.receiver, 4000)
        vat = VatApplication(pair.sender, pair.receiver.addr, 4000)
        vat.start()
        pair.sim.run(until=20.0)
        vat.stop()
        # The 64 kbit/s source does not fit in 48 kbit/s: the policer must
        # shed load, and the CM must have told it about the lower rate.
        assert vat.frames_dropped_by_policer > 0
        assert len(vat.rate_updates) > 0
        assert vat.frames_sent < vat.frames_generated
        reflector.close()

    def test_stop_is_idempotent(self, cm_pair):
        reflector = AckReflector(cm_pair.receiver, 4000)
        vat = VatApplication(cm_pair.sender, cm_pair.receiver.addr, 4000)
        vat.start()
        cm_pair.sim.run(until=1.0)
        vat.stop()
        vat.stop()
        reflector.close()


class TestLayeredStreaming:
    def test_alf_mode_adapts_upwards(self, cm_pair):
        reflector = AckReflector(cm_pair.receiver, 9001)
        server = LayeredStreamingServer(cm_pair.sender, cm_pair.receiver.addr, 9001, mode="alf")
        server.start()
        cm_pair.sim.run(until=8.0)
        server.stop()
        assert server.packets_sent > 100
        assert server.current_layer > 0
        assert reflector.packets_received > 0
        reflector.close()

    def test_rate_mode_uses_fewer_notifications(self, make_pair):
        pair_alf = make_pair(with_cm=True, rate_bps=16e6, one_way_delay=0.02)
        reflector = AckReflector(pair_alf.receiver, 9001)
        alf = LayeredStreamingServer(pair_alf.sender, pair_alf.receiver.addr, 9001, mode="alf")
        rate = LayeredStreamingServer(pair_alf.sender, pair_alf.receiver.addr, 9001, mode="rate")
        alf.start()
        rate.start()
        pair_alf.sim.run(until=5.0)
        alf.stop()
        rate.stop()
        # The ALF sender consults the CM per packet; the rate-callback sender
        # only hears about significant changes.
        assert len(rate.reported_rates) < len(alf.reported_rates)
        reflector.close()

    def test_layer_selection_is_monotone_in_rate(self, cm_pair):
        reflector = AckReflector(cm_pair.receiver, 9001)
        server = LayeredStreamingServer(cm_pair.sender, cm_pair.receiver.addr, 9001)
        layers = [server.layer_for_rate(r) for r in (0, 1e5, 3e5, 6e5, 1.2e6, 3e6)]
        assert layers == sorted(layers)
        assert layers[0] == 0
        assert layers[-1] == len(server.layer_rates) - 1
        reflector.close()

    def test_invalid_mode_rejected(self, cm_pair):
        with pytest.raises(ValueError):
            LayeredStreamingServer(cm_pair.sender, cm_pair.receiver.addr, 9001, mode="magic")


class TestWebServerClient:
    def test_fetch_completes_and_is_timed(self, make_pair):
        pair = make_pair(with_cm=True, one_way_delay=0.02, rate_bps=16e6)
        server = FileServer(pair.sender, 80, variant="cm")
        client = WebClient(pair.receiver, pair.sender.addr, 80)
        record = client.fetch(64 * 1024)
        pair.sim.run(until=30.0)
        assert record.done
        assert record.duration > 2 * 0.02  # at least request + handshake RTTs
        assert server.requests_served == 1
        server.close()
        client.close()

    def test_cm_server_speeds_up_later_requests(self, make_pair):
        durations = {}
        for variant in ("cm", "linux"):
            pair = make_pair(with_cm=(variant == "cm"), one_way_delay=0.04, rate_bps=16e6, seed=3)
            server = FileServer(pair.sender, 80, variant=variant)
            client = WebClient(pair.receiver, pair.sender.addr, 80)
            for i in range(4):
                pair.sim.schedule(i * 0.5, client.fetch, 128 * 1024)
            pair.sim.run(until=pair.sim.now + 30.0)
            durations[variant] = [f.duration for f in client.fetches]
            server.close()
            client.close()
        assert durations["cm"][-1] < durations["linux"][-1]

    def test_linux_variant_needs_no_cm(self, make_pair):
        pair = make_pair(with_cm=False)
        FileServer(pair.sender, 80, variant="linux")

    def test_cm_variant_requires_cm(self, make_pair):
        pair = make_pair(with_cm=False)
        with pytest.raises(RuntimeError):
            FileServer(pair.sender, 80, variant="cm")

    def test_bad_requests_ignored(self, make_pair):
        pair = make_pair(with_cm=True)
        server = FileServer(pair.sender, 80, variant="cm")
        from repro.transport.udp import UDPSocket

        probe = UDPSocket(pair.receiver)
        probe.sendto(10, pair.sender.addr, 80, headers={})
        pair.sim.run(until=1.0)
        assert server.requests_served == 0


class TestBulkTransfer:
    def test_result_fields(self, make_pair):
        pair = make_pair(with_cm=True, rate_bps=100e6, one_way_delay=0.0005)
        app = BulkTransferApp(pair.sender, pair.receiver, variant="cm")
        result = app.run(pair.sim, nbuffers=500)
        assert result.completed
        assert result.total_bytes == 500 * 1448
        assert result.throughput > 0
        assert 0 <= result.cpu_utilization <= 1
        assert result.cpu_by_category
        app.close()

    def test_invalid_arguments(self, make_pair):
        pair = make_pair(with_cm=True)
        with pytest.raises(ValueError):
            BulkTransferApp(pair.sender, pair.receiver, variant="quic")
        app = BulkTransferApp(pair.sender, pair.receiver, variant="cm", port=5002)
        with pytest.raises(ValueError):
            app.run(pair.sim, nbuffers=0)


class TestApiOverheadApps:
    @pytest.mark.parametrize("variant", ["alf", "alf_noconnect", "buffered"])
    def test_udp_variants_complete(self, make_pair, variant):
        pair = make_pair(with_cm=True, rate_bps=100e6, one_way_delay=0.0005)
        reflector = AckReflector(pair.receiver, 7001)
        app = UDPApiTestApp(pair.sender, pair.receiver.addr, 7001,
                            variant=variant, packet_size=500, npackets=200)
        result = app.run(pair.sim, link_rate_bps=100e6)
        assert result.completed
        assert result.packets_sent == 200
        assert result.cpu_us_per_packet > 0
        reflector.close()

    def test_noconnect_costs_more_ioctls_than_connected(self, make_pair):
        results = {}
        for variant in ("alf", "alf_noconnect"):
            pair = make_pair(with_cm=True, rate_bps=100e6, one_way_delay=0.0005)
            reflector = AckReflector(pair.receiver, 7001)
            app = UDPApiTestApp(pair.sender, pair.receiver.addr, 7001,
                                variant=variant, packet_size=500, npackets=200)
            results[variant] = app.run(pair.sim, link_rate_bps=100e6)
            reflector.close()
        assert results["alf_noconnect"].ops_per_packet("ioctl") > results["alf"].ops_per_packet("ioctl")
        assert results["alf_noconnect"].us_per_packet > results["alf"].us_per_packet

    @pytest.mark.parametrize("variant", ["tcp_cm", "tcp_cm_nodelay", "tcp_linux"])
    def test_tcp_variants_complete(self, make_pair, variant):
        pair = make_pair(with_cm=True, rate_bps=100e6, one_way_delay=0.0005)
        app = TCPApiTestApp(pair.sender, pair.receiver, variant=variant, packet_size=1000, npackets=300)
        result = app.run(pair.sim, link_rate_bps=100e6)
        assert result.completed
        assert result.packets_sent >= 300
        app.close()

    def test_unknown_variants_rejected(self, make_pair):
        pair = make_pair(with_cm=True)
        with pytest.raises(ValueError):
            UDPApiTestApp(pair.sender, pair.receiver.addr, 7001, variant="carrier-pigeon",
                          packet_size=100, npackets=1)
        with pytest.raises(ValueError):
            TCPApiTestApp(pair.sender, pair.receiver, variant="sctp", packet_size=100, npackets=1)
