"""Property-based tests (hypothesis) for core data structures and invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import jain_fairness
from repro.core import (
    AimdWindowController,
    RoundRobinScheduler,
    RttEstimator,
    WeightedRoundRobinScheduler,
    CM_ECN_CONGESTION,
    CM_NO_CONGESTION,
    CM_PERSISTENT_CONGESTION,
    CM_TRANSIENT_CONGESTION,
)
from repro.core.constants import MAX_RTO_SECONDS, MIN_RTO_SECONDS
from repro.netsim import Link, Packet, RateTracker, Simulator

MTU = 1500

congestion_events = st.sampled_from(
    [CM_NO_CONGESTION, CM_TRANSIENT_CONGESTION, CM_PERSISTENT_CONGESTION, CM_ECN_CONGESTION]
)
ack_or_congestion = st.one_of(
    st.integers(min_value=1, max_value=100_000),  # an acknowledgement of N bytes
    congestion_events,
)


class TestAimdProperties:
    @given(st.lists(ack_or_congestion, max_size=200))
    @settings(deadline=None)
    def test_window_always_within_bounds(self, events):
        controller = AimdWindowController(MTU, max_window_bytes=10_000_000)
        for event in events:
            if isinstance(event, int):
                controller.on_ack(event)
            else:
                controller.on_congestion(event)
        assert MTU <= controller.cwnd <= 10_000_000
        assert controller.ssthresh >= 2 * MTU

    @given(st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=100))
    @settings(deadline=None)
    def test_acks_never_shrink_the_window(self, acks):
        controller = AimdWindowController(MTU)
        previous = controller.cwnd
        for nbytes in acks:
            controller.on_ack(nbytes)
            assert controller.cwnd >= previous
            previous = controller.cwnd

    @given(st.integers(min_value=2, max_value=50))
    @settings(deadline=None)
    def test_congestion_always_reduces_a_grown_window(self, growth_rounds):
        controller = AimdWindowController(MTU)
        for _ in range(growth_rounds):
            controller.on_ack(int(controller.cwnd))
        before = controller.cwnd
        controller.on_congestion(CM_TRANSIENT_CONGESTION)
        assert controller.cwnd < before

    @given(st.floats(min_value=1e-4, max_value=10.0))
    @settings(deadline=None)
    def test_rate_estimate_consistent_with_window(self, srtt):
        controller = AimdWindowController(MTU)
        assert controller.rate_estimate(srtt) * srtt == pytest.approx(controller.cwnd)


class TestRttProperties:
    @given(st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=200))
    @settings(deadline=None)
    def test_srtt_stays_within_sample_range(self, samples):
        estimator = RttEstimator()
        for sample in samples:
            estimator.sample(sample)
        assert min(samples) <= estimator.smoothed_rtt() <= max(samples)

    @given(st.lists(st.floats(min_value=1e-4, max_value=100.0), min_size=1, max_size=50))
    @settings(deadline=None)
    def test_rto_always_clamped(self, samples):
        estimator = RttEstimator()
        for sample in samples:
            estimator.sample(sample)
        assert MIN_RTO_SECONDS <= estimator.rto() <= MAX_RTO_SECONDS


class TestSchedulerProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=200))
    @settings(deadline=None)
    def test_round_robin_conserves_requests(self, flow_ids):
        scheduler = RoundRobinScheduler()
        for flow_id in flow_ids:
            scheduler.enqueue(flow_id)
        served = []
        while scheduler.has_pending():
            served.append(scheduler.next_flow())
        assert sorted(served) == sorted(flow_ids)

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=120),
        st.integers(min_value=1, max_value=5),
    )
    @settings(deadline=None)
    def test_weighted_scheduler_conserves_requests(self, flow_ids, weight):
        scheduler = WeightedRoundRobinScheduler()
        scheduler.set_weight(1, weight)
        for flow_id in flow_ids:
            scheduler.enqueue(flow_id)
        served = []
        while scheduler.has_pending():
            served.append(scheduler.next_flow())
        assert sorted(served) == sorted(flow_ids)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50))
    @settings(deadline=None)
    def test_round_robin_no_starvation(self, n_first, n_second):
        scheduler = RoundRobinScheduler()
        for _ in range(n_first):
            scheduler.enqueue(1)
        for _ in range(n_second):
            scheduler.enqueue(2)
        first_grants = [scheduler.next_flow() for _ in range(min(4, n_first + n_second))]
        if n_first and n_second and len(first_grants) >= 2:
            assert set(first_grants[:2]) == {1, 2}


class TestLinkProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=1460), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=30),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_link_conserves_packets(self, sizes, queue_limit):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, delay=0.001, queue_limit=queue_limit, seed=1)
        received = []
        link.attach(received.append)
        accepted = 0
        for index, size in enumerate(sizes):
            packet = Packet(src="a", dst="b", sport=1, dport=2, protocol="udp", payload_bytes=size)
            if link.send(packet):
                accepted += 1
        sim.run()
        # Every accepted packet is delivered exactly once; drops are only the
        # refused ones.
        assert len(received) == accepted
        assert link.stats.dropped_packets == len(sizes) - accepted
        assert len({p.packet_id for p in received}) == len(received)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.integers(min_value=0, max_value=10_000)),
                    max_size=100))
    @settings(deadline=None)
    def test_rate_tracker_conserves_bytes(self, observations):
        tracker = RateTracker(bin_width=0.5)
        total = 0
        for time, nbytes in observations:
            tracker.record(time, nbytes)
            total += nbytes
        series = tracker.series()
        assert sum(rate * tracker.bin_width for _t, rate in series) == total


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    @settings(deadline=None)
    def test_jain_index_bounded(self, shares):
        value = jain_fairness(shares)
        assert 0.0 <= value <= 1.0 + 1e-9
