"""Batched grant dispatch: order equivalence, fairness, and mid-round removal.

The PR-1 rewrite lets the scheduler hand out up to ``grant_batch_size``
grants per wakeup.  These tests pin down the invariant that batching is a
pure dispatch-cost optimisation: the grant order is byte-for-byte the order
the one-at-a-time (``grant_batch_size=1``) scheduler produces.
"""

import itertools

import pytest

from repro import CongestionManager, HostCosts
from repro.core.scheduler import RoundRobinScheduler, WeightedRoundRobinScheduler
from repro.netsim import Host, Simulator


def fill(scheduler, requests):
    for flow_id, count in requests:
        for _ in range(count):
            scheduler.enqueue(flow_id)


def drain_one_at_a_time(scheduler):
    order = []
    while True:
        flow_id = scheduler.next_flow()
        if flow_id is None:
            return order
        order.append(flow_id)


def drain_batched(scheduler, batch_size):
    order = []
    while True:
        batch = scheduler.next_batch(batch_size)
        if not batch:
            return order
        order.extend(batch)


REQUEST_PATTERNS = [
    [(1, 1)],
    [(1, 3), (2, 3), (3, 3)],
    [(1, 5), (2, 1), (3, 2)],
    [(7, 2), (3, 9), (5, 1), (1, 4)],
    [(1, 1), (2, 1), (3, 1), (4, 1), (5, 1), (6, 1), (7, 1)],
]


class TestNextBatchOrderEquivalence:
    @pytest.mark.parametrize("pattern", REQUEST_PATTERNS)
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 100])
    def test_round_robin_batch_matches_single(self, pattern, batch_size):
        reference = RoundRobinScheduler()
        batched = RoundRobinScheduler()
        fill(reference, pattern)
        fill(batched, pattern)
        assert drain_batched(batched, batch_size) == drain_one_at_a_time(reference)

    @pytest.mark.parametrize("pattern", REQUEST_PATTERNS)
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 100])
    def test_weighted_batch_matches_single(self, pattern, batch_size):
        reference = WeightedRoundRobinScheduler()
        batched = WeightedRoundRobinScheduler()
        for scheduler in (reference, batched):
            scheduler.set_weight(1, 3)
            scheduler.set_weight(2, 2)
        fill(reference, pattern)
        fill(batched, pattern)
        assert drain_batched(batched, batch_size) == drain_one_at_a_time(reference)

    def test_partial_batch_resumes_rotation(self):
        scheduler = RoundRobinScheduler()
        fill(scheduler, [(1, 2), (2, 2), (3, 2)])
        assert scheduler.next_batch(2) == [1, 2]
        # The next pop must continue the rotation at flow 3, not restart.
        assert scheduler.next_flow() == 3
        assert scheduler.next_batch(10) == [1, 2, 3]

    def test_batch_counts_against_pending(self):
        scheduler = RoundRobinScheduler()
        fill(scheduler, [(1, 4)])
        assert scheduler.next_batch(3) == [1, 1, 1]
        assert scheduler.pending_requests(1) == 1
        assert scheduler.pending_requests() == 1


class TestWeightedNextBatchOverride:
    """The PR-4 optimized WRR ``next_batch`` must be a pure cost change.

    The base-class loop popped one request per ``next_flow`` call, rescanning
    credits each time; the override serves whole head-of-ring bursts.  These
    tests replay both against the same workloads, including interleaved
    enqueues, partial drains and mid-round removals.
    """

    def test_weighted_burst_shape(self):
        scheduler = WeightedRoundRobinScheduler()
        scheduler.set_weight(1, 3)
        scheduler.set_weight(2, 1)
        fill(scheduler, [(1, 5), (2, 5)])
        # Weight-3 flow bursts three, weight-1 flow gets one, repeat; the
        # heavy flow drains on its second (truncated) burst.
        assert scheduler.next_batch(8) == [1, 1, 1, 2, 1, 1, 2, 2]

    def test_weighted_batch_randomized_order_identity(self):
        import random

        rng = random.Random(20260730)
        for _trial in range(60):
            reference = WeightedRoundRobinScheduler()
            batched = WeightedRoundRobinScheduler()
            n_flows = rng.randint(1, 7)
            for flow_id in range(1, n_flows + 1):
                weight = rng.randint(1, 5)
                reference.set_weight(flow_id, weight)
                batched.set_weight(flow_id, weight)
            for _op in range(rng.randint(2, 25)):
                action = rng.random()
                if action < 0.55:
                    flow_id = rng.randint(1, n_flows)
                    count = rng.randint(1, 6)
                    for _ in range(count):
                        reference.enqueue(flow_id)
                        batched.enqueue(flow_id)
                elif action < 0.70:
                    victim = rng.randint(1, n_flows)
                    reference.remove_flow(victim)
                    batched.remove_flow(victim)
                else:
                    size = rng.randint(1, 9)
                    expected = []
                    for _ in range(size):
                        flow_id = reference.next_flow()
                        if flow_id is None:
                            break
                        expected.append(flow_id)
                    assert batched.next_batch(size) == expected
                assert batched.pending_requests() == reference.pending_requests()
            # Full drain at the end must agree too.
            assert drain_batched(batched, 4) == drain_one_at_a_time(reference)

    def test_weighted_batch_replenishes_when_all_credits_spent(self):
        scheduler = WeightedRoundRobinScheduler()
        scheduler.set_weight(1, 2)
        scheduler.set_weight(2, 2)
        fill(scheduler, [(1, 4), (2, 4)])
        # First batch spends every credit mid-ring; the next batch must
        # replenish and continue in ring order, exactly like next_flow.
        assert scheduler.next_batch(4) == [1, 1, 2, 2]
        assert scheduler.next_batch(4) == [1, 1, 2, 2]
        assert scheduler.next_batch(4) == []


class TestRemoveFlowMidRound:
    def test_round_robin_remove_mid_round_order(self):
        scheduler = RoundRobinScheduler()
        fill(scheduler, [(1, 2), (2, 2), (3, 2)])
        assert scheduler.next_flow() == 1  # 1 rotates to the back
        scheduler.remove_flow(2)
        assert drain_one_at_a_time(scheduler) == [3, 1, 3]
        assert scheduler.pending_requests() == 0

    def test_round_robin_remove_mid_batch_drain(self):
        scheduler = RoundRobinScheduler()
        fill(scheduler, [(1, 3), (2, 3), (3, 3)])
        assert scheduler.next_batch(4) == [1, 2, 3, 1]
        scheduler.remove_flow(1)
        assert scheduler.pending_requests(1) == 0
        assert scheduler.next_batch(10) == [2, 3, 2, 3]

    def test_weighted_remove_mid_round(self):
        scheduler = WeightedRoundRobinScheduler()
        scheduler.set_weight(2, 3)
        fill(scheduler, [(1, 2), (2, 4), (3, 2)])
        first = [scheduler.next_flow() for _ in range(3)]
        assert len(first) == 3
        scheduler.remove_flow(2)
        rest = drain_one_at_a_time(scheduler)
        assert 2 not in rest
        assert scheduler.pending_requests() == 0
        assert scheduler.pending_requests(2) == 0

    def test_weighted_remove_then_reenqueue(self):
        scheduler = WeightedRoundRobinScheduler()
        fill(scheduler, [(1, 2), (2, 2)])
        scheduler.remove_flow(1)
        scheduler.enqueue(1)
        drained = drain_one_at_a_time(scheduler)
        assert sorted(drained) == [1, 2, 2]


def build_cm(grant_batch_size):
    sim = Simulator()
    host = Host(sim, "host", "10.0.0.1", costs=HostCosts())
    # The feedback watchdog would "recover" our deliberately stalled windows
    # (that is its job); disable it so grant accounting stays inspectable.
    cm = CongestionManager(host, grant_batch_size=grant_batch_size, feedback_watchdog=False)
    return sim, cm


def open_flows(cm, grants_log, n):
    flow_ids = []
    for i in range(n):
        fid = cm.cm_open("10.0.0.1", "10.0.0.2", 20_000 + i, 80, "tcp")
        cm.cm_register_send(fid, lambda flow_id: grants_log.append(flow_id))
        flow_ids.append(fid)
    return flow_ids


class TestBatchedGrantFairness:
    @pytest.mark.parametrize("batch_size", [2, 8, 32])
    def test_grant_order_identical_to_unbatched(self, batch_size):
        """The batched manager must grant in exactly the k=1 order."""
        logs = {}
        for k in (1, batch_size):
            sim, cm = build_cm(k)
            log = []
            logs[k] = log
            flow_ids = open_flows(cm, log, 5)
            # Open the window so multiple grants can go out per wakeup.
            macroflow = cm.macroflow_of(flow_ids[0])
            macroflow.controller._cwnd = 40 * cm.mtu
            for fid, count in zip(flow_ids, (4, 1, 3, 2, 4)):
                cm.cm_request(fid, count=count)
            cm.cm_bulk_request(list(itertools.chain(*[[f] * 2 for f in flow_ids])))
            sim.run()
        assert logs[batch_size] == logs[1]
        assert len(logs[1]) == 4 + 1 + 3 + 2 + 4 + 10

    def test_round_robin_interleaving_across_flows(self):
        sim, cm = build_cm(32)
        log = []
        flow_ids = open_flows(cm, log, 3)
        macroflow = cm.macroflow_of(flow_ids[0])
        macroflow.controller._cwnd = 40 * cm.mtu
        cm.cm_bulk_request([flow_ids[0]] * 3 + [flow_ids[1]] * 3 + [flow_ids[2]] * 3)
        sim.run()
        a, b, c = flow_ids
        assert log == [a, b, c, a, b, c, a, b, c]

    def test_window_limit_respected_per_grant(self):
        """Batching must not overshoot the window: 2-MTU window, 10 requests."""
        sim, cm = build_cm(32)
        log = []
        (fid,) = open_flows(cm, log, 1)
        macroflow = cm.macroflow_of(fid)
        macroflow.controller._cwnd = 2.0 * cm.mtu
        cm.cm_request(fid, count=10)
        sim.run()
        assert len(log) == 2
        assert macroflow.reserved_bytes == 2 * cm.mtu

    def test_stale_scheduler_entry_skipped_without_consuming_window(self):
        """A queued entry for a vanished flow must neither grant nor eat window."""
        sim, cm = build_cm(32)
        log = []
        flow_ids = open_flows(cm, log, 2)
        macroflow = cm.macroflow_of(flow_ids[0])
        macroflow.controller._cwnd = 2.0 * cm.mtu
        scheduler = macroflow.scheduler
        scheduler.enqueue(999)  # stale: no such flow id
        scheduler.enqueue(flow_ids[0])
        scheduler.enqueue(flow_ids[1])
        cm._maybe_grant(macroflow)
        sim.run()
        assert log == [flow_ids[0], flow_ids[1]]
        assert macroflow.reserved_bytes == 2 * cm.mtu

    def test_batch_size_one_matches_seed_loop(self):
        """k=1 goes through the batched code path but is the seed semantics."""
        from repro.perf.legacy import unbatched_maybe_grant

        sim, cm = build_cm(1)
        log = []
        flow_ids = open_flows(cm, log, 4)
        macroflow = cm.macroflow_of(flow_ids[0])
        macroflow.controller._cwnd = 20 * cm.mtu
        scheduler = macroflow.scheduler
        for fid in flow_ids * 3:
            scheduler.enqueue(fid)
        cm._maybe_grant(macroflow)
        sim.run()
        batched_order = list(log)

        # Reset and replay through the preserved seed loop.
        log.clear()
        macroflow.reserved_bytes = 0.0
        for flow in macroflow.flows.values():
            flow.granted_unnotified = 0
        for fid in flow_ids * 3:
            scheduler.enqueue(fid)
        unbatched_maybe_grant(cm, macroflow)
        sim.run()
        assert batched_order == list(log)
