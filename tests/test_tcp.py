"""Integration tests for TCP: the Reno baseline and TCP/CM."""

import pytest

from repro.transport.tcp import CMTCPSender, RenoTCPSender, TCPListener


def run_transfer(pair, variant, nbytes, port=80, timeout=600.0, **sender_kwargs):
    listener = TCPListener(pair.receiver, port)
    if variant == "cm":
        sender = CMTCPSender(pair.sender, pair.receiver.addr, port, **sender_kwargs)
    else:
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, port, **sender_kwargs)
    sender.send(nbytes)
    pair.sim.run(until=pair.sim.now + timeout)
    return sender, listener


class TestRenoTCP:
    def test_lossless_transfer_delivers_everything(self, make_pair):
        pair = make_pair(one_way_delay=0.005)
        sender, listener = run_transfer(pair, "linux", 500_000, receive_window=64 * 1024)
        assert sender.done
        assert listener.total_bytes_received == 500_000
        assert sender.retransmissions == 0

    def test_transfer_reliable_under_loss(self, make_pair):
        pair = make_pair(loss_rate=0.03, one_way_delay=0.01, seed=4)
        sender, listener = run_transfer(pair, "linux", 300_000)
        assert sender.done
        assert listener.total_bytes_received == 300_000
        assert sender.retransmissions > 0

    def test_receive_window_caps_throughput(self, make_pair):
        # 60 ms RTT and a 16 KB window cap the rate near rwnd / RTT.
        pair = make_pair(one_way_delay=0.03, rate_bps=100e6)
        sender, _ = run_transfer(pair, "linux", 400_000, receive_window=16 * 1024)
        expected = 16 * 1024 / 0.06
        assert sender.throughput() < expected * 1.2

    def test_fast_retransmit_triggered_by_dupacks(self, make_pair):
        pair = make_pair(loss_rate=0.02, one_way_delay=0.01, seed=8)
        sender, _ = run_transfer(pair, "linux", 400_000)
        assert sender.fast_retransmits > 0

    def test_timeout_recovery_on_heavy_loss(self, make_pair):
        pair = make_pair(loss_rate=0.15, one_way_delay=0.005, seed=3)
        sender, listener = run_transfer(pair, "linux", 100_000, timeout=900.0)
        assert sender.done
        assert listener.total_bytes_received == 100_000
        assert sender.timeouts > 0

    def test_initial_window_is_two_segments(self, make_pair):
        pair = make_pair()
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        assert sender.cwnd == 2 * sender.mss

    def test_completion_callback_and_throughput(self, make_pair):
        pair = make_pair(one_way_delay=0.005)
        done_at = []
        listener = TCPListener(pair.receiver, 80)
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.on_complete = done_at.append
        sender.send(100_000)
        pair.sim.run(until=60.0)
        assert done_at and done_at[0] == sender.complete_time
        assert sender.throughput() > 0
        del listener

    def test_send_after_close_rejected(self, make_pair):
        pair = make_pair()
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.close()
        with pytest.raises(RuntimeError):
            sender.send(10)

    def test_connection_handshake_takes_an_rtt(self, make_pair):
        pair = make_pair(one_way_delay=0.05)
        listener = TCPListener(pair.receiver, 80)
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.send(1000)
        pair.sim.run(until=5.0)
        assert sender.established_time == pytest.approx(0.1, abs=0.02)
        del listener

    def test_syn_retransmitted_when_lost(self, make_pair):
        pair = make_pair(loss_rate=0.0, one_way_delay=0.01)
        # Drop the first packet deterministically by making the queue tiny
        # and pre-filling it is awkward; instead use a very lossy channel
        # with a seed known to drop the SYN.
        lossy = make_pair  # placeholder to keep fixture referenced
        del lossy
        pair.channel.forward.loss_rate = 0.9
        listener = TCPListener(pair.receiver, 80)
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.send(1000)
        pair.sim.run(until=0.5)
        pair.channel.forward.loss_rate = 0.0
        pair.sim.run(until=30.0)
        assert sender.connected
        del listener


class TestCMTCP:
    def test_requires_cm_on_host(self, make_pair):
        pair = make_pair(with_cm=False)
        with pytest.raises(RuntimeError):
            CMTCPSender(pair.sender, pair.receiver.addr, 80)

    def test_lossless_transfer_matches_reno_closely(self, make_pair, sim):
        pair = make_pair(with_cm=True, one_way_delay=0.005)
        cm_sender, cm_listener = run_transfer(pair, "cm", 500_000, port=80, receive_window=64 * 1024)
        linux_sender, linux_listener = run_transfer(pair, "linux", 500_000, port=81, receive_window=64 * 1024)
        assert cm_sender.done and linux_sender.done
        assert cm_listener.total_bytes_received == 500_000
        ratio = cm_sender.throughput() / linux_sender.throughput()
        assert 0.7 < ratio < 1.3
        del linux_listener

    def test_transfer_reliable_under_loss(self, make_pair):
        pair = make_pair(with_cm=True, loss_rate=0.03, one_way_delay=0.01, seed=6)
        sender, listener = run_transfer(pair, "cm", 300_000)
        assert sender.done
        assert listener.total_bytes_received == 300_000

    def test_congestion_control_lives_in_the_macroflow(self, make_pair):
        pair = make_pair(with_cm=True, one_way_delay=0.005)
        sender, _ = run_transfer(pair, "cm", 200_000)
        macroflow_state = [m for m in pair.cm.macroflows if m.bytes_sent_total > 0]
        assert macroflow_state, "the transfer must have been charged to a macroflow"
        assert macroflow_state[0].bytes_acked_total > 0

    def test_flow_closed_with_sender(self, make_pair):
        pair = make_pair(with_cm=True)
        sender = CMTCPSender(pair.sender, pair.receiver.addr, 80)
        assert pair.cm.open_flow_count == 1
        sender.close()
        assert pair.cm.open_flow_count == 0

    def test_grant_arriving_after_close_is_declined_quietly(self, make_pair):
        """Regression: cmapp_send callbacks are deferred (call-soon), so a
        grant can land after close() has retired the CM flow; the decline
        must not crash on the unknown flow id."""
        pair = make_pair(with_cm=True)
        listener = TCPListener(pair.receiver, 80)
        sender = CMTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.send(2_000)
        pair.sim.run(until=2.0)
        assert sender.done
        # Queue one more grant, then close before the deferred callback runs.
        pair.cm.cm_request(sender.flow_id)
        sender.close()
        pair.sim.run()  # must not raise UnknownFlowError
        assert sender.declined_grants >= 1
        listener.close()

    def test_sequential_connections_share_congestion_state(self, make_pair):
        """The Figure 7 mechanism: the second connection skips slow start."""
        pair = make_pair(with_cm=True, one_way_delay=0.04, rate_bps=16e6)
        first, first_listener = run_transfer(pair, "cm", 128 * 1024, port=80, timeout=60.0)
        assert first.done
        first_duration = first.complete_time - first.connect_time
        first.close()
        second, second_listener = run_transfer(pair, "cm", 128 * 1024, port=81, timeout=60.0)
        assert second.done
        second_duration = second.complete_time - second.connect_time
        assert second_duration < 0.7 * first_duration
        del first_listener, second_listener

    def test_concurrent_cm_flows_split_the_macroflow_window(self, make_pair):
        pair = make_pair(with_cm=True, one_way_delay=0.01, rate_bps=8e6)
        listener_a = TCPListener(pair.receiver, 80)
        listener_b = TCPListener(pair.receiver, 81)
        a = CMTCPSender(pair.sender, pair.receiver.addr, 80)
        b = CMTCPSender(pair.sender, pair.receiver.addr, 81)
        a.send(2_000_000)
        b.send(2_000_000)
        pair.sim.run(until=4.0)
        total = a.bytes_acked + b.bytes_acked
        assert total > 0
        share = a.bytes_acked / total
        assert 0.3 < share < 0.7
        del listener_a, listener_b

    def test_uses_shared_rtt_for_rto(self, make_pair):
        pair = make_pair(with_cm=True, one_way_delay=0.04)
        # Seed the macroflow with RTT knowledge from a previous flow.
        warm = pair.cm.cm_open(pair.sender.addr, pair.receiver.addr, 999, 999, "udp")
        pair.cm.cm_update(warm, 0, 0, "no_congestion", 0.08)
        sender = CMTCPSender(pair.sender, pair.receiver.addr, 80)
        assert sender._current_rto() >= 0.08

    def test_transfer_with_ecn_marking(self, make_pair):
        pair = make_pair(with_cm=True, one_way_delay=0.01, ecn_threshold=5, queue_limit=30)
        listener = TCPListener(pair.receiver, 80)
        sender = CMTCPSender(pair.sender, pair.receiver.addr, 80, ecn=True)
        sender.send(1_000_000)
        pair.sim.run(until=120.0)
        assert sender.done
        assert listener.total_bytes_received == 1_000_000


class TestReceiver:
    def test_out_of_order_reassembly(self, make_pair):
        pair = make_pair(loss_rate=0.05, one_way_delay=0.01, seed=12)
        sender, listener = run_transfer(pair, "linux", 200_000)
        assert sender.done
        connection = next(iter(listener.connections.values()))
        assert connection.bytes_received == 200_000
        assert connection.dup_acks_sent > 0

    def test_delayed_acks_reduce_ack_count(self, make_pair):
        pair = make_pair(one_way_delay=0.005)
        delayed_sender, delayed_listener = run_transfer(pair, "linux", 400_000, port=80)
        pair2_listener = TCPListener(pair.receiver, 81, delayed_acks=False)
        nodelay_sender = RenoTCPSender(pair.sender, pair.receiver.addr, 81)
        nodelay_sender.send(400_000)
        pair.sim.run(until=pair.sim.now + 300.0)
        delayed_conn = next(iter(delayed_listener.connections.values()))
        nodelay_conn = next(iter(pair2_listener.connections.values()))
        assert delayed_conn.acks_sent < nodelay_conn.acks_sent
        del delayed_sender, nodelay_sender

    def test_data_callback_reports_bytes(self, make_pair):
        pair = make_pair(one_way_delay=0.005)
        seen = []
        listener = TCPListener(pair.receiver, 80, on_data=lambda n, t: seen.append(n))
        sender = RenoTCPSender(pair.sender, pair.receiver.addr, 80)
        sender.send(50_000)
        pair.sim.run(until=30.0)
        assert sum(seen) == 50_000
        del listener
