"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import CongestionManager, HostCosts
from repro.netsim import Channel, Host, Simulator


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


class PairTestbed:
    """Two hosts joined by a configurable channel, with helpers for tests."""

    def __init__(self, sim, rate_bps=10e6, one_way_delay=0.01, loss_rate=0.0,
                 queue_limit=100, ecn_threshold=None, seed=0, with_cm=False):
        self.sim = sim
        self.sender = Host(sim, "sender", "10.0.0.1", costs=HostCosts())
        self.receiver = Host(sim, "receiver", "10.0.0.2", costs=HostCosts())
        self.channel = Channel(
            sim, self.sender, self.receiver,
            rate_bps=rate_bps, one_way_delay=one_way_delay, loss_rate=loss_rate,
            reverse_loss_rate=0.0, queue_limit=queue_limit,
            ecn_threshold=ecn_threshold, seed=seed,
        )
        self.cm = CongestionManager(self.sender) if with_cm else None


@pytest.fixture
def make_pair(sim):
    """Factory fixture building a sender/receiver pair on the shared simulator."""

    def _make(**kwargs):
        return PairTestbed(sim, **kwargs)

    return _make


@pytest.fixture
def cm_pair(make_pair):
    """A host pair with a Congestion Manager installed on the sender."""
    return make_pair(with_cm=True)
