"""The unified telemetry layer: probes, bounded recorders, samplers, wiring.

Pins down the PR-4 contracts:

* probe slots compile to ``None`` (a no-op) when no recorder subscribes;
* every recorder holds bounded memory no matter how many events flow
  through it (the million-event test drives the real link probe path);
* sampled series and trace files are deterministic per ``(spec, seed)``;
* probes-on runs produce byte-identical app/link/host metrics to
  probes-off runs.
"""

import json

import pytest

from repro.netsim import Link, Packet, PacketTrace, RateTracker, Simulator
from repro.netsim.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES


def packet_header_bytes() -> int:
    return IP_HEADER_BYTES + UDP_HEADER_BYTES
from repro.telemetry import (
    EVENT_NAMES,
    FixedBinAccumulator,
    JsonlSink,
    PeriodicSampler,
    ReservoirRecorder,
    RingRecorder,
    SeriesRecorder,
    TelemetryHub,
)


class TestRecorders:
    def test_fixed_bin_accumulator_bins_and_series(self):
        acc = FixedBinAccumulator(bin_width=1.0, max_bins=100)
        acc.add(0.25, 10)
        acc.add(0.75, 10)
        acc.add(3.5, 40)
        assert acc.bin_series() == [(0.0, 20.0), (1.0, 0.0), (2.0, 0.0), (3.0, 40.0)]
        assert acc.total == 60.0
        assert acc.count == 3

    def test_fixed_bin_accumulator_clips_at_capacity(self):
        acc = FixedBinAccumulator(bin_width=1.0, max_bins=4)
        for t in range(10):
            acc.add(float(t), 1)
        assert acc.bins_used == 4
        assert acc.clipped == 6
        # Clipped values fold into the nearest edge, keeping totals honest.
        assert sum(v for _t, v in acc.bin_series()) == acc.total == 10.0

    def test_fixed_bin_accumulator_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FixedBinAccumulator(bin_width=0)
        with pytest.raises(ValueError):
            FixedBinAccumulator(max_bins=0)

    def test_ring_recorder_keeps_newest(self):
        ring = RingRecorder(capacity=3)
        for i in range(7):
            ring.append(i)
        assert ring.items() == [4, 5, 6]
        assert len(ring) == 3
        assert ring.dropped == 4

    def test_reservoir_recorder_is_deterministic_and_bounded(self):
        def fill(seed):
            reservoir = ReservoirRecorder(capacity=10, seed=seed)
            for i in range(1000):
                reservoir.append(i)
            return reservoir

        a, b = fill(7), fill(7)
        assert a.items() == b.items()
        assert len(a) == 10
        assert a.seen == 1000
        assert a.dropped == 990
        # Kept items come back in stream order.
        assert a.items() == sorted(a.items())
        assert fill(8).items() != a.items()

    def test_series_recorder_caps_points(self):
        series = SeriesRecorder(max_samples=3)
        for i in range(5):
            series.append(float(i), float(i * i))
        assert series.points() == [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]
        assert series.dropped == 2

    def test_jsonl_sink_canonical_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink("packet.drop", 1.5, {"link": "a->b", "reason": "overflow"})
            sink.write_sample(2.0, "cm.h.mf1.cwnd", 1500.0)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "t": 1.5, "event": "packet.drop", "link": "a->b", "reason": "overflow"
        }
        assert json.loads(lines[1]) == {
            "t": 2.0, "event": "sample", "series": "cm.h.mf1.cwnd", "value": 1500.0
        }
        assert sink.lines_written == 2


class TestHub:
    def test_probe_is_none_without_subscribers(self):
        hub = TelemetryHub()
        for event in EVENT_NAMES:
            assert hub.probe(event) is None

    def test_probe_counts_and_dispatches(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe("cm.grant", lambda event, t, fields: seen.append((event, t, fields)))
        probe = hub.probe("cm.grant")
        probe(1.0, {"flow": 3})
        assert seen == [("cm.grant", 1.0, {"flow": 3})]
        assert hub.counts["cm.grant"] == 1
        # Unsubscribed events still compile to the no-op.
        assert hub.probe("packet.drop") is None

    def test_probe_fans_out_to_many_sinks(self):
        hub = TelemetryHub()
        a, b = [], []
        hub.subscribe("app.chunk", lambda *rec: a.append(rec))
        hub.subscribe("app.chunk", lambda *rec: b.append(rec))
        hub.probe("app.chunk")(0.5, {"seq": 1})
        assert len(a) == len(b) == 1
        assert hub.counts["app.chunk"] == 1

    def test_unknown_event_rejected(self):
        hub = TelemetryHub()
        with pytest.raises(ValueError):
            hub.subscribe("no.such.event", lambda *rec: None)
        with pytest.raises(ValueError):
            hub.probe("no.such.event")

    def test_subscribed_events_in_catalog_order(self):
        hub = TelemetryHub()
        hub.subscribe("tcp.transmit", lambda *rec: None)
        hub.subscribe("packet.drop", lambda *rec: None)
        assert hub.subscribed_events() == ("packet.drop", "tcp.transmit")


class TestBoundedMemoryAtScale:
    def test_recorders_stay_bounded_over_a_million_packet_events(self):
        """Drive >= 1M packet events through the real link probe dispatch
        into every bounded recorder shape; memory must stay at capacity."""
        sim = Simulator()
        link = Link(sim, rate_bps=1e12, delay=0.0, queue_limit=None, name="flood")
        link.attach(lambda packet: None)

        hub = TelemetryHub()
        ring = RingRecorder(capacity=2048)
        reservoir = ReservoirRecorder(capacity=512, seed=1)
        bins = FixedBinAccumulator(bin_width=0.5, max_bins=256)
        hub.subscribe("packet.enqueue", lambda event, t, fields: ring.append((t, fields)))
        hub.subscribe("packet.enqueue", lambda event, t, fields: reservoir.append(t))
        hub.subscribe("packet.enqueue",
                      lambda event, t, fields: bins.add(t, fields["size"]))
        link.attach_telemetry(hub)

        n = 1_000_000
        packet = Packet(src="a", dst="b", sport=1, dport=2, protocol="udp",
                        payload_bytes=100 - packet_header_bytes())
        assert packet.size == 100
        send = link.send
        for _ in range(n):
            send(packet)
        # Drain the (huge) event heap cheaply: the recorders already saw
        # every enqueue; delivery events are irrelevant to the bound.
        assert hub.counts["packet.enqueue"] == n
        assert len(ring) == 2048 and ring.dropped == n - 2048
        assert len(reservoir) == 512 and reservoir.seen == n
        assert bins.bins_used <= 256
        assert bins.count == n and bins.total == 100.0 * n


class TestSampler:
    def test_periodic_sampler_ticks_on_the_engine(self):
        sim = Simulator()
        state = {"value": 0.0}
        sampler = PeriodicSampler(sim, interval=0.5, max_samples=100)
        sampler.add_source(lambda now, record: record(now, "state.value", state["value"]))
        sampler.start()
        sim.schedule(0.6, lambda: state.update(value=5.0))
        sim.run(until=2.0)
        sampler.stop()
        points = sampler.sampled_series()["state.value"]
        assert points[0] == (0.0, 0.0)
        assert (1.0, 5.0) in points and (1.5, 5.0) in points
        assert sampler.ticks == len(points)

    def test_sampler_series_bound_and_drop_accounting(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, interval=0.1, max_samples=5)
        sampler.add_source(lambda now, record: record(now, "x", 1.0))
        sampler.start()
        sim.run(until=5.0)
        sampler.stop()
        assert len(sampler.sampled_series()["x"]) == 5
        assert sampler.dropped_by_series()["x"] > 0

    def test_sampler_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), interval=0.0)


class TestTraceFacades:
    def test_packet_trace_is_bounded_with_drop_counter(self):
        trace = PacketTrace(capacity=4)
        for i in range(10):
            trace.log(float(i), "send", "a", "b", 100)
        assert len(trace) == 4
        assert trace.dropped_records == 6
        assert [r.time for r in trace.records] == [6.0, 7.0, 8.0, 9.0]
        assert trace.bytes_between(6.0, 9.0, kind="send") == 300

    def test_rate_tracker_series_matches_legacy_semantics(self):
        tracker = RateTracker(bin_width=0.5)
        tracker.record(0.1, 500)
        tracker.record(0.4, 500)
        tracker.record(1.6, 250)
        assert tracker.series() == [(0.0, 2000.0), (0.5, 0.0), (1.0, 0.0), (1.5, 500.0)]
        assert tracker.mean_rate() == pytest.approx(625.0)

    def test_rate_tracker_is_a_bounded_recorder(self):
        tracker = RateTracker(bin_width=0.5, max_bins=8)
        for i in range(100):
            tracker.record(i * 0.5, 100)
        assert tracker.bins_used == 8
        assert tracker.clipped == 92
        with pytest.raises(ValueError):
            RateTracker(bin_width=0)
