"""CLI runner behaviour (error isolation, flags) and JSON artifact round-trips."""

import json

import pytest

from repro.experiments import artifacts, runner
from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import TrialSpec
from repro.experiments.registry import ExperimentSpec, register, unregister


def _quick_reduce(outcomes):
    result = ExperimentResult("_quick", "a fake instant experiment", ["x", "y"])
    for outcome in outcomes:
        result.add_row(outcome.spec.params["x"], outcome.value)
    result.add_series("s", [(0.0, 1.0), (1.0, 2.0)])
    return result


@pytest.fixture
def fake_experiments():
    """Register one instant experiment and one that always raises."""
    register(
        ExperimentSpec(
            name="_quick",
            trials=lambda: [TrialSpec("_quick", {"x": x}) for x in (1, 2)],
            trial=lambda params: params["x"] * 10,
            reduce=_quick_reduce,
            run=lambda **kwargs: _quick_reduce([]),
        )
    )

    def _boom():
        raise RuntimeError("trial enumeration exploded")

    register(
        ExperimentSpec(
            name="_boom",
            trials=_boom,
            trial=lambda params: None,
            reduce=lambda outcomes: None,
            run=lambda **kwargs: None,
        )
    )
    yield
    unregister("_quick")
    unregister("_boom")


class TestRunnerMain:
    def test_failing_experiment_reports_and_continues(self, fake_experiments, capsys):
        exit_code = runner.main(["_boom", "_quick", "--quiet", "--no-cache"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "experiment _boom failed" in captured.err
        assert "trial enumeration exploded" in captured.err
        # The run continued past the failure and printed the good result.
        assert "a fake instant experiment" in captured.out

    def test_unknown_experiment_exit_code(self, capsys):
        assert runner.main(["nosuchthing", "--quiet", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_flag_values_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["figure3", "--jobs", "0"])
        with pytest.raises(SystemExit):
            runner.main(["figure3", "--seeds", "0"])

    def test_json_dir_writes_payload_and_sidecar(self, fake_experiments, tmp_path, capsys):
        out = tmp_path / "out"
        cache = tmp_path / "cache"
        exit_code = runner.main(
            ["_quick", "--quiet", "--json-dir", str(out), "--cache-dir", str(cache), "--jobs", "2"]
        )
        assert exit_code == 0
        payload = json.loads((out / "_quick.json").read_text())
        assert payload["rows"] == [[1, 10], [2, 20]]
        meta = json.loads((out / "_quick.meta.json").read_text())
        assert meta["jobs"] == 2 and meta["trials"] == 2
        # The second run is served entirely from the trial cache.
        runner.main(["_quick", "--quiet", "--json-dir", str(out), "--cache-dir", str(cache)])
        meta2 = json.loads((out / "_quick.meta.json").read_text())
        assert meta2["trials_from_cache"] == 2

    def test_legacy_mapping_still_lists_all_experiments(self):
        assert "figure3" in runner.EXPERIMENTS and "aggressiveness" in runner.EXPERIMENTS


class TestArtifacts:
    def test_result_json_round_trip(self):
        result = ExperimentResult("x", "title", ["a", "b"])
        result.add_row(1, 2.5)
        result.add_series("s", [(0.0, 1.0)])
        result.notes.append("note")
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.payload() == result.payload()
        assert clone.to_json() == result.to_json()
        assert clone.series["s"] == [(0.0, 1.0)]

    def test_write_and_read_artifacts(self, tmp_path):
        result = ExperimentResult("demo", "t", ["v"])
        result.add_row(42)
        result.provenance = {"jobs": 3, "seeds": [1, 2, 3]}
        payload_path, meta_path = artifacts.write_artifacts(result, str(tmp_path))
        loaded = artifacts.read_artifact(payload_path)
        assert loaded.rows == [[42]]
        assert loaded.provenance["jobs"] == 3
        assert json.loads(open(meta_path).read())["seeds"] == [1, 2, 3]

    def test_provenance_contents(self):
        meta = artifacts.build_provenance(
            experiment="figure3", seeds=(1, 2), jobs=4, wall_clock_s=1.5, n_trials=8, n_cached=3
        )
        for key in ("git_revision", "timestamp", "python", "wall_clock_s"):
            assert key in meta
        assert meta["seeds"] == [1, 2] and meta["trials_from_cache"] == 3

    def test_git_revision_is_hex_or_unknown(self):
        revision = artifacts.git_revision()
        assert revision == "unknown" or all(c in "0123456789abcdef" for c in revision)
