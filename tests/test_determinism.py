"""Golden-trace determinism: identical seeds must yield byte-identical JSON.

These tests guard two promises at once: the simulation itself is a pure
function of its seeds (so engine rewrites like PR 1's can be verified against
golden trajectories instead of eyeballs), and the parallel runner's merge is
order-deterministic (so ``--jobs 4`` output is byte-identical to ``--jobs 1``
no matter how the OS schedules the workers).
"""

from repro.experiments import figure3, table1
from repro.experiments.parallel import TrialCache, run_trials
from repro.experiments.runner import run_experiment

FIGURE3_SMALL = dict(loss_rates=(0.0, 0.02), transfer_bytes=120_000, seeds=(1, 2))
TABLE1_SMALL = dict(packet_size=400, npackets=120)


def _figure3_json(jobs, cache=None):
    outcomes = run_trials(figure3.trials(**FIGURE3_SMALL), jobs=jobs, cache=cache)
    return figure3.reduce(outcomes).to_json()


def _table1_json(jobs, cache=None):
    outcomes = run_trials(table1.trials(**TABLE1_SMALL), jobs=jobs, cache=cache)
    return table1.reduce(outcomes).to_json()


class TestGoldenTraces:
    def test_figure3_jobs4_matches_jobs1_byte_for_byte(self):
        serial = _figure3_json(jobs=1)
        pooled = _figure3_json(jobs=4)
        assert serial == pooled
        # And the serialization isn't vacuously empty.
        assert '"tcp_cm_kBps"' in serial and '"rows"' in serial

    def test_table1_jobs4_matches_jobs1_byte_for_byte(self):
        assert _table1_json(jobs=1) == _table1_json(jobs=4)

    def test_figure3_rerun_is_byte_identical(self):
        assert _figure3_json(jobs=1) == _figure3_json(jobs=1)


class TestScenarioRerunDeterminism:
    def test_back_to_back_scenario_runs_produce_identical_traces(self, tmp_path):
        # Two scenario.run() calls in the same process must agree byte-for-
        # byte on both the result payload and the full JSONL telemetry
        # trace: nothing on the packet path (ids included) may depend on
        # process history.
        from repro.scenario import get_preset, run as run_scenario

        spec = get_preset("parking_lot_mix")
        payloads, traces = [], []
        for attempt in range(2):
            trace = tmp_path / f"trace{attempt}.jsonl"
            payloads.append(run_scenario(spec, seed=spec.seed, trace_path=str(trace)).to_json())
            traces.append(trace.read_bytes())
        assert payloads[0] == payloads[1]
        assert traces[0] == traces[1]
        assert traces[0], "trace file must not be empty"


class TestCacheTransparency:
    def test_warm_cache_reproduces_cold_json(self, tmp_path):
        cache = TrialCache(str(tmp_path / "trials"))
        specs = figure3.trials(loss_rates=(0.02,), transfer_bytes=100_000, seeds=(1, 2))

        cold = figure3.reduce(run_trials(specs, jobs=2, cache=cache)).to_json()
        assert cache.hits == 0 and cache.misses == len(specs)

        warm = figure3.reduce(run_trials(specs, jobs=1, cache=cache)).to_json()
        assert cache.hits == len(specs)
        assert warm == cold

        # Without the cache the result is still the same bytes: the cache is
        # an invisible optimization, never a source of truth.
        uncached = figure3.reduce(run_trials(specs, jobs=1)).to_json()
        assert uncached == cold

    def test_cache_outcomes_flagged(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        specs = table1.trials(packet_size=400, npackets=80, apis=("tcp_cm",))
        first = run_trials(specs, jobs=1, cache=cache)
        second = run_trials(specs, jobs=1, cache=cache)
        assert [outcome.cached for outcome in first] == [False]
        assert [outcome.cached for outcome in second] == [True]

    def test_code_change_invalidates_cache(self, tmp_path, monkeypatch):
        from repro.experiments import parallel

        cache = TrialCache(str(tmp_path))
        specs = table1.trials(packet_size=400, npackets=80, apis=("tcp_cm",))
        run_trials(specs, jobs=1, cache=cache)
        assert run_trials(specs, jobs=1, cache=cache)[0].cached is True
        # Simulate an edit to the repro sources: the fingerprint changes, so
        # entries computed under the old code must stop matching.
        monkeypatch.setattr(parallel, "_CODE_FINGERPRINT", "0" * 64)
        assert run_trials(specs, jobs=1, cache=cache)[0].cached is False

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        specs = table1.trials(packet_size=400, npackets=80, apis=("tcp_cm",))
        baseline = run_trials(specs, jobs=1, cache=cache)[0].value
        path = cache._path(specs[0])
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        again = run_trials(specs, jobs=1, cache=cache)[0]
        assert again.cached is False
        assert again.value == baseline


class TestRunnerDeterminism:
    def test_run_experiment_provenance_and_determinism(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        first = run_experiment(
            "figure3", seeds=(1, 2), jobs=2, cache=cache, smoke=True, verbose=False
        )
        second = run_experiment(
            "figure3", seeds=(1, 2), jobs=1, cache=cache, smoke=True, verbose=False
        )
        assert first.to_json() == second.to_json()
        assert first.provenance["trials_from_cache"] == 0
        assert second.provenance["trials_from_cache"] == second.provenance["trials"]
        assert second.provenance["jobs"] == 1
        assert second.provenance["seeds"] == [1, 2]
        assert first.provenance["experiment"] == "figure3"
