"""Property tests (hypothesis) for GraphSpec / WorkloadSpec and routing.

Three contracts the graph/workload subsystem promises:

* any *valid* spec round-trips ``to_dict`` / ``from_dict`` byte-identically
  (canonical JSON equality, not just ``==``);
* unknown keys are rejected *by name* at every nesting level;
* the static routing tables are a pure function of the link set —
  permuting the declaration order of nodes and links changes nothing.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.graph import shortest_path_next_hops
from repro.scenario import (
    GraphLinkSpec,
    GraphNodeSpec,
    GraphSpec,
    HostSpec,
    LinkSpec,
    ScenarioSpec,
    SpecError,
    StopSpec,
    WorkloadSpec,
)

# ---------------------------------------------------------------- strategies

names = st.integers(min_value=0, max_value=25).map(lambda i: f"n{i}")


@st.composite
def graph_specs(draw):
    """Arbitrary *valid* connected graphs: 2-8 nodes, a spanning tree plus
    random extra links, mixed host/router kinds (>= 1 host)."""
    n = draw(st.integers(min_value=2, max_value=8))
    node_names = [f"n{i}" for i in range(n)]
    kinds = draw(st.lists(st.sampled_from(["host", "router"]), min_size=n, max_size=n))
    if "host" not in kinds:
        kinds[draw(st.integers(min_value=0, max_value=n - 1))] = "host"
    nodes = [
        GraphNodeSpec(
            name=name,
            kind=kind,
            cm=draw(st.booleans()) if kind == "host" else False,
            costs=draw(st.booleans()) if kind == "host" else True,
        )
        for name, kind in zip(node_names, kinds)
    ]
    # A random spanning tree keeps the graph connected; extra random links
    # (deduped, no self-loops) exercise multi-path routing.
    pairs = []
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        pairs.append((node_names[j], node_names[i]))
    extra = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=n - 1),
                  st.integers(min_value=0, max_value=n - 1)),
        max_size=5,
    ))
    seen = {tuple(sorted(p)) for p in pairs}
    for i, j in extra:
        if i == j:
            continue
        key = tuple(sorted((node_names[i], node_names[j])))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((node_names[i], node_names[j]))
    links = [
        GraphLinkSpec(
            a=a,
            b=b,
            rate_bps=float(draw(st.integers(min_value=1, max_value=10_000))) * 1e3,
            delay=draw(st.integers(min_value=0, max_value=200)) / 1_000.0,
            queue_limit=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=500))),
            loss_rate=draw(st.integers(min_value=0, max_value=100)) / 1_000.0,
            ecn_threshold=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=50))),
            seed_offset=draw(st.integers(min_value=0, max_value=64)),
        )
        for a, b in pairs
    ]
    return GraphSpec(nodes=nodes, links=links)


@st.composite
def workload_specs(draw):
    """Arbitrary valid workload blocks against a fixed two-host topology."""
    kind = draw(st.sampled_from(["tcp_flows", "web_sessions", "vat_onoff"]))
    params = {}
    if kind in ("tcp_flows", "web_sessions"):
        params["arrival"] = draw(st.sampled_from(["poisson", "weibull"]))
        params["rate"] = draw(st.integers(min_value=1, max_value=50)) / 10.0
    if kind == "tcp_flows":
        params["variant"] = "reno"  # host needs no CM; spec-level property only
        params["min_bytes"] = draw(st.integers(min_value=1_000, max_value=50_000))
    start = draw(st.integers(min_value=0, max_value=5)) / 2.0
    stop = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=10)))
    if stop is not None:
        stop = start + float(stop)
    return WorkloadSpec(
        kind=kind,
        host="a",
        peer="b",
        label=draw(st.sampled_from(["", "w0", "churn"])),
        start=start,
        stop=stop,
        seed_offset=draw(st.integers(min_value=0, max_value=8)),
        params=params,
    )


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def graph_scenario(graph: GraphSpec) -> ScenarioSpec:
    return ScenarioSpec(name="prop", graph=graph, stop=StopSpec(until=1.0))


# ------------------------------------------------------------------- tests


class TestGraphSpecProperties:
    @given(graph_specs())
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    def test_valid_graphs_round_trip_byte_identically(self, graph):
        spec = graph_scenario(graph)
        spec.validate()
        first = canonical(spec.to_dict())
        reparsed = ScenarioSpec.from_dict(json.loads(first))
        reparsed.validate()
        assert canonical(reparsed.to_dict()) == first

    @given(graph_specs(), st.randoms(use_true_random=False))
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    def test_routing_invariant_under_declaration_order_permutation(self, graph, rnd):
        baseline = graph.routing()
        shuffled_nodes = list(graph.nodes)
        shuffled_links = list(graph.links)
        rnd.shuffle(shuffled_nodes)
        rnd.shuffle(shuffled_links)
        permuted = GraphSpec(nodes=shuffled_nodes, links=shuffled_links)
        assert permuted.routing() == baseline

    @given(graph_specs())
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    def test_routing_reaches_every_node_pair(self, graph):
        # Validation guarantees connectivity, so every (src, dst) pair must
        # have a next hop that is a declared neighbour of src.
        table = graph.routing()
        neighbours = {name: set() for name in graph.node_names()}
        for link in graph.links:
            neighbours[link.a].add(link.b)
            neighbours[link.b].add(link.a)
        for src in graph.node_names():
            for dst in graph.node_names():
                if src == dst:
                    continue
                assert table[src][dst] in neighbours[src]

    def test_unknown_graph_key_rejected_by_name(self):
        payload = graph_scenario(GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        )).to_dict()
        payload["graph"]["topology"] = "ring"
        with pytest.raises(SpecError, match="'topology'"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_node_key_rejected_by_name(self):
        payload = graph_scenario(GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        )).to_dict()
        payload["graph"]["nodes"][0]["role"] = "gateway"
        with pytest.raises(SpecError, match="'role'"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_graph_link_key_rejected_by_name(self):
        payload = graph_scenario(GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        )).to_dict()
        payload["graph"]["links"][0]["rate_schedule"] = [[1.0, 2e6]]
        with pytest.raises(SpecError, match="'rate_schedule'"):
            ScenarioSpec.from_dict(payload)


class TestWorkloadSpecProperties:
    @given(workload_specs())
    @settings(deadline=None, max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    def test_valid_workloads_round_trip_byte_identically(self, workload):
        spec = ScenarioSpec(
            name="prop",
            hosts=[HostSpec(name="a"), HostSpec(name="b")],
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
            workloads=[workload],
            stop=StopSpec(until=1.0),
        )
        spec.validate()
        first = canonical(spec.to_dict())
        reparsed = ScenarioSpec.from_dict(json.loads(first))
        reparsed.validate()
        assert canonical(reparsed.to_dict()) == first

    def test_unknown_workload_key_rejected_by_name(self):
        spec = ScenarioSpec(
            name="prop",
            hosts=[HostSpec(name="a"), HostSpec(name="b")],
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
            workloads=[WorkloadSpec(kind="tcp_flows", host="a", peer="b")],
            stop=StopSpec(until=1.0),
        )
        payload = spec.to_dict()
        payload["workloads"][0]["burstiness"] = 2.0
        with pytest.raises(SpecError, match="'burstiness'"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_workload_param_rejected_by_name(self):
        spec = WorkloadSpec(kind="tcp_flows", host="a", peer="b",
                            params={"flowrate": 3.0})
        with pytest.raises(SpecError, match="'flowrate'"):
            spec.validate("workloads[0]", ["a", "b"])


class TestShortestPathProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=100)),
        min_size=1, max_size=30,
    ))
    @settings(deadline=None, max_examples=60)
    def test_next_hop_tables_are_edge_order_independent(self, triples):
        edges = {}
        for i, j, d in triples:
            if i == j:
                continue
            a, b = f"v{i}", f"v{j}"
            edges[(a, b)] = d / 1000.0
            edges[(b, a)] = d / 1000.0
        if not edges:
            return
        forward = shortest_path_next_hops(edges)
        reversed_insertion = dict(reversed(list(edges.items())))
        assert shortest_path_next_hops(reversed_insertion) == forward
