"""Spec-tree validation and JSON round-tripping for the scenario layer."""

import pytest

from repro.scenario import (
    AppSpec,
    DumbbellSpec,
    HostSpec,
    LinkSpec,
    PRESETS,
    ScenarioSpec,
    SpecError,
    StopSpec,
    get_preset,
    known_applications,
    validate_params,
)


def minimal_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="minimal",
        hosts=[HostSpec(name="a"), HostSpec(name="b")],
        links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01)],
        stop=StopSpec(until=1.0),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_minimal_spec_validates(self):
        minimal_spec().validate()

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            minimal_spec(name="").validate()

    def test_no_hosts_rejected(self):
        with pytest.raises(SpecError, match="at least one host"):
            ScenarioSpec(name="x").validate()

    def test_duplicate_host_name_rejected(self):
        spec = minimal_spec(hosts=[HostSpec(name="a"), HostSpec(name="a")])
        with pytest.raises(SpecError, match="duplicate host name"):
            spec.validate()

    def test_duplicate_addr_rejected(self):
        spec = minimal_spec(
            hosts=[HostSpec(name="a", addr="10.0.0.1"), HostSpec(name="b", addr="10.0.0.1")]
        )
        with pytest.raises(SpecError, match="duplicate address"):
            spec.validate()

    def test_explicit_addr_colliding_with_generated_default_rejected(self):
        # Host 0 defaults to 10.1.0.1; an explicit 10.1.0.1 elsewhere would
        # silently merge the two hosts' routing.
        spec = minimal_spec(
            hosts=[HostSpec(name="a"), HostSpec(name="b", addr="10.1.0.1")]
        )
        with pytest.raises(SpecError, match="duplicate address '10.1.0.1'"):
            spec.validate()

    def test_link_to_unknown_host_names_known_hosts(self):
        spec = minimal_spec(links=[LinkSpec(a="a", b="nowhere", rate_bps=1e6, delay=0.01)])
        with pytest.raises(SpecError, match="unknown host 'nowhere'.*declared hosts: a, b"):
            spec.validate()

    def test_self_link_rejected(self):
        spec = minimal_spec(links=[LinkSpec(a="a", b="a", rate_bps=1e6, delay=0.01)])
        with pytest.raises(SpecError, match="endpoints must differ"):
            spec.validate()

    def test_loss_rate_range_checked(self):
        spec = minimal_spec(links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01, loss_rate=1.5)])
        with pytest.raises(SpecError, match=r"loss_rate: must be <= 1"):
            spec.validate()

    def test_rate_schedule_must_increase(self):
        spec = minimal_spec(
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01,
                            rate_schedule=((5.0, 1e6), (2.0, 2e6)))]
        )
        with pytest.raises(SpecError, match="strictly increasing"):
            spec.validate()

    def test_unknown_controller_rejected(self):
        spec = minimal_spec(hosts=[HostSpec(name="a", cm_controller="vegas"), HostSpec(name="b")])
        with pytest.raises(SpecError, match="unknown controller 'vegas'"):
            spec.validate()

    def test_dumbbell_and_hosts_are_exclusive(self):
        spec = minimal_spec(
            dumbbell=DumbbellSpec(n_pairs=1, bottleneck_bps=1e6, bottleneck_delay=0.01)
        )
        with pytest.raises(SpecError, match="dumbbell"):
            spec.validate()

    def test_dumbbell_cm_sender_index_checked(self):
        spec = ScenarioSpec(
            name="bell",
            dumbbell=DumbbellSpec(n_pairs=2, bottleneck_bps=1e6, bottleneck_delay=0.01,
                                  cm_senders=(5,)),
        )
        with pytest.raises(SpecError, match="out of range"):
            spec.validate()

    def test_dumbbell_generates_host_names(self):
        spec = ScenarioSpec(
            name="bell",
            dumbbell=DumbbellSpec(n_pairs=2, bottleneck_bps=1e6, bottleneck_delay=0.01),
        )
        assert spec.host_names() == ["sender0", "sender1", "receiver0", "receiver1"]

    def test_cm_and_costs_must_be_booleans(self):
        spec = minimal_spec(hosts=[HostSpec(name="a", cm="no"), HostSpec(name="b")])
        with pytest.raises(SpecError, match=r"hosts\[0\].cm: must be a boolean"):
            spec.validate()
        spec = minimal_spec(hosts=[HostSpec(name="a", costs="false"), HostSpec(name="b")])
        with pytest.raises(SpecError, match=r"hosts\[0\].costs: must be a boolean"):
            spec.validate()

    def test_duplicate_app_labels_rejected(self):
        spec = minimal_spec(apps=[
            AppSpec(app="tcp_listener", host="b", label="L", params={"port": 80}),
            AppSpec(app="tcp_listener", host="b", label="L", params={"port": 81}),
        ])
        with pytest.raises(SpecError, match=r"apps\[1\].label: duplicate label 'L'"):
            spec.validate()

    def test_unknown_metric_group_rejected(self):
        with pytest.raises(SpecError, match="unknown metric group"):
            minimal_spec(metrics=("apps", "quarks")).validate()

    def test_stop_until_must_be_positive(self):
        with pytest.raises(SpecError, match="stop.until"):
            minimal_spec(stop=StopSpec(until=0.0)).validate()


class TestAppValidation:
    def test_unknown_app_lists_registry(self):
        spec = minimal_spec(apps=[AppSpec(app="quake", host="a")])
        with pytest.raises(SpecError, match="unknown application 'quake'.*registered:"):
            spec.validate()

    def test_app_on_unknown_host_rejected(self):
        spec = minimal_spec(apps=[AppSpec(app="tcp_listener", host="z", params={"port": 80})])
        with pytest.raises(SpecError, match="unknown host 'z'"):
            spec.validate()

    def test_missing_peer_rejected(self):
        spec = minimal_spec(apps=[
            AppSpec(app="tcp_sender", host="a", params={"port": 80, "transfer_bytes": 1000}),
        ])
        with pytest.raises(SpecError, match="needs a peer host"):
            spec.validate()

    def test_unknown_param_is_actionable(self):
        with pytest.raises(SpecError, match="unknown parameter 'prot'.*valid parameters:"):
            validate_params("tcp_listener", {"port": 80, "prot": "tcp"})

    def test_missing_required_param_rejected(self):
        with pytest.raises(SpecError, match="params.port: required parameter"):
            validate_params("tcp_listener", {})

    def test_wrong_param_type_rejected(self):
        with pytest.raises(SpecError, match="expected int, got str"):
            validate_params("tcp_listener", {"port": "eighty"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecError, match="expected int, got"):
            validate_params("tcp_listener", {"port": True})

    def test_param_choices_enforced(self):
        with pytest.raises(SpecError, match="must be one of"):
            validate_params("tcp_sender", {"port": 80, "transfer_bytes": 10, "variant": "cubic"})

    def test_int_accepted_where_float_declared(self):
        params = validate_params("web_client", {"spacing": 1})
        assert params["spacing"] == 1.0 and isinstance(params["spacing"], float)

    def test_nullable_param_accepts_null(self):
        params = validate_params("ack_reflector", {"port": 1, "ack_delay": None})
        assert params["ack_delay"] is None

    def test_defaults_applied(self):
        params = validate_params("tcp_listener", {"port": 80})
        assert params == {"port": 80, "delayed_acks": True}


def ge_loss(**overrides):
    block = {"kind": "gilbert_elliott", "p_good_bad": 0.05, "p_bad_good": 0.3}
    block.update(overrides)
    return block


def red_aqm(**overrides):
    block = {"kind": "red", "min_th": 5, "max_th": 15}
    block.update(overrides)
    return block


def realism_link(**overrides) -> LinkSpec:
    fields = dict(a="a", b="b", rate_bps=1e6, delay=0.01)
    fields.update(overrides)
    return LinkSpec(**fields)


class TestLinkRealismBlocks:
    def test_loss_and_aqm_blocks_validate(self):
        minimal_spec(links=[realism_link(loss=ge_loss(), aqm=red_aqm())]).validate()

    def test_unknown_loss_kind_rejected(self):
        spec = minimal_spec(links=[realism_link(loss=ge_loss(kind="rayleigh"))])
        with pytest.raises(SpecError, match="unknown loss model 'rayleigh'"):
            spec.validate()

    def test_unknown_loss_key_rejected_by_name(self):
        spec = minimal_spec(links=[realism_link(loss=ge_loss(burstiness=3))])
        with pytest.raises(SpecError, match=r"loss: unknown key 'burstiness'"):
            spec.validate()

    def test_loss_transition_probabilities_range_checked(self):
        with pytest.raises(SpecError, match=r"loss\.p_good_bad: must be > 0"):
            minimal_spec(links=[realism_link(loss=ge_loss(p_good_bad=0.0))]).validate()
        with pytest.raises(SpecError, match=r"loss\.p_bad_good: must be <= 1"):
            minimal_spec(links=[realism_link(loss=ge_loss(p_bad_good=1.5))]).validate()
        with pytest.raises(SpecError, match=r"loss\.loss_good: must be < 1"):
            minimal_spec(links=[realism_link(loss=ge_loss(loss_good=1.0))]).validate()

    def test_loss_block_missing_required_key_rejected(self):
        spec = minimal_spec(links=[realism_link(
            loss={"kind": "gilbert_elliott", "p_good_bad": 0.05})])
        with pytest.raises(SpecError, match=r"loss\.p_bad_good: is required"):
            spec.validate()

    def test_loss_model_and_bernoulli_loss_rate_are_exclusive(self):
        spec = minimal_spec(links=[realism_link(loss=ge_loss(), loss_rate=0.1)])
        with pytest.raises(SpecError, match="must stay 0 when a loss model"):
            spec.validate()

    def test_unknown_aqm_kind_rejected(self):
        spec = minimal_spec(links=[realism_link(aqm=red_aqm(kind="codel"))])
        with pytest.raises(SpecError, match="unknown aqm 'codel'"):
            spec.validate()

    def test_aqm_thresholds_must_be_ordered(self):
        spec = minimal_spec(links=[realism_link(aqm=red_aqm(min_th=15, max_th=15))])
        with pytest.raises(SpecError, match=r"aqm\.max_th: must be > min_th"):
            spec.validate()

    def test_aqm_and_legacy_ecn_threshold_are_exclusive(self):
        spec = minimal_spec(links=[realism_link(aqm=red_aqm(), ecn_threshold=10)])
        with pytest.raises(SpecError, match="must stay unset when an aqm"):
            spec.validate()

    def test_graph_links_take_the_same_blocks(self):
        from repro.scenario import GraphLinkSpec, GraphNodeSpec, GraphSpec

        graph = GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01,
                                 loss=ge_loss(), aqm=red_aqm())],
        )
        ScenarioSpec(name="g", graph=graph, stop=StopSpec(until=1.0)).validate()
        bad = GraphSpec(
            nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
            links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01,
                                 loss=ge_loss(p_good_bad=2.0))],
        )
        with pytest.raises(SpecError, match=r"p_good_bad: must be <= 1"):
            ScenarioSpec(name="g", graph=bad, stop=StopSpec(until=1.0)).validate()

    def test_blocks_round_trip_and_are_omitted_when_absent(self):
        spec = minimal_spec(links=[realism_link(loss=ge_loss(), aqm=red_aqm())])
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.links[0].loss == ge_loss()
        # Pre-existing specs must render (and digest) exactly as before the
        # blocks were introduced.
        plain = minimal_spec().to_dict()
        assert "loss" not in plain["links"][0]
        assert "aqm" not in plain["links"][0]

    def test_blocks_change_the_spec_digest(self):
        from repro.scenario.runner import spec_digest

        plain = minimal_spec()
        lossy = minimal_spec(links=[realism_link(loss=ge_loss())])
        tweaked = minimal_spec(links=[realism_link(loss=ge_loss(p_good_bad=0.1))])
        digests = {spec_digest(spec) for spec in (plain, lossy, tweaked)}
        assert len(digests) == 3


class TestRoundTrip:
    def test_from_dict_rejects_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown key 'topology'.*valid keys:"):
            ScenarioSpec.from_dict({"name": "x", "topology": []})

    def test_from_dict_rejects_unknown_nested_key(self):
        data = minimal_spec().to_dict()
        data["hosts"][0]["cpu"] = 2
        with pytest.raises(SpecError, match=r"hosts\[0\]: unknown key 'cpu'"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_rejects_unknown_link_key(self):
        data = minimal_spec().to_dict()
        data["links"][0]["bandwidth"] = 1e6
        with pytest.raises(SpecError, match=r"links\[0\]: unknown key 'bandwidth'"):
            ScenarioSpec.from_dict(data)

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_validate_and_round_trip(self, name):
        spec = get_preset(name)
        spec.validate()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        clone.validate()
        assert clone.to_dict() == spec.to_dict()

    def test_from_dict_rejects_string_metrics(self):
        data = minimal_spec().to_dict()
        data["metrics"] = "apps"  # would otherwise explode into characters
        with pytest.raises(SpecError, match="metrics: expected a list"):
            ScenarioSpec.from_dict(data)

    def test_malformed_rate_schedule_step_gets_spec_error_not_type_error(self):
        data = minimal_spec().to_dict()
        # A user forgetting the nested pair list is a SpecError with a path,
        # not a raw TypeError from tuple-izing a float.
        data["links"][0]["rate_schedule"] = [6.0, 4e6]
        with pytest.raises(SpecError, match=r"rate_schedule\[0\].*pair"):
            ScenarioSpec.from_dict(data).validate()

    def test_round_trip_preserves_rate_schedule(self):
        spec = minimal_spec(
            links=[LinkSpec(a="a", b="b", rate_bps=1e6, delay=0.01,
                            rate_schedule=((1.0, 2e6), (2.0, 3e6)))]
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.links[0].rate_schedule == ((1.0, 2e6), (2.0, 3e6))


class TestValidationCacheSoundness:
    """The content-keyed validation memo must never change an outcome."""

    def test_cache_hit_skips_rewalk_but_same_result(self):
        a = minimal_spec()
        b = minimal_spec()
        assert a.validate() is a
        assert b.validate() is b  # served from the cache, equally valid

    def test_int_float_confusion_never_shares_a_slot(self):
        # seed=1 is valid; seed=1.0 must still raise even though 1 == 1.0
        # would otherwise collide in the cache key.
        minimal_spec(seed=1).validate()
        with pytest.raises(SpecError, match="seed"):
            minimal_spec(seed=1.0).validate()

    def test_bool_int_confusion_never_shares_a_slot(self):
        # stop.until=1 is a valid number; True == 1 but bools are rejected
        # by _check_number and must not reuse the cached success.
        minimal_spec(stop=StopSpec(until=1)).validate()
        with pytest.raises(SpecError, match="until"):
            minimal_spec(stop=StopSpec(until=True)).validate()

    def test_params_cache_keeps_int_param_strict(self):
        validate_params("tcp_listener", {"port": 5001})
        with pytest.raises(SpecError, match="port"):
            validate_params("tcp_listener", {"port": 5001.0})

    def test_specs_differing_only_in_workload_params_never_collide(self):
        # Regression: the memo key predates the workloads block; if the key
        # omitted it, validating a good spec would let an otherwise-equal
        # spec with *invalid* workload params sail through on the cache hit.
        from repro.scenario import WorkloadSpec

        def spec_with(rate):
            return minimal_spec(workloads=[WorkloadSpec(
                kind="tcp_flows", host="a", peer="b", params={"rate": rate})])

        spec_with(2.0).validate()
        with pytest.raises(SpecError, match="rate"):
            spec_with("fast").validate()
        # And two valid-but-different workload params get distinct results.
        spec = spec_with(3.5)
        spec.validate()
        assert spec.workloads[0].normalized_params()["rate"] == 3.5

    def test_specs_differing_only_in_graph_never_collide(self):
        from repro.scenario import GraphLinkSpec, GraphNodeSpec, GraphSpec

        def graph_spec(delay):
            return ScenarioSpec(
                name="memo_graph",
                graph=GraphSpec(
                    nodes=[GraphNodeSpec(name="a"), GraphNodeSpec(name="b")],
                    links=[GraphLinkSpec(a="a", b="b", rate_bps=1e6, delay=delay)],
                ),
                stop=StopSpec(until=1.0),
            )

        graph_spec(0.01).validate()
        with pytest.raises(SpecError, match="delay"):
            graph_spec(-0.5).validate()

    def test_reregistered_application_invalidates_cached_params(self):
        from repro.scenario.applications import APPLICATIONS, Param, register_application
        from repro.scenario.applications import Application

        class FakeApp(Application):
            name = "cache_fake"
            PARAMS = {"n": Param(int, default=1)}

        register_application(FakeApp)
        try:
            spec = minimal_spec(apps=[AppSpec(app="cache_fake", host="a")])
            spec.validate()
            assert spec.apps[0].normalized_params() == {"n": 1}

            class FakeApp2(Application):
                name = "cache_fake"
                PARAMS = {"n": Param(int, default=99)}

            register_application(FakeApp2)
            spec2 = minimal_spec(apps=[AppSpec(app="cache_fake", host="a")])
            spec2.validate()
            assert spec2.apps[0].normalized_params() == {"n": 99}
        finally:
            APPLICATIONS.pop("cache_fake", None)

    def test_sealed_spec_rejects_mutation_and_revalidates_free(self):
        from repro.experiments.topology import dummynet_pair_spec

        spec = dummynet_pair_spec(loss_rate=0.01)
        assert spec.validate() is spec
        with pytest.raises(SpecError, match="sealed"):
            spec.seed = 5
        with pytest.raises(SpecError, match="sealed"):
            spec.links[0].loss_rate = 0.5
        # The factory hands back the same sealed instance per parameter set.
        assert dummynet_pair_spec(loss_rate=0.01) is spec
        assert dummynet_pair_spec(loss_rate=0.02) is not spec


def test_registry_covers_all_app_layers():
    """Every workload family from the paper is registered."""
    names = known_applications()
    for expected in ("bulk", "web_server", "web_client", "vat", "layered_streaming",
                     "udp_api", "tcp_api", "tcp_sender", "tcp_listener", "ack_reflector"):
        assert expected in names
