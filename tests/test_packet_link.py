"""Unit tests for packets, links and traces."""

import pytest

from repro.netsim import (GilbertElliottLoss, Link, Packet, PacketTrace,
                          RateTracker, RedQueue, Simulator, make_aqm,
                          make_loss_model)
from repro.netsim.packet import (
    DEFAULT_MSS,
    DEFAULT_MTU,
    IP_HEADER_BYTES,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)


def make_packet(payload=1000, protocol=PROTO_UDP, **kwargs):
    return Packet(src="a", dst="b", sport=1, dport=2, protocol=protocol,
                  payload_bytes=payload, **kwargs)


class TestPacket:
    def test_udp_size_includes_headers(self):
        packet = make_packet(1000, PROTO_UDP)
        assert packet.size == 1000 + IP_HEADER_BYTES + UDP_HEADER_BYTES

    def test_tcp_size_includes_headers(self):
        packet = make_packet(1000, PROTO_TCP)
        assert packet.size == 1000 + IP_HEADER_BYTES + TCP_HEADER_BYTES

    def test_default_mss_derived_from_mtu(self):
        assert DEFAULT_MSS == DEFAULT_MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES

    def test_flow_key(self):
        packet = make_packet()
        assert packet.flow_key == ("a", "b", 1, 2, PROTO_UDP)

    def test_reply_template_swaps_endpoints(self):
        reply = make_packet().reply_template()
        assert (reply.src, reply.dst, reply.sport, reply.dport) == ("b", "a", 2, 1)
        assert reply.payload_bytes == 0

    def test_packet_ids_unique(self):
        assert make_packet().packet_id != make_packet().packet_id

    def test_headers_default_independent(self):
        p1, p2 = make_packet(), make_packet()
        p1.headers["seq"] = 1
        assert "seq" not in p2.headers


class TestLink:
    def make_link(self, sim, **kwargs):
        received = []
        defaults = dict(rate_bps=8e6, delay=0.01, queue_limit=4, seed=1)
        defaults.update(kwargs)
        link = Link(sim, **defaults)
        link.attach(received.append)
        return link, received

    def test_delivery_includes_serialisation_and_propagation(self):
        sim = Simulator()
        link, received = self.make_link(sim, rate_bps=8e6, delay=0.01)
        packet = make_packet(payload=972)  # 1000 bytes on the wire
        link.send(packet)
        sim.run()
        # 1000 bytes at 8 Mbps = 1 ms serialisation + 10 ms propagation.
        assert sim.now == pytest.approx(0.011, abs=1e-6)
        assert received == [packet]

    def test_fifo_ordering(self):
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=10)
        packets = [make_packet(100) for _ in range(5)]
        for p in packets:
            link.send(p)
        sim.run()
        assert received == packets

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=2)
        outcomes = [link.send(make_packet(1000)) for _ in range(5)]
        sim.run()
        # One in transmission + two queued accepted; the rest dropped.
        assert outcomes.count(True) == 3
        assert link.stats.dropped_overflow == 2
        assert len(received) == 3

    def test_random_loss_reproducible(self):
        sim = Simulator()
        link_a, _ = self.make_link(sim, loss_rate=0.5, seed=42, queue_limit=1000)
        outcomes_a = [link_a.send(make_packet(10)) for _ in range(50)]
        sim2 = Simulator()
        link_b, _ = self.make_link(sim2, loss_rate=0.5, seed=42, queue_limit=1000)
        outcomes_b = [link_b.send(make_packet(10)) for _ in range(50)]
        assert outcomes_a == outcomes_b
        assert link_a.stats.dropped_random > 0

    def test_zero_loss_drops_nothing_randomly(self):
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=1000)
        for _ in range(20):
            link.send(make_packet(10))
        sim.run()
        assert link.stats.dropped_random == 0
        assert len(received) == 20

    def test_ecn_marks_instead_of_dropping(self):
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=50, ecn_threshold=2)
        for _ in range(6):
            link.send(make_packet(1000, ecn_capable=True))
        sim.run()
        assert link.stats.ecn_marked > 0
        assert any(p.ecn_marked for p in received)
        assert len(received) == 6

    def test_full_queue_drop_is_not_ecn_marked(self):
        # Boundary regression: queue_length == queue_limit == ecn_threshold.
        # A packet the full queue is about to drop must not be ECN-marked
        # (or counted in stats.ecn_marked) on its way out — marking happens
        # *instead of* dropping, never as well as.
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=2, ecn_threshold=2)
        for _ in range(3):  # one transmitting + two queued -> queue_length == 2
            assert link.send(make_packet(1000, ecn_capable=True))
        overflow = make_packet(1000, ecn_capable=True)
        assert not link.send(overflow)
        assert link.stats.dropped_overflow == 1
        assert overflow.ecn_marked is False
        assert link.stats.ecn_marked == 0
        sim.run()
        assert link.stats.ecn_marked == sum(1 for p in received if p.ecn_marked)

    def test_mean_queue_delay_counts_transmitted_packets(self):
        # queue_delay_total accumulates at transmission *start*; the mean
        # must divide by the matching dequeued count, not by deliveries —
        # packets still propagating at simulation end would otherwise
        # inflate (or here, zero out) the reported delay.
        sim = Simulator()
        link, received = self.make_link(sim, rate_bps=8e6, delay=10.0, queue_limit=10)
        for _ in range(3):
            link.send(make_packet(972))  # 1000 bytes -> 1 ms serialisation
        sim.run(until=0.01)  # all three transmitted, none delivered yet
        assert received == []
        assert link.stats.delivered_packets == 0
        assert link.stats.dequeued_packets == 3
        # Queue waits were 0, 1 and 2 ms -> mean 1 ms.
        assert link.stats.mean_queue_delay() == pytest.approx(0.001)

    def test_non_ecn_packets_not_marked(self):
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=50, ecn_threshold=1)
        for _ in range(4):
            link.send(make_packet(1000, ecn_capable=False))
        sim.run()
        assert link.stats.ecn_marked == 0
        assert not any(p.ecn_marked for p in received)

    def test_drop_hook_invoked(self):
        sim = Simulator()
        link, _ = self.make_link(sim, queue_limit=1)
        drops = []
        link.on_drop(lambda packet, reason: drops.append(reason))
        for _ in range(4):
            link.send(make_packet(1000))
        assert "overflow" in drops

    def test_stats_delivered_bytes(self):
        sim = Simulator()
        link, _ = self.make_link(sim, queue_limit=10)
        packet = make_packet(500)
        link.send(packet)
        sim.run()
        assert link.stats.delivered_packets == 1
        assert link.stats.delivered_bytes == packet.size

    def test_utilization_bounded(self):
        sim = Simulator()
        link, _ = self.make_link(sim, queue_limit=100)
        for _ in range(10):
            link.send(make_packet(1000))
        sim.run()
        assert 0.0 < link.stats.utilization(sim.now) <= 1.0

    def test_send_without_receiver_raises(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, delay=0.0)
        with pytest.raises(RuntimeError):
            link.send(make_packet())

    @pytest.mark.parametrize("kwargs", [
        {"rate_bps": 0}, {"rate_bps": -1}, {"delay": -0.1}, {"loss_rate": 1.0}, {"loss_rate": -0.2},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        sim = Simulator()
        defaults = dict(rate_bps=1e6, delay=0.01)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            Link(sim, **defaults)

    def test_transmission_time(self):
        sim = Simulator()
        link, _ = self.make_link(sim, rate_bps=1e6)
        packet = make_packet(972)  # 1000 total bytes
        assert link.transmission_time(packet) == pytest.approx(0.008)

    def test_queue_limit_zero_idle_link_accepts(self):
        # Regression: queue_limit bounds *waiting* packets only — the packet
        # being serialised does not count — so an idle link with
        # queue_limit=0 must accept a packet and start transmitting it
        # immediately.  A second packet offered while the first serialises
        # finds a zero-capacity queue and is dropped.
        sim = Simulator()
        link, received = self.make_link(sim, queue_limit=0)
        first = make_packet(972)  # 1 ms serialisation at 8 Mbps
        assert link.send(first)
        assert not link.send(make_packet(972))  # busy, queue full at 0
        assert link.stats.dropped_overflow == 1
        sim.run()
        assert received == [first]
        assert sim.now == pytest.approx(0.011, abs=1e-6)
        # Idle again: the next packet is accepted too.
        assert link.send(make_packet(972))
        sim.run()
        assert len(received) == 2

    def test_lowering_delay_mid_flight_keeps_fifo(self):
        # Regression for the mid-run delay-reschedule hazard: the service
        # can lower ``delay`` while packets are propagating.  The change
        # must only apply to packets entering propagation afterwards — and
        # even then a later packet must not overtake (and be swapped with)
        # one already on the wire.
        sim = Simulator()
        link, received = self.make_link(sim, rate_bps=8e6, delay=0.01,
                                        queue_limit=10)
        p1 = make_packet(972)  # 1 ms serialisation each
        p2 = make_packet(972)
        link.send(p1)
        link.send(p2)
        arrivals = []
        orig_receiver = link._receiver
        link.attach(lambda packet: (arrivals.append((sim.now, packet)),
                                    orig_receiver(packet))[-1])
        # p1 enters propagation at 1 ms (due 11 ms); lower delay at 1.5 ms,
        # while p1 is on the wire and p2 is still serialising.
        def patch():
            link.delay = 0.001
        sim.schedule(0.0015, patch)
        sim.run()
        # Order preserved: p1 first, at its original 11 ms arrival.  p2
        # finished serialising at 2 ms; its nominal 3 ms arrival would
        # overtake p1, so it is clamped to p1's delivery time.
        assert [p for _, p in arrivals] == [p1, p2]
        assert arrivals[0][0] == pytest.approx(0.011, abs=1e-6)
        assert arrivals[1][0] == pytest.approx(0.011, abs=1e-6)
        # A packet sent once the wire is clear gets the new, lower delay.
        p3 = make_packet(972)
        link.send(p3)
        sim.run()
        assert arrivals[-1][1] is p3
        assert arrivals[-1][0] == pytest.approx(0.011 + 0.002, abs=1e-6)


class TestGilbertElliott:
    def make_link(self, sim, **kwargs):
        received = []
        # Unbounded queue: these tests offer thousands of packets at t=0 and
        # only study the loss process, not drop-tail behaviour.
        defaults = dict(rate_bps=8e6, delay=0.01, queue_limit=None, seed=7)
        defaults.update(kwargs)
        link = Link(sim, **defaults)
        link.attach(received.append)
        return link, received

    def test_losses_are_bursty(self):
        # Mean burst length 1/p_bad_good = 10 packets: drops must cluster
        # into far fewer runs than the same loss mass would under Bernoulli.
        sim = Simulator()
        model = {"kind": "gilbert_elliott", "p_good_bad": 0.02, "p_bad_good": 0.1}
        link, received = self.make_link(sim, loss_model=model)
        outcomes = [link.send(make_packet(10)) for _ in range(2000)]
        dropped = outcomes.count(False)
        assert dropped > 50
        assert link.stats.dropped_random == dropped
        runs = sum(1 for i, ok in enumerate(outcomes)
                   if not ok and (i == 0 or outcomes[i - 1]))
        assert runs * 3 < dropped  # mean run length well above 1

    def test_long_run_loss_rate_matches_stationary_distribution(self):
        sim = Simulator()
        model = {"kind": "gilbert_elliott", "p_good_bad": 0.05, "p_bad_good": 0.2}
        link, _ = self.make_link(sim, loss_model=model)
        outcomes = [link.send(make_packet(10)) for _ in range(20000)]
        # Stationary bad-state probability = p_gb / (p_gb + p_bg) = 0.2.
        rate = outcomes.count(False) / len(outcomes)
        assert 0.15 < rate < 0.25

    def test_reproducible_per_seed(self):
        results = []
        for _ in range(2):
            sim = Simulator()
            model = {"kind": "gilbert_elliott", "p_good_bad": 0.1, "p_bad_good": 0.3}
            link, _ = self.make_link(sim, seed=99, loss_model=model)
            results.append([link.send(make_packet(10)) for _ in range(500)])
        assert results[0] == results[1]

    def test_mapping_config_builds_fresh_instances(self):
        sim = Simulator()
        config = {"kind": "gilbert_elliott", "p_good_bad": 0.1, "p_bad_good": 0.3}
        link_a, _ = self.make_link(sim, loss_model=config)
        link_b, _ = self.make_link(sim, loss_model=config)
        assert isinstance(link_a.loss_model, GilbertElliottLoss)
        assert link_a.loss_model is not link_b.loss_model

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_loss_model({"kind": "nope"})

    @pytest.mark.parametrize("kwargs", [
        {"p_good_bad": 0.0, "p_bad_good": 0.5},
        {"p_good_bad": 1.5, "p_bad_good": 0.5},
        {"p_good_bad": 0.5, "p_bad_good": 0.0},
        {"p_good_bad": 0.5, "p_bad_good": 0.5, "loss_good": 1.0},
        {"p_good_bad": 0.5, "p_bad_good": 0.5, "loss_bad": 1.5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GilbertElliottLoss(**kwargs)


class TestRedQueue:
    def make_link(self, sim, **kwargs):
        received = []
        defaults = dict(rate_bps=8e5, delay=0.01, queue_limit=1000, seed=3,
                        aqm={"kind": "red", "min_th": 5, "max_th": 15})
        defaults.update(kwargs)
        link = Link(sim, **defaults)
        link.attach(received.append)
        return link, received

    def test_below_min_th_accepts_everything(self):
        sim = Simulator()
        link, received = self.make_link(sim)
        for _ in range(4):  # occupancy never crosses min_th
            assert link.send(make_packet(1000))
        sim.run()
        assert link.stats.dropped_random == 0
        assert link.stats.ecn_marked == 0
        assert len(received) == 4

    def test_sustained_overload_gates_packets(self):
        sim = Simulator()
        link, received = self.make_link(sim)
        sent = 0
        def offer():
            nonlocal sent
            if sent < 400:
                link.send(make_packet(1000))
                sent += 1
                # 1000 bytes at 0.8 Mbps serialise in 10 ms; offering every
                # 2 ms overloads the link 5x so the average queue climbs
                # through both RED thresholds.
                sim.schedule(0.002, offer)
        offer()
        sim.run()
        # Non-ECN packets: RED drops, never marks.
        assert link.stats.dropped_random > 0
        assert link.stats.ecn_marked == 0

    def test_ecn_capable_marked_instead_of_dropped(self):
        sim = Simulator()
        link, received = self.make_link(sim)
        sent = 0
        def offer():
            nonlocal sent
            if sent < 400:
                link.send(make_packet(1000, ecn_capable=True))
                sent += 1
                sim.schedule(0.002, offer)
        offer()
        sim.run()
        assert link.stats.ecn_marked > 0
        assert link.stats.dropped_random == 0
        assert any(p.ecn_marked for p in received)

    def test_average_tracks_ewma_not_instantaneous(self):
        red = RedQueue(min_th=5, max_th=15, w_q=0.002)
        import random as _random
        rng = _random.Random(1)
        # One huge instantaneous burst must not trip the gate: the EWMA
        # moves by w_q per arrival.
        assert red.should_gate(rng, 100, 0.0, 8e6) is False
        assert red.avg == pytest.approx(0.2)

    def test_idle_decay_shrinks_average(self):
        red = RedQueue(min_th=5, max_th=15, w_q=0.01, mean_packet_bytes=1000)
        import random as _random
        rng = _random.Random(1)
        for i in range(2000):
            red.should_gate(rng, 20, i * 0.001, 8e6)
        avg_before = red.avg
        assert avg_before > 5
        red.should_gate(rng, 0, 10.0, 8e6)  # ~8 s idle at 1 ms/slot
        assert red.avg < avg_before * 0.01

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_aqm({"kind": "codel", "min_th": 1, "max_th": 2})

    @pytest.mark.parametrize("kwargs", [
        {"min_th": 0, "max_th": 10},
        {"min_th": 5, "max_th": 5},
        {"min_th": 5, "max_th": 15, "max_p": 0.0},
        {"min_th": 5, "max_th": 15, "max_p": 1.5},
        {"min_th": 5, "max_th": 15, "w_q": 0.0},
        {"min_th": 5, "max_th": 15, "mean_packet_bytes": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RedQueue(**kwargs)


class TestTrace:
    def test_packet_trace_filters_by_kind(self):
        trace = PacketTrace()
        trace.log(0.0, "send", "a", "b", 100)
        trace.log(0.1, "recv", "a", "b", 100)
        trace.log(0.2, "send", "a", "b", 50)
        assert len(trace) == 3
        assert len(trace.events("send")) == 2
        assert trace.bytes_between(0.0, 0.3, kind="recv") == 100

    def test_rate_tracker_series(self):
        tracker = RateTracker(bin_width=1.0)
        tracker.record(0.2, 1000)
        tracker.record(0.7, 1000)
        tracker.record(2.5, 4000)
        series = tracker.series()
        assert series[0] == (0.0, 2000.0)
        assert series[1] == (1.0, 0.0)  # empty bins are reported as zero
        assert series[2] == (2.0, 4000.0)

    def test_rate_tracker_mean(self):
        tracker = RateTracker(bin_width=1.0)
        tracker.record(0.0, 100)
        tracker.record(1.0, 300)
        assert tracker.mean_rate() == pytest.approx(200.0)

    def test_rate_tracker_empty(self):
        tracker = RateTracker()
        assert tracker.series() == []
        assert tracker.mean_rate() == 0.0

    def test_rate_tracker_invalid_bin(self):
        with pytest.raises(ValueError):
            RateTracker(bin_width=0)
