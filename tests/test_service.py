"""The simulation service: control tick, job fleet, JSON API, HTTP smoke.

Most tests drive :class:`repro.service.api.ServiceApi` directly (no
sockets), mirroring how the flow-manager tests drive their router; one
end-to-end class exercises the real ThreadingHTTPServer on an ephemeral
port.
"""

import json
import threading
import time

import pytest

from repro.netsim.engine import SimulationError, Simulator
from repro.scenario import (
    AppSpec,
    HostSpec,
    LinkSpec,
    ScenarioSpec,
    SpecError,
    StopSpec,
    get_preset,
    run,
    run_streaming,
)
from repro.service import JobManager, JobNotLive, JobState, ServiceApi
from repro.service.jobs import STORE_SOURCE_PREFIX


def tiny_transfer_spec(**stop_overrides) -> ScenarioSpec:
    """Fast single-transfer scenario (ends early via when_apps_done)."""
    stop = dict(until=30.0, when_apps_done=True)
    stop.update(stop_overrides)
    return ScenarioSpec(
        name="svc_tiny",
        hosts=[HostSpec(name="tx", cm=True), HostSpec(name="rx")],
        links=[LinkSpec(a="tx", b="rx", rate_bps=8e6, delay=0.01, queue_limit=50)],
        apps=[
            AppSpec(app="tcp_listener", host="rx", label="sink", params={"port": 5001}),
            AppSpec(app="tcp_sender", host="tx", peer="rx", label="flow",
                    params={"variant": "cm", "port": 5001, "transfer_bytes": 200_000}),
        ],
        stop=StopSpec(**stop),
        metrics=("apps", "links", "hosts"),
        seed=3,
    )


def long_bulk_spec(until: float = 600.0) -> ScenarioSpec:
    """Sustained CM bulk traffic with a far horizon (for live inspection)."""
    spec = get_preset("bulk_macroflow_sharing")
    spec.stop.until = until
    spec.stop.when_apps_done = False
    return spec


def submit(api: ServiceApi, body: dict):
    return api.dispatch("POST", "/v1/jobs", json.dumps(body).encode())


def wait_running(job, min_sim_time: float = 1.0, timeout: float = 20.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if job.state == JobState.RUNNING and job.sim_time >= min_sim_time:
            return
        if job.finished:
            pytest.fail(f"job finished early: {job.state} {job.error}")
        time.sleep(0.01)
    pytest.fail(f"job never reached running/t>={min_sim_time}: {job.state}")


@pytest.fixture
def manager():
    mgr = JobManager(slots=4)
    yield mgr
    mgr.shutdown()


@pytest.fixture
def api(manager):
    return ServiceApi(manager)


# ====================================================================== #
# Engine: the injected periodic control event                            #
# ====================================================================== #
class TestControlTick:
    def test_fires_periodically_and_stops(self):
        sim = Simulator()
        ticks = []
        sim.start_control(0.5, lambda: ticks.append(sim.now))
        sim.at(10.0, lambda: None)
        sim.run(until=2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]
        sim.stop_control()
        sim.run(until=3.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                sim.stop_control()

        sim.start_control(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_rearm_after_stop(self):
        sim = Simulator()
        sim.start_control(1.0, lambda: None)
        sim.stop_control()
        sim.start_control(2.0, lambda: None)  # must not raise

    def test_double_arm_and_bad_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.start_control(0.0, lambda: None)
        sim.start_control(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.start_control(1.0, lambda: None)

    def test_idle_except_control(self):
        sim = Simulator()
        assert sim.idle_except_control()
        sim.start_control(1.0, lambda: None)
        assert sim.idle_except_control()  # only the control chain is pending
        handle = sim.at(5.0, lambda: None)
        assert not sim.idle_except_control()
        handle.cancel()
        assert sim.idle_except_control()

    def test_horizon_lands_exactly_with_control_armed(self):
        sim = Simulator()
        sim.start_control(0.3, lambda: None)
        sim.run(until=1.0)
        assert sim.now == 1.0


# ====================================================================== #
# Runner: run_streaming is the batch path plus hooks                     #
# ====================================================================== #
class TestRunStreaming:
    def test_hooked_run_is_byte_identical_when_apps_done(self):
        spec = tiny_transfer_spec()
        hooked = run_streaming(spec, seed=5, control_hook=lambda scenario: None,
                               progress_cb=lambda now, horizon: None)
        assert hooked.to_json() == run(spec, seed=5).to_json()

    def test_hooked_run_is_byte_identical_fixed_horizon(self):
        spec = tiny_transfer_spec(until=3.0, when_apps_done=False)
        hooked = run_streaming(spec, seed=5, control_hook=lambda scenario: None)
        assert hooked.to_json() == run(spec, seed=5).to_json()

    def test_progress_reports_are_monotone_and_complete(self):
        spec = tiny_transfer_spec(until=3.0, when_apps_done=False)
        reports = []
        run_streaming(spec, seed=1, progress_cb=lambda now, horizon: reports.append((now, horizon)))
        times = [now for now, _ in reports]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] == 3.0
        assert all(horizon == 3.0 for _, horizon in reports)

    def test_control_hook_sees_live_scenario(self):
        spec = tiny_transfer_spec(until=2.0, when_apps_done=False)
        seen = []
        run_streaming(spec, seed=1,
                      control_hook=lambda scenario: seen.append(scenario.sim.now))
        assert seen and seen == sorted(seen)

    def test_hook_exception_aborts_run(self):
        spec = tiny_transfer_spec(until=5.0, when_apps_done=False)

        class Abort(Exception):
            pass

        def hook(scenario):
            if scenario.sim.now >= 1.0:
                raise Abort()

        with pytest.raises(Abort):
            run_streaming(spec, seed=1, control_hook=hook)


# ====================================================================== #
# JobManager: lifecycle, concurrency, mailbox, store                     #
# ====================================================================== #
class TestJobManager:
    def test_result_byte_identical_to_batch(self, manager):
        spec = tiny_transfer_spec()
        job = manager.submit(spec, seed=7)
        manager.wait(job.id)
        assert job.state == JobState.DONE
        assert job.result.to_json() == run(spec, seed=7).to_json()

    def test_four_concurrent_jobs_all_byte_identical(self, manager):
        spec = tiny_transfer_spec()
        jobs = [manager.submit(spec, seed=seed) for seed in (1, 2, 3, 4)]
        for job in jobs:
            manager.wait(job.id)
            assert job.state == JobState.DONE
        for job in jobs:
            assert job.result.to_json() == run(spec, seed=job.seed).to_json()

    def test_monotonic_job_ids(self, manager):
        spec = tiny_transfer_spec()
        first = manager.submit(spec, seed=1)
        second = manager.submit(spec, seed=2)
        assert second.id == first.id + 1
        manager.wait(first.id)
        manager.wait(second.id)

    def test_cancel_running_job(self, manager):
        job = manager.submit(long_bulk_spec(), seed=2)
        wait_running(job)
        manager.cancel(job.id)
        manager.wait(job.id, timeout=30)
        assert job.state == JobState.CANCELLED
        assert "cancelled" in job.error

    def test_cancel_queued_job(self):
        mgr = JobManager(slots=1)
        try:
            running = mgr.submit(long_bulk_spec(), seed=1)
            queued = mgr.submit(tiny_transfer_spec(), seed=1)
            wait_running(running, min_sim_time=0.1)
            assert queued.state == JobState.QUEUED
            mgr.cancel(queued.id)
            assert queued.state == JobState.CANCELLED
            mgr.cancel(running.id)
        finally:
            mgr.shutdown()

    def test_build_failure_is_failed_with_path(self, manager):
        spec = tiny_transfer_spec()
        # vat requires a CM on its host; rx has none — only caught at build.
        spec.apps.append(AppSpec(app="vat", host="rx", peer="tx", label="bad"))
        job = manager.submit(spec, seed=1)
        manager.wait(job.id)
        assert job.state == JobState.FAILED
        assert job.error_path is not None
        assert "bad" in job.error or "vat" in job.error

    def test_mailbox_runs_in_worker_thread(self, manager):
        job = manager.submit(long_bulk_spec(), seed=1)
        wait_running(job)
        caller = threading.current_thread().name

        def snapshot(scenario):
            return {"thread": threading.current_thread().name, "now": scenario.sim.now}

        seen = job.request(snapshot)
        assert seen["thread"].startswith("repro-service-worker-")
        assert seen["thread"] != caller
        assert seen["now"] > 0
        manager.cancel(job.id)
        manager.wait(job.id, timeout=30)

    def test_mailbox_rejected_when_not_running(self, manager):
        job = manager.submit(tiny_transfer_spec(), seed=1)
        manager.wait(job.id)
        with pytest.raises(JobNotLive):
            job.request(lambda scenario: None)

    def test_mailbox_propagates_callable_errors(self, manager):
        job = manager.submit(long_bulk_spec(), seed=1)
        wait_running(job)

        def boom(scenario):
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            job.request(boom)
        manager.cancel(job.id)
        manager.wait(job.id, timeout=30)

    def test_store_answers_after_eviction(self, tmp_path):
        store_path = str(tmp_path / "svc.sqlite")
        mgr = JobManager(slots=2, store_path=store_path, keep_finished=1)
        try:
            spec = tiny_transfer_spec()
            first = mgr.submit(spec, seed=1)
            mgr.wait(first.id)
            direct = first.result.to_json()
            # Two more finished jobs push the first out of memory.
            for seed in (2, 3):
                mgr.wait(mgr.submit(spec, seed=seed).id)
            assert mgr.get(first.id) is None
            status = mgr.store_status(first.id)
            assert status is not None and status["state"] == JobState.DONE
            assert status["evicted"] is True
            assert mgr.store_result_json(first.id) == direct
        finally:
            mgr.shutdown()

    def test_store_rows_are_tagged_with_job_id(self, tmp_path):
        from repro.results.store import ResultStore

        store_path = str(tmp_path / "svc.sqlite")
        mgr = JobManager(slots=1, store_path=store_path)
        try:
            job = mgr.submit(tiny_transfer_spec(), seed=4)
            mgr.wait(job.id)
            with ResultStore(store_path) as store:
                rows = store.scenario_results()
                assert [row["source"] for row in rows] == [f"{STORE_SOURCE_PREFIX}{job.id}"]
        finally:
            mgr.shutdown()


# ====================================================================== #
# ServiceApi: the JSON surface, driven without sockets                   #
# ====================================================================== #
class TestServiceApi:
    def test_index(self, api):
        response = api.dispatch("GET", "/")
        assert response.status == 200
        body = response.json()
        assert body["service"] == "repro.service"
        assert body["slots"] == 4

    def test_submit_preset_and_fetch_result(self, api, manager):
        response = submit(api, {"preset": "web_vat_mix", "seed": 7})
        assert response.status == 201
        job = response.json()["job"]
        assert job["state"] in (JobState.QUEUED, JobState.RUNNING)
        assert len(job["spec_digest"]) == 64
        manager.wait(job["id"])
        status = api.dispatch("GET", f"/v1/jobs/{job['id']}").json()
        assert status["state"] == JobState.DONE
        assert status["progress"]["fraction"] == 1.0
        body = api.dispatch("GET", f"/v1/jobs/{job['id']}/result").body
        assert body == run(get_preset("web_vat_mix"), seed=7).to_json().encode()

    def test_submit_spec_document(self, api, manager):
        spec = tiny_transfer_spec()
        response = submit(api, {"spec": spec.to_dict(), "seed": 9})
        assert response.status == 201
        job_id = response.json()["job"]["id"]
        manager.wait(job_id)
        assert api.dispatch("GET", f"/v1/jobs/{job_id}/result").body == \
            run(spec, seed=9).to_json().encode()

    def test_submit_bad_spec_is_400_with_path(self, api):
        spec = tiny_transfer_spec().to_dict()
        spec["apps"][1]["params"]["transfer_bytes"] = "many"
        response = submit(api, {"spec": spec})
        assert response.status == 400
        body = response.json()
        assert "error" in body and "path" in body

    def test_submit_unknown_key_is_400(self, api):
        response = submit(api, {"spec": {"name": "x", "bogus": 1}})
        assert response.status == 400
        assert "bogus" in response.json()["error"]

    def test_submit_validation_errors(self, api):
        assert submit(api, {}).status == 400
        assert submit(api, {"preset": "web_vat_mix", "spec": {}}).status == 400
        assert submit(api, {"preset": "nope"}).status == 400
        assert submit(api, {"preset": "web_vat_mix", "seed": "x"}).status == 400
        assert submit(api, {"preset": "web_vat_mix", "seeds": []}).status == 400
        assert submit(api, {"preset": "web_vat_mix", "seed": 1, "seeds": [2]}).status == 400
        bad_json = api.dispatch("POST", "/v1/jobs", b"{nope")
        assert bad_json.status == 400

    def test_submit_seeds_fans_out(self, api, manager):
        response = submit(api, {"preset": "web_vat_mix", "seeds": [1, 2]})
        jobs = response.json()["jobs"]
        assert [job["seed"] for job in jobs] == [1, 2]
        listing = api.dispatch("GET", "/v1/jobs").json()["jobs"]
        assert {job["id"] for job in jobs} <= {job["id"] for job in listing}
        for job in jobs:
            manager.wait(job["id"])

    def test_unknown_job_and_routes(self, api):
        assert api.dispatch("GET", "/v1/jobs/999").status == 404
        assert api.dispatch("GET", "/v1/jobs/abc").status == 400
        assert api.dispatch("GET", "/v1/nothing").status == 404
        assert api.dispatch("PATCH", "/v1/jobs").status == 405

    def test_result_conflicts(self, api, manager):
        spec = tiny_transfer_spec()
        spec.apps.append(AppSpec(app="vat", host="rx", peer="tx", label="bad"))
        response = submit(api, {"spec": spec.to_dict()})
        job_id = response.json()["job"]["id"]
        manager.wait(job_id)
        failed = api.dispatch("GET", f"/v1/jobs/{job_id}/result")
        assert failed.status == 409
        status = api.dispatch("GET", f"/v1/jobs/{job_id}").json()
        assert status["state"] == JobState.FAILED
        assert status["error_path"]

    def test_telemetry_requires_trace(self, api, manager):
        response = submit(api, {"preset": "web_vat_mix", "seed": 1})
        job_id = response.json()["job"]["id"]
        assert api.dispatch("GET", f"/v1/jobs/{job_id}/telemetry").status == 409
        manager.wait(job_id)

    def test_cancel_endpoint(self, api, manager):
        response = submit(api, {"spec": long_bulk_spec().to_dict(), "seed": 1})
        job_id = response.json()["job"]["id"]
        job = manager.get(job_id)
        wait_running(job)
        assert api.dispatch("DELETE", f"/v1/jobs/{job_id}").status == 202
        manager.wait(job_id, timeout=30)
        assert job.state == JobState.CANCELLED
        # A second cancel conflicts.
        assert api.dispatch("DELETE", f"/v1/jobs/{job_id}").status == 409


class TestLiveInspection:
    """hosts / macroflows / flows / attach / patch against a running job."""

    @pytest.fixture
    def live_job(self, api, manager):
        response = submit(api, {"spec": long_bulk_spec().to_dict(), "seed": 3})
        job = manager.get(response.json()["job"]["id"])
        wait_running(job, min_sim_time=2.0)
        yield job
        manager.cancel(job.id)
        manager.wait(job.id, timeout=30)

    def test_hosts_snapshot(self, api, live_job):
        body = api.dispatch("GET", f"/v1/jobs/{live_job.id}/hosts").json()
        assert body["sim_time"] > 0
        by_name = {entry["host"]: entry for entry in body["hosts"]}
        assert by_name["sender"]["cm"] is True
        assert by_name["sender"]["open_flows"] > 0
        assert by_name["sender"]["macroflows"] == 1
        assert by_name["receiver"]["cm"] is False

    def test_macroflows_report_real_state(self, api, live_job):
        body = api.dispatch("GET", f"/v1/jobs/{live_job.id}/hosts/sender/macroflows").json()
        (entry,) = body["macroflows"]
        assert entry["cwnd_bytes"] > 0
        assert entry["rate_bps"] > 0
        assert entry["srtt_s"] > 0
        assert entry["bytes_acked_total"] > 0
        assert len(entry["flows"]) == 4
        assert entry["scheduler"].endswith("Scheduler")
        assert entry["pending_grants"] >= 0
        missing = api.dispatch("GET", f"/v1/jobs/{live_job.id}/hosts/nobody/macroflows")
        assert missing.status == 404
        no_cm = api.dispatch("GET", f"/v1/jobs/{live_job.id}/hosts/receiver/macroflows")
        assert no_cm.status == 409

    def test_flows_report_per_flow_state(self, api, live_job):
        mf = api.dispatch(
            "GET", f"/v1/jobs/{live_job.id}/hosts/sender/macroflows").json()["macroflows"][0]
        body = api.dispatch(
            "GET", f"/v1/jobs/{live_job.id}/macroflows/{mf['macroflow_id']}/flows").json()
        assert body["host"] == "sender"
        assert len(body["flows"]) == 4
        for flow in body["flows"]:
            assert flow["state"] == "open"
            assert flow["stats"]["grants"] > 0
        assert api.dispatch(
            "GET", f"/v1/jobs/{live_job.id}/macroflows/999/flows").status == 404

    def test_attach_app_changes_result_workloads(self, api, manager):
        spec = long_bulk_spec(until=20.0)
        response = submit(api, {"spec": spec.to_dict(), "seed": 3})
        job = manager.get(response.json()["job"]["id"])
        wait_running(job, min_sim_time=2.0)
        attach = api.dispatch(
            "POST", f"/v1/jobs/{job.id}/hosts/sender/apps",
            json.dumps({"app": "bulk", "peer": "receiver", "label": "late",
                        "params": {"nbuffers": 100, "port": 6001}}).encode())
        assert attach.status == 201
        assert attach.json()["attached_at"] > 0
        manager.wait(job.id, timeout=120)
        assert job.state == JobState.DONE
        payload = job.result.payload()
        (entry,) = payload["workloads"]
        assert entry["kind"] == "service_attach"
        assert entry["label"] == "late"
        assert entry["metrics"]["throughput"] > 0
        # The same (spec, seed) without the mutation has no workloads section.
        assert "workloads" not in run(spec, seed=3).payload()

    def test_attach_app_validation(self, api, live_job):
        bad_app = api.dispatch(
            "POST", f"/v1/jobs/{live_job.id}/hosts/sender/apps",
            json.dumps({"app": "nope"}).encode())
        assert bad_app.status == 400
        assert bad_app.json()["path"] == "app"
        bad_params = api.dispatch(
            "POST", f"/v1/jobs/{live_job.id}/hosts/sender/apps",
            json.dumps({"app": "bulk", "peer": "receiver"}).encode())
        assert bad_params.status == 400
        assert "nbuffers" in bad_params.json()["path"]

    def test_patch_link(self, api, live_job):
        patched = api.dispatch(
            "PATCH", f"/v1/jobs/{live_job.id}/links/sender->receiver",
            json.dumps({"rate_bps": 2e6, "delay": 0.05}).encode())
        assert patched.status == 200
        body = patched.json()
        assert body["rate_bps"] == 2e6
        assert body["delay"] == 0.05
        assert api.dispatch(
            "PATCH", f"/v1/jobs/{live_job.id}/links/ghost",
            json.dumps({"rate_bps": 1e6}).encode()).status == 404
        assert api.dispatch(
            "PATCH", f"/v1/jobs/{live_job.id}/links/sender->receiver",
            json.dumps({}).encode()).status == 400

    def test_patch_link_scheduled(self, api, live_job):
        scheduled = api.dispatch(
            "PATCH", f"/v1/jobs/{live_job.id}/links/sender->receiver",
            json.dumps({"rate_bps": 3e6, "at": 500.0}).encode())
        assert scheduled.status == 200
        assert scheduled.json()["applies_at"] == 500.0

    def test_inspection_rejected_when_finished(self, api, manager):
        response = submit(api, {"spec": tiny_transfer_spec().to_dict()})
        job_id = response.json()["job"]["id"]
        manager.wait(job_id)
        assert api.dispatch("GET", f"/v1/jobs/{job_id}/hosts").status == 409


# ====================================================================== #
# End to end over a real socket                                          #
# ====================================================================== #
class TestHttpEndToEnd:
    def test_submit_poll_result_telemetry_and_shutdown(self, tmp_path):
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.server import ServiceServer

        manager = JobManager(slots=4, store_path=str(tmp_path / "svc.sqlite"),
                             trace_dir=str(tmp_path / "traces"))
        server = ServiceServer(manager)
        server.start()
        try:
            client = ServiceClient(server.address)
            client.wait_ready()

            # Two concurrent traced submissions through the real socket.
            body = client.submit(preset="web_vat_mix", seeds=[1, 2], trace=True)
            ids = [job["id"] for job in body["jobs"]]

            lines = list(client.telemetry_lines(ids[0], max_lines=3))
            assert len(lines) == 3
            assert all("event" in json.loads(line) for line in lines)

            for job_id in ids:
                assert client.wait(job_id)["state"] == JobState.DONE
            preset = get_preset("web_vat_mix")
            for job_id, seed in zip(ids, (1, 2)):
                assert client.result_bytes(job_id) == run(preset, seed=seed).to_json().encode()

            with pytest.raises(ServiceError) as err:
                client.job(999)
            assert err.value.status == 404

            assert client.shutdown()["ok"] is True
            deadline = time.time() + 10
            while not server._stopped.is_set() and time.time() < deadline:
                time.sleep(0.05)
            assert server._stopped.is_set()
        finally:
            server.stop()

    def test_service_cli_against_live_server(self, tmp_path, capsys):
        from repro.service.cli import main as service_main
        from repro.service.server import ServiceServer

        manager = JobManager(slots=2)
        server = ServiceServer(manager)
        server.start()
        try:
            url = server.address
            assert service_main(["--url", url, "submit", "web_vat_mix",
                                 "--seed", "4", "--wait"]) == 0
            out = capsys.readouterr().out
            assert "state=queued" in out or "state=running" in out or "job 1" in out
            assert service_main(["--url", url, "status"]) == 0
            assert "done" in capsys.readouterr().out
            assert service_main(["--url", url, "result", "1",
                                 "--output", str(tmp_path / "res.json")]) == 0
            written = (tmp_path / "res.json").read_bytes()
            assert written == run(get_preset("web_vat_mix"), seed=4).to_json().encode()
        finally:
            server.stop()


# ====================================================================== #
# Satellite: scenario CLI reports per-seed SpecErrors and continues      #
# ====================================================================== #
class TestScenarioCliReportAndContinue:
    def test_failing_seed_does_not_abort_the_batch(self, tmp_path, monkeypatch, capsys):
        import repro.scenario.cli as scenario_cli

        spec = tiny_transfer_spec()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        real_run = scenario_cli.run

        def flaky_run(spec, seed=None, trace_path=None, shards=None):
            if seed == 2:
                raise SpecError("apps[flow]", "synthetic failure for seed 2")
            return real_run(spec, seed=seed, trace_path=trace_path, shards=shards)

        monkeypatch.setattr(scenario_cli, "run", flaky_run)
        json_dir = tmp_path / "out"
        code = scenario_cli.main(["run", str(spec_path), "--seeds", "3",
                                  "--quiet", "--json-dir", str(json_dir)])
        captured = capsys.readouterr()
        assert code == 1
        assert "invalid scenario (seed 2)" in captured.err
        assert "1 of 3 seed(s) failed" in captured.err
        # Seeds 1 and 3 still produced their artifacts.
        names = sorted(path.name for path in json_dir.iterdir())
        assert names == ["svc_tiny.seed1.json", "svc_tiny.seed3.json"]

    def test_eager_validation_failure_still_exits_2(self, tmp_path, capsys):
        from repro.scenario.cli import main as scenario_main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "bogus": True}))
        assert scenario_main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("invalid scenario:")
        assert "\n" == err[err.index("\n"):]  # one clean line, no traceback
