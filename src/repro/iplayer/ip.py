"""The IP layer of a simulated host.

Two behaviours in the paper live exactly here:

* **cm_notify hook** — "we modify the IP output routine to call
  ``cm_notify(cm_flowid, nsent)`` on each transmission" (§2.1.3).  The
  :meth:`IPLayer.send` path looks the outgoing packet's flow up in the
  host's Congestion Manager and notifies it of the bytes charged, so CM
  clients never have to report their own transmissions.
* **Protocol demultiplexing** — packets arriving for this host are handed
  to the transport handler registered for ``(protocol, local port)``,
  mirroring the in-kernel TCP/UDP input paths.

Routers reuse the same class with :attr:`forwarding` enabled.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..netsim.packet import Packet

__all__ = ["IPLayer", "NoRouteError"]


class NoRouteError(RuntimeError):
    """Raised when a host has no route (and no default route) to a destination."""


class IPLayer:
    """Per-host IP send/receive/forward logic.

    Parameters
    ----------
    host:
        The owning :class:`~repro.netsim.node.Host` (provides the simulator,
        address, routing table, cost ledger and optional CM).
    """

    def __init__(self, host) -> None:
        self.host = host
        #: Transport handlers keyed by ``(protocol, local_port)``; port 0 is
        #: a wildcard matched when no exact entry exists.
        self._handlers: Dict[Tuple[str, int], Callable[[Packet], None]] = {}
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_no_handler = 0
        self.send_failures = 0
        self.forward_drops = 0

    # ------------------------------------------------------------ demux setup
    def register_handler(self, protocol: str, port: int, handler: Callable[[Packet], None]) -> None:
        """Register ``handler(packet)`` for packets to ``(protocol, port)``."""
        key = (protocol, port)
        if key in self._handlers:
            raise ValueError(f"handler already registered for {key}")
        self._handlers[key] = handler

    def unregister_handler(self, protocol: str, port: int) -> None:
        """Remove a previously registered transport handler (no-op if absent)."""
        self._handlers.pop((protocol, port), None)

    # ----------------------------------------------------------------- output
    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` towards its destination.

        Charges the in-kernel transmit cost, performs the ``cm_notify`` hook
        for CM-managed flows, resolves the route, and hands the packet to
        the outgoing link.  Returns ``True`` if the link accepted it.
        """
        sim = self.host.sim
        packet.created_at = sim.now
        # Stamp a per-simulator id: construction-time ids come from a
        # process-global counter (so unsent packets still get unique ids),
        # but anything that reaches the wire must carry an id that is
        # reproducible run-to-run regardless of process history.
        packet.packet_id = sim.next_packet_id()
        if self.host.costs is not None:
            self.host.costs.kernel_tx(packet.size)

        self._cm_notify_hook(packet)

        link = self.host.route_for(packet.dst)
        if link is None:
            raise NoRouteError(f"{self.host.name}: no route to {packet.dst}")
        accepted = link.send(packet)
        if accepted:
            self.packets_sent += 1
        else:
            self.send_failures += 1
        return accepted

    def _cm_notify_hook(self, packet: Packet) -> None:
        """Notify the host's CM of a transmission on one of its flows.

        The kernel looks up the CM flow from the packet's addressing tuple
        (the "well-defined CM interface that takes the flow parameters as
        arguments" in the paper); unconnected sockets whose packets cannot
        be matched are the clients that must call ``cm_notify`` explicitly.
        """
        cm = getattr(self.host, "cm", None)
        if cm is None:
            return
        if not packet.cm_matchable:
            return
        flow_id = cm.lookup_flow(packet.src, packet.dst, packet.sport, packet.dport, packet.protocol)
        if flow_id is None:
            return
        packet.flow_id = flow_id
        cm.cm_notify(flow_id, packet.payload_bytes)

    # ------------------------------------------------------------------ input
    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered by an attached link.

        This is where a pooled TCP segment's life ends: once the transport
        handler returns (or the packet turns out to be undeliverable) the
        segment goes back to the simulator's packet pool.  Unmanaged packets
        make the release a no-op, and forwarded packets stay live — the
        router path is a relay, not a terminus.
        """
        host = self.host
        if packet.dst != host.addr:
            if host.forwarding:
                self._forward(packet)
            elif packet._pool_state == 1:
                # Mis-delivered packet; drop silently (matches real IP
                # behaviour) and recycle it.
                host.sim.packet_pool.release(packet)
            return
        if host.costs is not None:
            host.costs.kernel_rx(packet.size)
        self.packets_received += 1
        handler = self._handlers.get((packet.protocol, packet.dport))
        if handler is None:
            handler = self._handlers.get((packet.protocol, 0))
        if handler is None:
            self.packets_no_handler += 1
        else:
            handler(packet)
        if packet._pool_state == 1:
            host.sim.packet_pool.release(packet)

    def _forward(self, packet: Packet) -> None:
        """Router path: look up the next hop and retransmit unchanged."""
        link = self.host.route_for(packet.dst)
        if link is None:
            # Routers drop unroutable packets rather than raising: end hosts
            # probing a dead path should see loss, not a simulator crash.
            # The counter is the debugging handle for mis-routed graphs.
            self.forward_drops += 1
            if packet._pool_state == 1:
                self.host.sim.packet_pool.release(packet)
            return
        self.packets_forwarded += 1
        link.send(packet)
