"""IP layer: output routine with the ``cm_notify`` hook and protocol demux."""

from .ip import IPLayer, NoRouteError

__all__ = ["IPLayer", "NoRouteError"]
