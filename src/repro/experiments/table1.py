"""Table 1: cumulative sources of per-packet overhead for each CM API.

The paper's table lists what each API adds, per packet, on top of plain
TCP/CM:

    ALF/noconnect   1 cm_notify (ioctl)
    ALF             1 cm_request (ioctl), 1 extra socket (select)
    Buffered        1 recv, 2 gettimeofday
    TCP/CM          -- baseline --

Instead of restating the table, this harness *measures* it: it runs each API
for a fixed packet count and reports the per-packet counts of the relevant
operations straight from the host cost ledger, then derives the incremental
step from one API to the next.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import ExperimentResult
from .figure6 import run_variant
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "TRACKED_OPERATIONS"]

#: Ledger operations that appear in the paper's Table 1.
TRACKED_OPERATIONS = ("ioctl", "select_call", "recv_call", "gettimeofday", "send_call")

#: Order in which the paper stacks the APIs (baseline last).
API_ORDER = ("alf_noconnect", "alf", "buffered", "tcp_cm")


def run_trial(params: dict) -> Dict[str, float]:
    """Per-packet operation counts for one API; pure function of ``params``."""
    outcome = run_variant(params["api"], params["packet_size"], npackets=params["npackets"])
    return {op: outcome.ops_per_packet(op) for op in TRACKED_OPERATIONS}


def trials(
    packet_size: int = 1000,
    npackets: int = 1000,
    apis: Sequence[str] = API_ORDER,
) -> List[TrialSpec]:
    """One trial per measured API."""
    return [
        TrialSpec("table1", {"api": api, "packet_size": packet_size, "npackets": npackets})
        for api in apis
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Build the Table 1 operation-count table and cumulative-difference notes."""
    per_api: Dict[str, Dict[str, float]] = {
        outcome.spec.params["api"]: dict(outcome.value) for outcome in outcomes
    }
    apis = [outcome.spec.params["api"] for outcome in outcomes]

    result = ExperimentResult(
        name="table1",
        title="Per-packet operation counts by API (sender host)",
        columns=["api"] + list(TRACKED_OPERATIONS),
    )
    for api in apis:
        result.add_row(api, *[per_api[api][op] for op in TRACKED_OPERATIONS])

    # The paper presents the *cumulative differences*; derive them here.
    baseline = per_api.get("tcp_cm", {op: 0.0 for op in TRACKED_OPERATIONS})
    for api in apis:
        if api == "tcp_cm":
            continue
        deltas = {op: per_api[api][op] - baseline.get(op, 0.0) for op in TRACKED_OPERATIONS}
        summary = ", ".join(f"+{v:.2f} {op}" for op, v in deltas.items() if v > 0.05)
        result.notes.append(f"{api} relative to TCP/CM: {summary or 'no additional operations'}")
    result.notes.append(
        "Paper's Table 1: ALF/noconnect adds a cm_notify ioctl over ALF; ALF adds a cm_request ioctl "
        "and an extra selected socket over Buffered; "
        "Buffered adds a recv and two gettimeofday calls over TCP/CM."
    )
    return result


def run(
    packet_size: int = 1000,
    npackets: int = 1000,
    apis: Sequence[str] = API_ORDER,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Measure per-packet operation counts for each API."""
    specs = trials(packet_size=packet_size, npackets=npackets, apis=apis)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
