"""Figure 5: sender-side CPU overhead of TCP/CM versus native TCP.

Same ``ttcp`` workload as Figure 4; the measurement is the sending host's
CPU utilisation during the transfer.  The paper's claim: the CPU difference
between TCP/Linux and TCP/CM converges to slightly under 1 % (percentage
points) for long connections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.bulk import BulkResult
from .base import ExperimentResult
from .figure4 import DEFAULT_BUFFER_COUNTS, _group_by_buffers, _outcomes_from_sweep
from .figure4 import trials as figure4_trials
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "reduce"]


def trials(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    seed: int = 7,
) -> List[TrialSpec]:
    """Figure 5 shares Figure 4's trials (and therefore its cache entries)."""
    return figure4_trials(buffer_counts, seed=seed)


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Build the Figure 5 CPU-utilisation table from bulk-transfer outcomes."""
    result = ExperimentResult(
        name="figure5",
        title="CPU utilisation during bulk TCP transfers (%)",
        columns=["buffers", "cm_cpu_%", "linux_cpu_%", "difference_points"],
    )
    for nbuffers, by_variant in _group_by_buffers(outcomes).items():
        cm_result = by_variant["cm"]
        linux_result = by_variant["linux"]
        result.add_row(
            nbuffers,
            cm_result.cpu_utilization * 100.0,
            linux_result.cpu_utilization * 100.0,
            (cm_result.cpu_utilization - linux_result.cpu_utilization) * 100.0,
        )
    result.notes.append(
        "Paper: the CPU difference converges to slightly under one percentage point "
        "for long transfers (the CM's per-packet kernel bookkeeping)."
    )
    return result


def run(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    progress: Optional[callable] = None,
    sweep: Optional[Dict[str, List[Tuple[int, BulkResult]]]] = None,
) -> ExperimentResult:
    """Produce the Figure 5 CPU-utilisation table."""
    if sweep is not None:
        return reduce(_outcomes_from_sweep(sweep))
    return reduce(run_trials(trials(buffer_counts), jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
