"""Figure 6: per-packet cost of each CM API on a 100 Mbps path.

The paper sends packets of several sizes under six different send paths
(ALF/noconnect, ALF, Buffered CM-UDP, TCP/CM without delayed ACKs, TCP/CM,
TCP/Linux) and reports the wall-clock microseconds needed to send one packet
and process its acknowledgement.  The reproducible claims:

* the APIs order from cheapest to most expensive exactly as Table 1's
  cumulative-overhead breakdown predicts;
* the curves grow with packet size (copies and wire time);
* the worst case — ALF/noconnect versus TCP/CM-without-delayed-ACKs at the
  smallest packet size (168 bytes) — costs roughly 25 % of throughput.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from ..apps.alfapp import ApiOverheadResult, TCPApiTestApp, TCP_VARIANTS, UDPApiTestApp, UDP_VARIANTS
from ..core import CongestionManager
from ..transport.udp.feedback import AckReflector
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials
from .topology import build_testbed, lan_pair_spec

__all__ = ["run", "trials", "run_trial", "reduce", "run_variant", "DEFAULT_PACKET_SIZES", "ALL_VARIANTS"]

DEFAULT_PACKET_SIZES = (168, 400, 700, 1000, 1400)
ALL_VARIANTS = UDP_VARIANTS + TCP_VARIANTS
LINK_RATE = 100e6


def run_variant(variant: str, packet_size: int, npackets: int = 2000, seed: int = 0) -> ApiOverheadResult:
    """Run one (variant, packet size) cell of the Figure 6 matrix."""
    testbed = build_testbed(lan_pair_spec(), seed=seed)
    CongestionManager(testbed.sender)
    if variant in UDP_VARIANTS:
        reflector = AckReflector(testbed.receiver, port=7001)
        app = UDPApiTestApp(
            testbed.sender,
            testbed.receiver.addr,
            7001,
            variant=variant,
            packet_size=packet_size,
            npackets=npackets,
        )
        outcome = app.run(testbed.sim, LINK_RATE)
        reflector.close()
        return outcome
    app = TCPApiTestApp(
        testbed.sender,
        testbed.receiver,
        variant=variant,
        packet_size=packet_size,
        npackets=npackets,
    )
    outcome = app.run(testbed.sim, LINK_RATE)
    app.close()
    return outcome


def run_trial(params: dict) -> dict:
    """One (variant, packet size) cell; returns the ApiOverheadResult as a dict."""
    outcome = run_variant(
        params["variant"],
        params["packet_size"],
        npackets=params["npackets"],
        seed=params["seed"],
    )
    return asdict(outcome)


def trials(
    packet_sizes: Sequence[int] = DEFAULT_PACKET_SIZES,
    variants: Sequence[str] = ALL_VARIANTS,
    npackets: int = 2000,
    seed: int = 0,
) -> List[TrialSpec]:
    """One trial per (packet size, variant) cell of the Figure 6 matrix."""
    return [
        TrialSpec(
            "figure6",
            {"variant": variant, "packet_size": size, "npackets": npackets, "seed": seed},
        )
        for size in packet_sizes
        for variant in variants
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Assemble the per-packet cost matrix from the trial cells."""
    cells: Dict[int, Dict[str, ApiOverheadResult]] = {}
    variants: List[str] = []
    for outcome in outcomes:
        params = outcome.spec.params
        cells.setdefault(params["packet_size"], {})[params["variant"]] = ApiOverheadResult(
            **outcome.value
        )
        if params["variant"] not in variants:
            variants.append(params["variant"])
    packet_sizes = list(cells)
    result = ExperimentResult(
        name="figure6",
        title="API cost per packet on a 100 Mbps link (microseconds)",
        columns=["packet_size"] + list(variants),
    )
    for size in packet_sizes:
        result.add_row(size, *[cells[size][v].us_per_packet for v in variants])
    if "alf_noconnect" in variants and "tcp_cm_nodelay" in variants:
        smallest = min(packet_sizes)
        worst = cells[smallest]["alf_noconnect"].us_per_packet
        base = cells[smallest]["tcp_cm_nodelay"].us_per_packet
        if worst > 0:
            reduction = 100.0 * (1.0 - base / worst)
            result.notes.append(
                f"Worst-case throughput reduction (ALF/noconnect vs TCP/CM nodelay at {smallest} B): "
                f"{reduction:.1f}% (paper: ~25%)."
            )
    result.notes.append(
        "Costs are sending-host CPU per packet plus wire time; the ordering "
        "ALF/noconnect > ALF > Buffered > TCP/CM nodelay > TCP/CM ~ TCP/Linux is the reproduced claim."
    )
    return result


def run(
    packet_sizes: Sequence[int] = DEFAULT_PACKET_SIZES,
    variants: Sequence[str] = ALL_VARIANTS,
    npackets: int = 2000,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Produce the Figure 6 matrix of per-packet costs."""
    specs = trials(packet_sizes=packet_sizes, variants=variants, npackets=npackets)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
