"""Figure 4: long-running TCP throughput, Congestion Manager vs. native TCP.

Paper setup: ``ttcp`` transfers of 1448-byte buffers over switched 100 Mbps
Ethernet, sweeping the number of buffers from 10^3 to 10^6.  The claim is
that TCP/CM's throughput is essentially identical to native Linux TCP — the
worst-case difference is 0.5 %, attributable to the CM's 1-MTU initial
window rather than CPU overhead, and at gigabyte scale the two are equal.

The same sweep also produces the CPU utilisation data for Figure 5, so the
heavy lifting lives in :func:`bulk_sweep` and Figure 5 reuses it.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.bulk import BulkResult, BulkTransferApp
from ..core import CongestionManager
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials
from .topology import build_testbed, lan_pair_spec

__all__ = ["run", "trials", "run_trial", "reduce", "bulk_sweep", "DEFAULT_BUFFER_COUNTS"]

#: Buffer counts swept by default.  The paper goes to 10^6 buffers (1.45 GB);
#: the default here stops at 10^5 to keep the harness runnable in minutes on
#: an interpreter — pass a larger sequence to go further.
DEFAULT_BUFFER_COUNTS = (1_000, 5_000, 20_000, 100_000)

BUFFER_SIZE = 1448
RECEIVE_WINDOW = 64 * 1024


def run_trial(params: dict) -> dict:
    """One ttcp transfer for (variant, nbuffers); returns the BulkResult as a dict."""
    testbed = build_testbed(lan_pair_spec(), seed=params["seed"])
    if params["variant"] == "cm":
        CongestionManager(testbed.sender)
    app = BulkTransferApp(
        testbed.sender,
        testbed.receiver,
        variant=params["variant"],
        buffer_size=params["buffer_size"],
        receive_window=params["receive_window"],
    )
    outcome = app.run(testbed.sim, params["nbuffers"])
    app.close()
    return asdict(outcome)


def trials(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    seed: int = 7,
) -> List[TrialSpec]:
    """One trial per (buffer count, variant); shared with Figure 5 via the cache."""
    return [
        TrialSpec(
            "figure4",
            {
                "variant": variant,
                "nbuffers": nbuffers,
                "seed": seed,
                "buffer_size": BUFFER_SIZE,
                "receive_window": RECEIVE_WINDOW,
            },
        )
        for nbuffers in buffer_counts
        for variant in ("linux", "cm")
    ]


def _group_by_buffers(outcomes: Sequence[TrialOutcome]) -> Dict[int, Dict[str, BulkResult]]:
    """Index trial outcomes as {nbuffers: {variant: BulkResult}} in sweep order."""
    grouped: Dict[int, Dict[str, BulkResult]] = {}
    for outcome in outcomes:
        value = dict(outcome.value)
        grouped.setdefault(value["nbuffers"], {})[value["variant"]] = BulkResult(**value)
    return grouped


def _outcomes_from_sweep(
    sweep: Dict[str, List[Tuple[int, BulkResult]]]
) -> List[TrialOutcome]:
    """Adapt a legacy ``bulk_sweep`` mapping into trial outcomes."""
    outcomes: List[TrialOutcome] = []
    for variant in ("linux", "cm"):
        for nbuffers, bulk_result in sweep[variant]:
            spec = TrialSpec("figure4", {"variant": variant, "nbuffers": nbuffers})
            outcomes.append(TrialOutcome(spec=spec, value=asdict(bulk_result)))
    return outcomes


def bulk_sweep(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    progress: Optional[callable] = None,
) -> Dict[str, List[Tuple[int, BulkResult]]]:
    """Run the ttcp workload for both variants at every buffer count."""
    outcomes: Dict[str, List[Tuple[int, BulkResult]]] = {"cm": [], "linux": []}
    for trial_outcome in run_trials(trials(buffer_counts), jobs=1, progress=progress):
        value = dict(trial_outcome.value)
        outcomes[value["variant"]].append((value["nbuffers"], BulkResult(**value)))
    return outcomes


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Build the Figure 4 throughput table from bulk-transfer trial outcomes."""
    result = ExperimentResult(
        name="figure4",
        title="100 Mbps TCP throughput comparison (KB/s)",
        columns=["buffers", "cm_kBps", "linux_kBps", "difference_%"],
    )
    for nbuffers, by_variant in _group_by_buffers(outcomes).items():
        cm_result = by_variant["cm"]
        linux_result = by_variant["linux"]
        difference = 0.0
        if linux_result.throughput > 0:
            difference = 100.0 * (linux_result.throughput - cm_result.throughput) / linux_result.throughput
        result.add_row(
            nbuffers,
            cm_result.throughput_kbytes,
            linux_result.throughput_kbytes,
            difference,
        )
    result.notes.append(
        "Paper: worst-case difference 0.5% (CM initial window of 1 MTU vs Linux's 2); "
        "identical at gigabyte scale.  Short transfers amplify the initial-window gap here "
        "because the sweep is truncated to interpreter-friendly sizes."
    )
    return result


def run(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    progress: Optional[callable] = None,
    sweep: Optional[Dict[str, List[Tuple[int, BulkResult]]]] = None,
) -> ExperimentResult:
    """Produce the Figure 4 throughput table."""
    if sweep is not None:
        return reduce(_outcomes_from_sweep(sweep))
    return reduce(run_trials(trials(buffer_counts), jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
