"""Figure 4: long-running TCP throughput, Congestion Manager vs. native TCP.

Paper setup: ``ttcp`` transfers of 1448-byte buffers over switched 100 Mbps
Ethernet, sweeping the number of buffers from 10^3 to 10^6.  The claim is
that TCP/CM's throughput is essentially identical to native Linux TCP — the
worst-case difference is 0.5 %, attributable to the CM's 1-MTU initial
window rather than CPU overhead, and at gigabyte scale the two are equal.

The same sweep also produces the CPU utilisation data for Figure 5, so the
heavy lifting lives in :func:`bulk_sweep` and Figure 5 reuses it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.bulk import BulkResult, BulkTransferApp
from ..core import CongestionManager
from .base import ExperimentResult
from .topology import lan_pair

__all__ = ["run", "bulk_sweep", "DEFAULT_BUFFER_COUNTS"]

#: Buffer counts swept by default.  The paper goes to 10^6 buffers (1.45 GB);
#: the default here stops at 10^5 to keep the harness runnable in minutes on
#: an interpreter — pass a larger sequence to go further.
DEFAULT_BUFFER_COUNTS = (1_000, 5_000, 20_000, 100_000)

BUFFER_SIZE = 1448
RECEIVE_WINDOW = 64 * 1024


def bulk_sweep(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    progress: Optional[callable] = None,
) -> Dict[str, List[Tuple[int, BulkResult]]]:
    """Run the ttcp workload for both variants at every buffer count."""
    outcomes: Dict[str, List[Tuple[int, BulkResult]]] = {"cm": [], "linux": []}
    for nbuffers in buffer_counts:
        for variant in ("linux", "cm"):
            testbed = lan_pair(seed=7)
            if variant == "cm":
                CongestionManager(testbed.sender)
            app = BulkTransferApp(
                testbed.sender,
                testbed.receiver,
                variant=variant,
                buffer_size=BUFFER_SIZE,
                receive_window=RECEIVE_WINDOW,
            )
            outcome = app.run(testbed.sim, nbuffers)
            app.close()
            outcomes[variant].append((nbuffers, outcome))
            if progress is not None:
                progress(
                    f"figure4 {variant} buffers={nbuffers} "
                    f"thr={outcome.throughput_kbytes:.0f} KB/s cpu={outcome.cpu_utilization:.3f}"
                )
    return outcomes


def run(
    buffer_counts: Sequence[int] = DEFAULT_BUFFER_COUNTS,
    progress: Optional[callable] = None,
    sweep: Optional[Dict[str, List[Tuple[int, BulkResult]]]] = None,
) -> ExperimentResult:
    """Produce the Figure 4 throughput table."""
    outcomes = sweep if sweep is not None else bulk_sweep(buffer_counts, progress)
    result = ExperimentResult(
        name="figure4",
        title="100 Mbps TCP throughput comparison (KB/s)",
        columns=["buffers", "cm_kBps", "linux_kBps", "difference_%"],
    )
    for (nbuffers, cm_result), (_n2, linux_result) in zip(outcomes["cm"], outcomes["linux"]):
        difference = 0.0
        if linux_result.throughput > 0:
            difference = 100.0 * (linux_result.throughput - cm_result.throughput) / linux_result.throughput
        result.add_row(
            nbuffers,
            cm_result.throughput_kbytes,
            linux_result.throughput_kbytes,
            difference,
        )
    result.notes.append(
        "Paper: worst-case difference 0.5% (CM initial window of 1 MTU vs Linux's 2); "
        "identical at gigabyte scale.  Short transfers amplify the initial-window gap here "
        "because the sweep is truncated to interpreter-friendly sizes."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
