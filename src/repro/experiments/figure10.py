"""Figure 10: the effect of delaying receiver feedback.

Same rate-callback layered application as Figure 9, but the receiver batches
its acknowledgements: feedback is sent only every ``min(500 packets, 2
seconds)``.  The paper's observations, reproduced here as series and summary
rows:

* the initial slow start is delayed by about two seconds while the sender
  waits for the first feedback;
* once the pipe fills, feedback arrives in large bursts, so the reported
  rate (and hence the transmission rate) becomes bursty rather than smooth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .base import ExperimentResult
from .layered_common import run_layered_trial
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce"]

#: Constant-bandwidth path; the burstiness comes from the feedback batching,
#: not from path changes.
FLAT_SCHEDULE: Tuple[Tuple[float, float], ...] = ((0.0, 16e6),)

run_trial = run_layered_trial


def trials(
    duration: float = 70.0,
    ack_every_packets: int = 500,
    ack_delay: float = 2.0,
) -> List[TrialSpec]:
    """A single trial: one delayed-feedback rate-callback run."""
    return [
        TrialSpec(
            "figure10",
            {
                "mode": "rate",
                "duration": duration,
                "bandwidth_schedule": [list(step) for step in FLAT_SCHEDULE],
                "ack_every_packets": ack_every_packets,
                "ack_delay": ack_delay,
                "thresh": 1.5,
                "seed": 11,
                "rate_bin": 1.0,
            },
        )
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Turn the layered-run dict into the Figure 10 series and summary rows."""
    outcome = outcomes[0].value
    transmission_series = [tuple(point) for point in outcome["transmission_series"]]
    reported_series = [tuple(point) for point in outcome["reported_series"]]
    result = ExperimentResult(
        name="figure10",
        title="Rate-callback application with delayed feedback min(500 pkts, 2 s)",
        columns=["metric", "value"],
    )
    result.add_series("transmission_rate", transmission_series)
    result.add_series("cm_reported_rate", reported_series)

    # When does the transmission rate first exceed the lowest layer?  With
    # prompt feedback this happens almost immediately; with delayed feedback
    # it waits for the first feedback batch (~2 s).
    first_rise = next(
        (t for t, v in transmission_series if v > 150_000), float("nan")
    )
    result.add_row("time_of_first_rate_increase_s", first_rise)
    result.add_row("packets_sent", outcome["packets_sent"])
    result.add_row("rate_callbacks", len(reported_series))
    tx_values = [v for _t, v in transmission_series if v > 0]
    if tx_values:
        mean_tx = sum(tx_values) / len(tx_values)
        peak = max(tx_values)
        result.add_row("mean_transmission_rate_Bps", mean_tx)
        result.add_row("peak_to_mean_ratio", peak / mean_tx if mean_tx else 0.0)
    result.notes.append(
        "Paper: the initial slow start is delayed about 2 s waiting for the first feedback batch, "
        "and the reported rate is bursty because 500 acknowledgements arrive at once."
    )
    return result


def run(
    duration: float = 70.0,
    ack_every_packets: int = 500,
    ack_delay: float = 2.0,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the rate-callback server with batched receiver feedback."""
    specs = trials(duration=duration, ack_every_packets=ack_every_packets, ack_delay=ack_delay)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
