"""Shared driver for the layered-streaming adaptation figures (8, 9, 10).

All three figures run the layered audio/video server of §3.4 against a
wide-area path whose available bandwidth changes during the run, and plot
two series over time: the application's transmission rate and the rate the
CM reports to it.  They differ only in the adaptation API (ALF
request/callback vs. rate callback) and in how promptly the receiver sends
feedback.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps.layered import LayeredStreamingServer
from ..core import CongestionManager
from ..transport.udp.feedback import AckReflector
from .topology import build_testbed, wan_pair_spec

__all__ = ["LayeredRun", "run_layered", "run_layered_trial", "DEFAULT_BANDWIDTH_SCHEDULE"]

#: (time, bandwidth in bits/s) steps applied to the channel during the run;
#: chosen so the best sustainable rate crosses several of the default layer
#: rates, forcing visible adaptation.
DEFAULT_BANDWIDTH_SCHEDULE: Tuple[Tuple[float, float], ...] = (
    (0.0, 20e6),
    (8.0, 4e6),
    (16.0, 12e6),
)


@dataclass
class LayeredRun:
    """Everything the figure harnesses need from one layered-streaming run."""

    mode: str
    duration: float
    transmission_series: List[Tuple[float, float]]
    reported_series: List[Tuple[float, float]]
    layer_history: List[Tuple[float, int]]
    packets_sent: int
    bytes_sent: int
    bytes_received: int
    loss_events: int


def run_layered(
    mode: str,
    duration: float = 25.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
    ack_every_packets: int = 1,
    ack_delay: Optional[float] = None,
    thresh: float = 1.5,
    seed: int = 11,
    rate_bin: float = 0.5,
) -> LayeredRun:
    """Run the layered streaming server for ``duration`` simulated seconds."""
    testbed = build_testbed(wan_pair_spec(rate_bps=bandwidth_schedule[0][1]), seed=seed)
    CongestionManager(testbed.sender)

    reflector = AckReflector(
        testbed.receiver,
        port=9001,
        ack_every_packets=ack_every_packets,
        ack_delay=ack_delay,
    )
    server = LayeredStreamingServer(
        testbed.sender,
        testbed.receiver.addr,
        9001,
        mode=mode,
        thresh_down=thresh,
        thresh_up=thresh,
        rate_bin=rate_bin,
    )
    for when, rate_bps in bandwidth_schedule:
        if when == 0.0:
            continue
        testbed.sim.schedule(when, testbed.channel.set_rate, rate_bps)

    server.start()
    testbed.sim.run(until=duration)
    server.stop()
    run = LayeredRun(
        mode=mode,
        duration=duration,
        transmission_series=server.transmission_series(),
        reported_series=server.reported_rate_series(),
        layer_history=list(server.layer_history),
        packets_sent=server.packets_sent,
        bytes_sent=server.bytes_sent,
        bytes_received=reflector.bytes_received,
        loss_events=server.tracker.loss_events,
    )
    reflector.close()
    return run


def run_layered_trial(params: dict) -> dict:
    """JSON-able trial wrapper around :func:`run_layered` (Figures 8-10).

    ``params`` carries every knob that affects the run, so the trial cache
    key fully determines the result; the LayeredRun dataclass is returned as
    a plain dict (series become ``[time, value]`` pairs).
    """
    outcome = run_layered(
        params["mode"],
        duration=params["duration"],
        bandwidth_schedule=[tuple(step) for step in params["bandwidth_schedule"]],
        ack_every_packets=params.get("ack_every_packets", 1),
        ack_delay=params.get("ack_delay"),
        thresh=params.get("thresh", 1.5),
        seed=params.get("seed", 11),
        rate_bin=params.get("rate_bin", 0.5),
    )
    return asdict(outcome)
