"""Registry mapping experiment names to their trials/trial/reduce triples.

Each registered experiment follows the contract documented in
``docs/parallel_runner.md``:

* ``trials(**kwargs) -> list[TrialSpec]`` — pure enumeration of the
  independent work units, in deterministic order;
* ``trial(params) -> JSON-able`` — execute one spec (this is what pool
  workers call, looked up by ``TrialSpec.experiment``);
* ``reduce(outcomes) -> ExperimentResult`` — deterministic merge of the
  outcomes in spec order.

``supports_seeds`` marks experiments whose ``trials()`` accepts a ``seeds``
keyword (the CLI's ``--seeds N`` maps to ``seeds=(1..N)`` for those);
``smoke`` holds reduced-workload keyword arguments used by ``--smoke`` runs
in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from . import (
    ablations,
    aggressiveness,
    burstloss,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    hostile,
    scale,
    table1,
    timeseries,
)
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec

__all__ = ["ExperimentSpec", "SPECS", "get_spec", "register", "unregister"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the runner needs to shard, execute and merge one experiment."""

    name: str
    trials: Callable[..., List[TrialSpec]]
    trial: Callable[[dict], Any]
    reduce: Callable[[Sequence[TrialOutcome]], ExperimentResult]
    run: Callable[..., ExperimentResult]
    supports_seeds: bool = False
    smoke: Dict[str, Any] = field(default_factory=dict)


SPECS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> None:
    """Add (or replace) an experiment spec; tests use this for fakes."""
    SPECS[spec.name] = spec


def unregister(name: str) -> Optional[ExperimentSpec]:
    """Remove a spec (no-op if absent); returns whatever was removed."""
    return SPECS.pop(name, None)


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec by name; raises KeyError with the known names."""
    if name not in SPECS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(SPECS)}")
    return SPECS[name]


register(
    ExperimentSpec(
        name="figure3",
        trials=figure3.trials,
        trial=figure3.run_trial,
        reduce=figure3.reduce,
        run=figure3.run,
        supports_seeds=True,
        smoke={"loss_rates": (0.0, 0.01, 0.03), "transfer_bytes": 200_000},
    )
)
register(
    ExperimentSpec(
        name="figure4",
        trials=figure4.trials,
        trial=figure4.run_trial,
        reduce=figure4.reduce,
        run=figure4.run,
        smoke={"buffer_counts": (1_000, 5_000)},
    )
)
register(
    ExperimentSpec(
        name="figure5",
        trials=figure5.trials,
        # Figure 5 shares Figure 4's trials; its specs carry
        # experiment="figure4", so workers resolve to figure4.run_trial and
        # the cache entries are shared between the two figures.
        trial=figure4.run_trial,
        reduce=figure5.reduce,
        run=figure5.run,
        smoke={"buffer_counts": (1_000, 5_000)},
    )
)
register(
    ExperimentSpec(
        name="figure6",
        trials=figure6.trials,
        trial=figure6.run_trial,
        reduce=figure6.reduce,
        run=figure6.run,
        smoke={"packet_sizes": (168, 1400), "npackets": 300},
    )
)
register(
    ExperimentSpec(
        name="table1",
        trials=table1.trials,
        trial=table1.run_trial,
        reduce=table1.reduce,
        run=table1.run,
        smoke={"packet_size": 700, "npackets": 250},
    )
)
register(
    ExperimentSpec(
        name="figure7",
        trials=figure7.trials,
        trial=figure7.run_trial,
        reduce=figure7.reduce,
        run=figure7.run,
        supports_seeds=True,
        smoke={"file_size": 64 * 1024, "n_requests": 5},
    )
)
register(
    ExperimentSpec(
        name="figure8",
        trials=figure8.trials,
        trial=figure8.run_trial,
        reduce=figure8.reduce,
        run=figure8.run,
        smoke={"duration": 12.0},
    )
)
register(
    ExperimentSpec(
        name="figure9",
        trials=figure9.trials,
        trial=figure9.run_trial,
        reduce=figure9.reduce,
        run=figure9.run,
        smoke={"duration": 10.0},
    )
)
register(
    ExperimentSpec(
        name="figure10",
        trials=figure10.trials,
        trial=figure10.run_trial,
        reduce=figure10.reduce,
        run=figure10.run,
        smoke={"duration": 30.0},
    )
)
register(
    ExperimentSpec(
        name="ablations",
        trials=ablations.trials,
        trial=ablations.run_trial,
        reduce=ablations.reduce,
        run=ablations.run,
    )
)
register(
    ExperimentSpec(
        name="timeseries",
        trials=timeseries.trials,
        trial=timeseries.run_trial,
        reduce=timeseries.reduce,
        run=timeseries.run,
        smoke={"duration": 6.0, "sample_interval": 0.5},
    )
)
register(
    ExperimentSpec(
        name="scale",
        trials=scale.trials,
        trial=scale.run_trial,
        reduce=scale.reduce,
        run=scale.run,
        supports_seeds=True,
        smoke={"host_counts": (2, 4), "duration": 6.0},
    )
)
register(
    ExperimentSpec(
        name="hostile",
        trials=hostile.trials,
        trial=hostile.run_trial,
        reduce=hostile.reduce,
        run=hostile.run,
        supports_seeds=True,
        smoke={"blast_fractions": (0.0, 0.5), "duration": 8.0},
    )
)
register(
    ExperimentSpec(
        name="burstloss",
        trials=burstloss.trials,
        trial=burstloss.run_trial,
        reduce=burstloss.reduce,
        run=burstloss.run,
        supports_seeds=True,
        smoke={"burst_lengths": (0, 4), "duration": 10.0},
    )
)
register(
    ExperimentSpec(
        name="aggressiveness",
        trials=aggressiveness.trials,
        trial=aggressiveness.run_trial,
        reduce=aggressiveness.reduce,
        run=aggressiveness.run,
        supports_seeds=True,
        smoke={"ensemble_sizes": (2, 4), "duration": 8.0},
    )
)
