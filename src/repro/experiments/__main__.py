"""``python -m repro.experiments <name>`` — delegate to the CLI runner."""

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main())
