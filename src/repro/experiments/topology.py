"""Thin :class:`~repro.scenario.spec.ScenarioSpec` factories for the paper's testbeds.

The three point-to-point environments the paper measured on are now
declarative specs compiled through the scenario layer
(:mod:`repro.scenario`) instead of hand-wired constructions:

* :func:`lan_pair_spec` — the Utah testbed: two fast hosts on a switched
  100 Mbps Ethernet (throughput / CPU / API-overhead studies, Figures 4-6).
* :func:`dummynet_pair_spec` — the same hosts behind a Dummynet pipe with
  configurable bandwidth, RTT and random loss (Figure 3).
* :func:`wan_pair_spec` — a vBNS-like wide-area path between MIT and Utah
  (~75 ms RTT, ~2 MB/s available) used by the sharing and adaptation
  studies (Figures 7-10).

:func:`build_testbed` compiles any pair spec into the familiar
:class:`Testbed` handle; the legacy ``lan_pair`` / ``dummynet_pair`` /
``wan_pair`` helpers remain as one-liners over it, so existing call sites
keep working while every experiment's wiring goes through
:func:`repro.scenario.builder.build` — event-for-event identical to the old
hand-wired path, which keeps the per-seed experiment artifacts
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netsim import Channel, Host, Simulator
from ..scenario import HostSpec, LinkSpec, ScenarioSpec, build

__all__ = [
    "Testbed",
    "build_testbed",
    "pair_spec",
    "lan_pair_spec",
    "dummynet_pair_spec",
    "wan_pair_spec",
    "lan_pair",
    "dummynet_pair",
    "wan_pair",
]


@dataclass
class Testbed:
    """A simulator plus one sender/receiver pair joined by a channel."""

    sim: Simulator
    sender: Host
    receiver: Host
    channel: Channel


#: Memoized sealed pair specs, keyed by the full parameter tuple.  Every
#: experiment builds thousands of identical testbeds per sweep; handing out
#: one shared, validated, frozen spec per parameter set turns the per-trial
#: spec-compile cost into a dict probe (see the ``scenario_build`` perf row).
_PAIR_SPEC_CACHE: dict = {}


def pair_spec(
    name: str,
    rate_bps: float,
    one_way_delay: float,
    loss_rate: float = 0.0,
    queue_limit: int = 100,
    ecn_threshold: Optional[int] = None,
    with_costs: bool = True,
) -> ScenarioSpec:
    """A sender/receiver pair joined by one Dummynet-style channel.

    Loss applies to the forward (data) direction only — the paper's loss
    experiments kept the ACK path clean — and the seed stays out of the
    spec: :func:`build_testbed` passes the run seed to the compiler.

    The returned spec is **shared and sealed** (validated once, then
    frozen): mutating it raises ``SpecError``.  Callers that need a variant
    should construct their own :class:`ScenarioSpec`.
    """
    key = (name, rate_bps, one_way_delay, loss_rate, queue_limit, ecn_threshold, with_costs)
    spec = _PAIR_SPEC_CACHE.get(key)
    if spec is None:
        spec = ScenarioSpec(
            name=name,
            hosts=[
                HostSpec(name="sender", addr="10.1.0.1", costs=with_costs),
                HostSpec(name="receiver", addr="10.2.0.1", costs=with_costs),
            ],
            links=[
                LinkSpec(
                    a="sender",
                    b="receiver",
                    rate_bps=rate_bps,
                    delay=one_way_delay,
                    queue_limit=queue_limit,
                    loss_rate=loss_rate,
                    reverse_loss_rate=0.0,
                    ecn_threshold=ecn_threshold,
                )
            ],
        ).seal()
        _PAIR_SPEC_CACHE[key] = spec
    return spec


def build_testbed(spec: ScenarioSpec, seed: int = 0) -> Testbed:
    """Compile a pair spec into the classic :class:`Testbed` handle."""
    scenario = build(spec, seed=seed)
    link = spec.links[0]
    return Testbed(
        sim=scenario.sim,
        sender=scenario.host(link.a),
        receiver=scenario.host(link.b),
        channel=scenario.channel(link.a, link.b),
    )


def lan_pair_spec(with_costs: bool = True) -> ScenarioSpec:
    """100 Mbps switched Ethernet, ~1 ms RTT, no loss (Figures 4-6)."""
    return pair_spec(
        "lan_pair",
        rate_bps=100e6,
        one_way_delay=0.5e-3,
        loss_rate=0.0,
        queue_limit=128,
        with_costs=with_costs,
    )


def dummynet_pair_spec(
    loss_rate: float,
    rate_bps: float = 10e6,
    rtt: float = 0.060,
    queue_limit: int = 50,
    with_costs: bool = True,
) -> ScenarioSpec:
    """Dummynet-shaped path: 10 Mbps, 60 ms RTT, configurable loss (Figure 3)."""
    return pair_spec(
        "dummynet_pair",
        rate_bps=rate_bps,
        one_way_delay=rtt / 2.0,
        loss_rate=loss_rate,
        queue_limit=queue_limit,
        with_costs=with_costs,
    )


def wan_pair_spec(
    rate_bps: float = 16e6,
    rtt: float = 0.075,
    loss_rate: float = 0.0,
    queue_limit: int = 60,
    with_costs: bool = True,
) -> ScenarioSpec:
    """vBNS-like MIT<->Utah wide-area path (Figures 7-10)."""
    return pair_spec(
        "wan_pair",
        rate_bps=rate_bps,
        one_way_delay=rtt / 2.0,
        loss_rate=loss_rate,
        queue_limit=queue_limit,
        with_costs=with_costs,
    )


def lan_pair(seed: int = 0, with_costs: bool = True) -> Testbed:
    """Compiled :func:`lan_pair_spec` (kept for existing call sites)."""
    return build_testbed(lan_pair_spec(with_costs=with_costs), seed=seed)


def dummynet_pair(
    loss_rate: float,
    rate_bps: float = 10e6,
    rtt: float = 0.060,
    queue_limit: int = 50,
    seed: int = 0,
    with_costs: bool = True,
) -> Testbed:
    """Compiled :func:`dummynet_pair_spec` (kept for existing call sites)."""
    return build_testbed(
        dummynet_pair_spec(
            loss_rate, rate_bps=rate_bps, rtt=rtt, queue_limit=queue_limit, with_costs=with_costs
        ),
        seed=seed,
    )


def wan_pair(
    rate_bps: float = 16e6,
    rtt: float = 0.075,
    loss_rate: float = 0.0,
    queue_limit: int = 60,
    seed: int = 0,
    with_costs: bool = True,
) -> Testbed:
    """Compiled :func:`wan_pair_spec` (kept for existing call sites)."""
    return build_testbed(
        wan_pair_spec(
            rate_bps=rate_bps, rtt=rtt, loss_rate=loss_rate, queue_limit=queue_limit,
            with_costs=with_costs
        ),
        seed=seed,
    )
