"""Canned topologies matching the paper's two test environments.

* :func:`lan_pair` — the Utah testbed configuration: two fast hosts on a
  switched 100 Mbps Ethernet (used for the throughput / CPU / API-overhead
  studies, Figures 4-6).
* :func:`dummynet_pair` — the same hosts behind a Dummynet pipe with
  configurable bandwidth, RTT and random loss (Figure 3).
* :func:`wan_pair` — a vBNS-like wide-area path between MIT and Utah
  (~75 ms RTT, ~2 MB/s available) used by the sharing and adaptation
  studies (Figures 7-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hostmodel import HostCosts
from ..netsim import Channel, Host, Simulator

__all__ = ["Testbed", "lan_pair", "dummynet_pair", "wan_pair"]


@dataclass
class Testbed:
    """A simulator plus one sender/receiver pair joined by a channel."""

    sim: Simulator
    sender: Host
    receiver: Host
    channel: Channel


def _pair(
    rate_bps: float,
    one_way_delay: float,
    loss_rate: float = 0.0,
    queue_limit: int = 100,
    ecn_threshold: Optional[int] = None,
    seed: int = 0,
    with_costs: bool = True,
) -> Testbed:
    sim = Simulator()
    costs = HostCosts() if with_costs else None
    sender = Host(sim, "sender", "10.1.0.1", costs=costs)
    receiver = Host(sim, "receiver", "10.2.0.1", costs=HostCosts() if with_costs else None)
    channel = Channel(
        sim,
        sender,
        receiver,
        rate_bps=rate_bps,
        one_way_delay=one_way_delay,
        queue_limit=queue_limit,
        loss_rate=loss_rate,
        reverse_loss_rate=0.0,
        ecn_threshold=ecn_threshold,
        seed=seed,
    )
    return Testbed(sim=sim, sender=sender, receiver=receiver, channel=channel)


def lan_pair(seed: int = 0, with_costs: bool = True) -> Testbed:
    """100 Mbps switched Ethernet, ~1 ms RTT, no loss (Figures 4-6)."""
    return _pair(
        rate_bps=100e6,
        one_way_delay=0.5e-3,
        loss_rate=0.0,
        queue_limit=128,
        seed=seed,
        with_costs=with_costs,
    )


def dummynet_pair(
    loss_rate: float,
    rate_bps: float = 10e6,
    rtt: float = 0.060,
    queue_limit: int = 50,
    seed: int = 0,
    with_costs: bool = True,
) -> Testbed:
    """Dummynet-shaped path: 10 Mbps, 60 ms RTT, configurable loss (Figure 3)."""
    return _pair(
        rate_bps=rate_bps,
        one_way_delay=rtt / 2.0,
        loss_rate=loss_rate,
        queue_limit=queue_limit,
        seed=seed,
        with_costs=with_costs,
    )


def wan_pair(
    rate_bps: float = 16e6,
    rtt: float = 0.075,
    loss_rate: float = 0.0,
    queue_limit: int = 60,
    seed: int = 0,
    with_costs: bool = True,
) -> Testbed:
    """vBNS-like MIT<->Utah wide-area path (Figures 7-10)."""
    return _pair(
        rate_bps=rate_bps,
        one_way_delay=rtt / 2.0,
        loss_rate=loss_rate,
        queue_limit=queue_limit,
        seed=seed,
        with_costs=with_costs,
    )
