"""Ensemble aggressiveness: is a group of CM flows friendlier than parallel TCPs?

The paper's second evaluation question asks whether the CM's congestion
control is *correct*: "by integrating flow information between both kernel
protocols and user applications, we ensure that an ensemble of concurrent
flows is not an overly aggressive user of the network."  The motivating
problem (§1, §6) is that N parallel TCP connections between the same pair of
hosts probe the bottleneck N times as aggressively as a single connection
and crowd out other traffic.

This experiment makes that claim measurable.  On a dumbbell topology, a
single *reference* TCP/Linux flow (a different sender) shares the bottleneck
with N concurrent connections from one web-server-like host to one client:

* ``independent`` — the N connections are ordinary TCP/Linux flows, each
  with its own congestion window (the status quo the paper criticises);
* ``cm`` — the N connections are TCP/CM flows sharing one macroflow.

The measured quantity is the fraction of the bottleneck the reference flow
obtains.  With independent connections it is pushed towards 1/(N+1); with
the CM the ensemble behaves like a single flow and the reference flow keeps
roughly half of the link.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import jain_fairness
from ..analysis.stats import summarize
from ..scenario import DumbbellSpec, ScenarioSpec, build
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "run_scenario", "dumbbell_spec"]

DEFAULT_SEEDS = (17,)

BOTTLENECK_BPS = 8e6
BOTTLENECK_DELAY = 0.02
RECEIVE_WINDOW = 256 * 1024


def dumbbell_spec(mode: str) -> ScenarioSpec:
    """The two-pair shared-bottleneck topology as a declarative spec.

    Sender 0 hosts the ensemble (with a CM in ``cm`` mode), sender 1 the
    single reference flow; the flows themselves are wired by
    :func:`run_scenario`, which needs per-connection handles the app layer
    does not expose.
    """
    return ScenarioSpec(
        name=f"aggressiveness_{mode}",
        dumbbell=DumbbellSpec(
            n_pairs=2,
            bottleneck_bps=BOTTLENECK_BPS,
            bottleneck_delay=BOTTLENECK_DELAY,
            queue_limit=40,
            with_costs=True,
            cm_senders=(0,) if mode == "cm" else (),
        ),
    )


def run_scenario(mode: str, n_ensemble: int, duration: float, seed: int = 17) -> dict:
    """Run one scenario and return byte counts for the reference and ensemble flows."""
    if mode not in ("cm", "independent"):
        raise ValueError(f"unknown ensemble mode {mode!r}")
    scenario = build(dumbbell_spec(mode), seed=seed)
    sim = scenario.sim
    ensemble_host = scenario.host("sender0")
    reference_host = scenario.host("sender1")
    ensemble_client = scenario.host("receiver0")
    reference_client = scenario.host("receiver1")

    # The reference flow: one ordinary TCP connection from the other sender.
    reference_listener = TCPListener(reference_client, 80)
    reference = RenoTCPSender(reference_host, reference_client.addr, 80,
                              receive_window=RECEIVE_WINDOW)
    reference.send(10 ** 9)

    # The ensemble: n concurrent connections from one host to one client.
    listeners: List[TCPListener] = []
    ensemble: List = []
    for index in range(n_ensemble):
        port = 8000 + index
        listeners.append(TCPListener(ensemble_client, port))
        if mode == "cm":
            sender = CMTCPSender(ensemble_host, ensemble_client.addr, port,
                                 receive_window=RECEIVE_WINDOW)
        else:
            sender = RenoTCPSender(ensemble_host, ensemble_client.addr, port,
                                   receive_window=RECEIVE_WINDOW)
        sender.send(10 ** 9)
        ensemble.append(sender)

    sim.run(until=duration)
    ensemble_bytes = sum(s.bytes_acked for s in ensemble)
    reference_bytes = reference.bytes_acked
    total = max(1, ensemble_bytes + reference_bytes)
    return {
        "mode": mode,
        "n_ensemble": n_ensemble,
        "reference_bytes": reference_bytes,
        "ensemble_bytes": ensemble_bytes,
        "reference_share": reference_bytes / total,
        "flow_fairness": jain_fairness([s.bytes_acked for s in ensemble] + [reference_bytes]),
    }


def run_trial(params: dict) -> dict:
    """One (mode, ensemble size, seed) dumbbell scenario."""
    return run_scenario(params["mode"], params["n"], params["duration"], seed=params["seed"])


def trials(
    ensemble_sizes: Sequence[int] = (2, 4, 6),
    duration: float = 12.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (ensemble size, mode, seed)."""
    return [
        TrialSpec(
            "aggressiveness",
            {"mode": mode, "n": n, "duration": duration, "seed": seed},
        )
        for n in ensemble_sizes
        for mode in ("cm", "independent")
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average each scenario's reference share over seeds and tabulate."""
    result = ExperimentResult(
        name="aggressiveness",
        title="Share of the bottleneck left to a single competing TCP flow",
        columns=["ensemble_size", "reference_share_vs_cm", "reference_share_vs_independent",
                 "ideal_single_flow", "ideal_independent"],
    )
    grouped: Dict[int, Dict[str, List[float]]] = {}
    for outcome in outcomes:
        params = outcome.spec.params
        per_size = grouped.setdefault(params["n"], {"cm": [], "independent": []})
        per_size[params["mode"]].append(outcome.value["reference_share"])
    for n, shares in grouped.items():
        result.add_row(
            n,
            summarize(shares["cm"]).mean,
            summarize(shares["independent"]).mean,
            0.5,
            1.0 / (n + 1),
        )
    result.notes.append(
        "The CM ensemble shares one macroflow and so never takes more of the bottleneck than a single "
        "TCP flow would (here its per-connection windows are small, making it even more conservative); "
        "independent parallel connections squeeze the reference flow towards 1/(N+1).  This reproduces "
        "the paper's 'ensemble is not an overly aggressive user of the network' claim."
    )
    return result


def run(
    ensemble_sizes: Sequence[int] = (2, 4, 6),
    duration: float = 12.0,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Compare the reference flow's share against CM and independent ensembles."""
    specs = trials(ensemble_sizes=ensemble_sizes, duration=duration, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
