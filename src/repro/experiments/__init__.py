"""Experiment harnesses reproducing every table and figure in the paper.

Each module exposes ``run(...) -> ExperimentResult``; the mapping from paper
artifact to module is recorded in DESIGN.md's per-experiment index, and the
``cm-experiments`` CLI (see :mod:`repro.experiments.runner`) runs them from
the command line.
"""

from .base import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
