"""Experiment harnesses reproducing every table and figure in the paper.

Each module exposes a ``trials() -> list[TrialSpec]`` / ``reduce(outcomes)``
split (plus the classic ``run(...) -> ExperimentResult`` convenience wrapper)
so the ``cm-experiments`` CLI (see :mod:`repro.experiments.runner`) can shard
the independent trials across worker processes and memoize them in the
on-disk trial cache.  The mapping from paper artifact to module is recorded
in DESIGN.md's per-experiment index; the trial/reduce contract is documented
in ``docs/parallel_runner.md``.
"""

from .base import ExperimentResult, format_table
from .parallel import TrialCache, TrialOutcome, TrialSpec, run_trials

__all__ = [
    "ExperimentResult",
    "format_table",
    "TrialSpec",
    "TrialOutcome",
    "TrialCache",
    "run_trials",
]
