"""Command-line runner for the reproduction experiments.

Usage (installed as the ``cm-experiments`` console script)::

    cm-experiments figure3
    cm-experiments figure3 --seeds 5 --jobs 4 --json-dir out/
    cm-experiments figure7 figure8 --jobs 2
    cm-experiments all
    python -m repro.experiments table1

Each experiment prints the table/series it reproduces plus notes comparing
against the paper's reported behaviour.  Trials shard across ``--jobs``
worker processes and are memoized in a content-addressed on-disk cache
(``--cache-dir``, disable with ``--no-cache``); ``--json-dir`` writes the
deterministic JSON artifact plus a ``.meta.json`` provenance sidecar per
experiment.  See ``docs/parallel_runner.md`` for the trial/reduce contract.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from . import artifacts
from .base import ExperimentResult
from .parallel import TrialCache, run_trials
from .registry import SPECS, get_spec

__all__ = ["EXPERIMENTS", "DEFAULT_CACHE_DIR", "run_experiment", "main"]

#: Default location of the content-addressed trial cache (relative to CWD).
DEFAULT_CACHE_DIR = ".cm-trial-cache"

#: Legacy name -> ``run`` callable mapping, kept for API compatibility.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    name: spec.run for name, spec in SPECS.items()
}


def run_experiment(
    name: str,
    seeds: Optional[Sequence[int]] = None,
    jobs: int = 1,
    cache: Optional[TrialCache] = None,
    smoke: bool = False,
    verbose: bool = True,
) -> ExperimentResult:
    """Run a single experiment by name through the sharded trial layer.

    ``seeds`` is honoured by seed-aware experiments (figure3, figure7,
    aggressiveness) and ignored by the rest; ``jobs`` shards trials across
    worker processes; ``cache`` memoizes trial results on disk.  The returned
    result carries provenance (seeds, jobs, git rev, wall clock, cache
    counters) that :func:`repro.experiments.artifacts.write_artifacts`
    records in the ``.meta.json`` sidecar.
    """
    spec = get_spec(name)
    progress = (lambda msg: print(f"  [{name}] {msg}", file=sys.stderr)) if verbose else None
    kwargs = dict(spec.smoke) if smoke else {}
    if seeds is not None and spec.supports_seeds:
        kwargs["seeds"] = tuple(seeds)
    trial_specs = spec.trials(**kwargs)
    started = time.perf_counter()
    outcomes = run_trials(trial_specs, jobs=jobs, cache=cache, progress=progress)
    result = spec.reduce(outcomes)
    result.provenance = artifacts.build_provenance(
        experiment=name,
        seeds=seeds,
        jobs=jobs,
        wall_clock_s=time.perf_counter() - started,
        n_trials=len(trial_specs),
        n_cached=sum(1 for outcome in outcomes if outcome.cached),
    )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``cm-experiments`` script."""
    parser = argparse.ArgumentParser(description="Reproduce the Congestion Manager paper's evaluation")
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (figure3..figure10, table1, ablations, timeseries) or 'all'",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress messages")
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="average seed-aware experiments over seeds 1..N (others ignore this)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard trials across N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        metavar="DIR",
        help="write <name>.json artifacts plus <name>.meta.json provenance sidecars to DIR",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"content-addressed trial cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the on-disk trial cache")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="register written artifacts in this sqlite result store "
             "(implies nothing without --json-dir; REPRO_RESULT_STORE is the env fallback)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workloads for CI smoke runs (same code paths, smaller sweeps)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.seeds is not None and args.seeds < 1:
        parser.error("--seeds must be >= 1")

    seeds = tuple(range(1, args.seeds + 1)) if args.seeds is not None else None
    cache = None if args.no_cache else TrialCache(args.cache_dir)

    names = list(SPECS) if "all" in args.experiments else args.experiments
    exit_code = 0
    for name in names:
        if name not in SPECS:
            print(f"unknown experiment: {name}", file=sys.stderr)
            exit_code = 2
            continue
        started = time.time()
        try:
            result = run_experiment(
                name,
                seeds=seeds,
                jobs=args.jobs,
                cache=cache,
                smoke=args.smoke,
                verbose=not args.quiet,
            )
        except Exception:
            # One broken experiment must not take down the rest of an
            # ``all`` run: report it, flag the exit code, keep going.
            print(f"experiment {name} failed:", file=sys.stderr)
            traceback.print_exc()
            exit_code = exit_code or 1
            continue
        print(result.to_text())
        if args.json_dir:
            payload_path, meta_path = artifacts.write_artifacts(
                result, args.json_dir, store=args.store
            )
            print(f"(wrote {payload_path} and {meta_path})", file=sys.stderr)
        elif args.store:
            artifacts.register_artifact(result, source=f"{name}.json", store=args.store)
            print(f"(registered {name} in {args.store})", file=sys.stderr)
        print(f"({name} completed in {time.time() - started:.1f}s wall clock)\n")
    if cache is not None and not args.quiet:
        print(
            f"trial cache: {cache.hits} hits, {cache.misses} misses ({args.cache_dir})",
            file=sys.stderr,
        )
    return exit_code


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
