"""Command-line runner for the reproduction experiments.

Usage (installed as the ``cm-experiments`` console script)::

    cm-experiments figure3
    cm-experiments figure7 figure8
    cm-experiments all
    python -m repro.experiments table1

Each experiment prints the table/series it reproduces plus notes comparing
against the paper's reported behaviour.  EXPERIMENTS.md records one full run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import (
    ablations,
    aggressiveness,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
)
from .base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "table1": table1.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "ablations": ablations.run,
    "aggressiveness": aggressiveness.run,
}


def run_experiment(name: str, verbose: bool = True) -> ExperimentResult:
    """Run a single experiment by name."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    progress = (lambda msg: print(f"  [{name}] {msg}", file=sys.stderr)) if verbose else None
    return EXPERIMENTS[name](progress=progress)


def main(argv: List[str] = None) -> int:
    """Entry point for the ``cm-experiments`` script."""
    parser = argparse.ArgumentParser(description="Reproduce the Congestion Manager paper's evaluation")
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (figure3..figure10, table1, ablations) or 'all'",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress messages")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    exit_code = 0
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment: {name}", file=sys.stderr)
            exit_code = 2
            continue
        started = time.time()
        result = run_experiment(name, verbose=not args.quiet)
        print(result.to_text())
        print(f"({name} completed in {time.time() - started:.1f}s wall clock)\n")
    return exit_code


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
