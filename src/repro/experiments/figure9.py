"""Figure 9: adaptive layered application using the rate-callback API.

The server is self-clocked at the nominal rate of its current layer and only
switches layer when a ``cmapp_update`` callback (armed with ``cm_thresh``)
reports that conditions changed beyond the configured factors.  Compared to
the ALF sender of Figure 8 it adapts in coarser steps and relies on
short-term kernel buffering for smoothing — the reproduced observable is
that it switches layers noticeably less often while still following the
imposed bandwidth changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis import oscillation_count
from .base import ExperimentResult
from .layered_common import DEFAULT_BANDWIDTH_SCHEDULE, run_layered_trial
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce"]

run_trial = run_layered_trial


def trials(
    duration: float = 20.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
) -> List[TrialSpec]:
    """A single trial: one rate-callback layered-streaming run."""
    return [
        TrialSpec(
            "figure9",
            {
                "mode": "rate",
                "duration": duration,
                "bandwidth_schedule": [list(step) for step in bandwidth_schedule],
                "ack_every_packets": 1,
                "ack_delay": None,
                "thresh": 1.5,
                "seed": 11,
                "rate_bin": 0.5,
            },
        )
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Turn the layered-run dict into the Figure 9 series and summary rows."""
    outcome = outcomes[0].value
    transmission_series = [tuple(point) for point in outcome["transmission_series"]]
    reported_series = [tuple(point) for point in outcome["reported_series"]]
    result = ExperimentResult(
        name="figure9",
        title="Layered application, rate-callback API: rate over time (bytes/s)",
        columns=["metric", "value"],
    )
    result.add_series("transmission_rate", transmission_series)
    result.add_series("cm_reported_rate", reported_series)
    mean_tx = (
        sum(v for _t, v in transmission_series) / len(transmission_series)
        if transmission_series
        else 0.0
    )
    result.add_row("mean_transmission_rate_Bps", mean_tx)
    result.add_row("packets_sent", outcome["packets_sent"])
    result.add_row("bytes_received_at_client", outcome["bytes_received"])
    result.add_row("layer_switches", oscillation_count([layer for _t, layer in outcome["layer_history"]]))
    result.add_row("rate_callbacks", len(reported_series))
    result.notes.append(
        "Paper: the rate-callback sender adapts with fewer, threshold-driven layer changes "
        "than the ALF sender (Figure 8) at a much lower notification overhead."
    )
    return result


def run(
    duration: float = 20.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the rate-callback layered server and report its rate time-series."""
    specs = trials(duration=duration, bandwidth_schedule=bandwidth_schedule)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
