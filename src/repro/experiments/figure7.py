"""Figure 7: sharing TCP congestion state across sequential web requests.

A client fetches the same 128 kB file nine times, starting a new request
500 ms after the previous request started, and each request uses a brand-new
TCP connection.  Without the CM every connection slow-starts from scratch;
with the CM all the connections (being to the same destination) share one
macroflow, so later connections start with the congestion window and RTT
estimate the earlier ones built up — the paper measures roughly a 40 %
improvement in completion time for the later requests, while the *first* CM
request is one RTT slower because the CM's initial window is 1 MTU versus
Linux's 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.stats import summarize
from ..apps.webserver import FileServer, WebClient
from ..core import CongestionManager
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials
from .topology import build_testbed, wan_pair_spec

__all__ = ["run", "trials", "run_trial", "reduce"]

FILE_SIZE = 128 * 1024
N_REQUESTS = 9
REQUEST_SPACING = 0.5
DEFAULT_SEEDS = (3,)


def _run_variant(variant: str, file_size: int, n_requests: int, spacing: float, seed: int):
    testbed = build_testbed(wan_pair_spec(), seed=seed)
    if variant == "cm":
        CongestionManager(testbed.sender)
    server = FileServer(testbed.sender, port=80, variant=variant)
    client = WebClient(testbed.receiver, testbed.sender.addr, 80)

    for index in range(n_requests):
        testbed.sim.schedule(index * spacing, client.fetch, file_size)
    testbed.sim.run(until=n_requests * spacing + 120.0)
    durations = [fetch.duration for fetch in client.fetches]
    server.close()
    client.close()
    return durations


def run_trial(params: dict) -> List[float]:
    """All request durations for one (variant, seed) run of the fetch train."""
    return _run_variant(
        params["variant"],
        params["file_size"],
        params["n_requests"],
        params["spacing"],
        params["seed"],
    )


def trials(
    file_size: int = FILE_SIZE,
    n_requests: int = N_REQUESTS,
    spacing: float = REQUEST_SPACING,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (variant, seed); each yields the full request train."""
    return [
        TrialSpec(
            "figure7",
            {
                "variant": variant,
                "file_size": file_size,
                "n_requests": n_requests,
                "spacing": spacing,
                "seed": seed,
            },
        )
        for variant in ("cm", "linux")
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average per-request durations across seeds for both variants."""
    by_variant: Dict[str, List[List[float]]] = {"cm": [], "linux": []}
    n_requests = 0
    for outcome in outcomes:
        by_variant[outcome.spec.params["variant"]].append(list(outcome.value))
        n_requests = outcome.spec.params["n_requests"]
    result = ExperimentResult(
        name="figure7",
        title="Sequential 128 kB fetches, ms to complete each request",
        columns=["request", "tcp_cm_ms", "tcp_linux_ms", "cm_speedup_%", "cm_ci95_ms", "linux_ci95_ms"],
    )
    n_common = min(len(durations) for durations in by_variant["cm"] + by_variant["linux"])
    cm_durations: List[float] = []
    linux_durations: List[float] = []
    for index in range(n_common):
        cm = summarize([durations[index] for durations in by_variant["cm"]])
        linux = summarize([durations[index] for durations in by_variant["linux"]])
        cm_durations.append(cm.mean)
        linux_durations.append(linux.mean)
        speedup = 100.0 * (linux.mean - cm.mean) / linux.mean if linux.mean > 0 else 0.0
        result.add_row(
            index + 1, cm.mean * 1000.0, linux.mean * 1000.0, speedup,
            cm.ci95 * 1000.0, linux.ci95 * 1000.0,
        )
    later_cm = sum(cm_durations[2:]) / max(1, len(cm_durations[2:]))
    later_linux = sum(linux_durations[2:]) / max(1, len(linux_durations[2:]))
    if later_linux > 0:
        result.notes.append(
            f"Later requests (3..{n_requests}) improve by "
            f"{100.0 * (later_linux - later_cm) / later_linux:.1f}% with the CM (paper: ~40%)."
        )
    result.notes.append(
        "Paper: the first CM request pays one extra RTT (initial window 1 vs 2); subsequent "
        "requests avoid slow start entirely by inheriting the macroflow's window."
    )
    return result


def run(
    file_size: int = FILE_SIZE,
    n_requests: int = N_REQUESTS,
    spacing: float = REQUEST_SPACING,
    seed: int = 3,
    seeds: Optional[Sequence[int]] = None,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Time every request for both server variants (averaged over ``seeds``)."""
    if seeds is None:
        seeds = (seed,)
    specs = trials(file_size=file_size, n_requests=n_requests, spacing=spacing, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
