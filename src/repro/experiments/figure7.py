"""Figure 7: sharing TCP congestion state across sequential web requests.

A client fetches the same 128 kB file nine times, starting a new request
500 ms after the previous request started, and each request uses a brand-new
TCP connection.  Without the CM every connection slow-starts from scratch;
with the CM all the connections (being to the same destination) share one
macroflow, so later connections start with the congestion window and RTT
estimate the earlier ones built up — the paper measures roughly a 40 %
improvement in completion time for the later requests, while the *first* CM
request is one RTT slower because the CM's initial window is 1 MTU versus
Linux's 2.
"""

from __future__ import annotations

from typing import Optional

from ..apps.webserver import FileServer, WebClient
from ..core import CongestionManager
from .base import ExperimentResult
from .topology import wan_pair

__all__ = ["run"]

FILE_SIZE = 128 * 1024
N_REQUESTS = 9
REQUEST_SPACING = 0.5


def _run_variant(variant: str, file_size: int, n_requests: int, spacing: float, seed: int):
    testbed = wan_pair(seed=seed)
    if variant == "cm":
        CongestionManager(testbed.sender)
    server = FileServer(testbed.sender, port=80, variant=variant)
    client = WebClient(testbed.receiver, testbed.sender.addr, 80)

    for index in range(n_requests):
        testbed.sim.schedule(index * spacing, client.fetch, file_size)
    testbed.sim.run(until=n_requests * spacing + 120.0)
    durations = [fetch.duration for fetch in client.fetches]
    server.close()
    client.close()
    return durations


def run(
    file_size: int = FILE_SIZE,
    n_requests: int = N_REQUESTS,
    spacing: float = REQUEST_SPACING,
    seed: int = 3,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Time every request for both server variants."""
    cm_durations = _run_variant("cm", file_size, n_requests, spacing, seed)
    linux_durations = _run_variant("linux", file_size, n_requests, spacing, seed)
    result = ExperimentResult(
        name="figure7",
        title="Sequential 128 kB fetches, ms to complete each request",
        columns=["request", "tcp_cm_ms", "tcp_linux_ms", "cm_speedup_%"],
    )
    for index, (cm_d, linux_d) in enumerate(zip(cm_durations, linux_durations), start=1):
        speedup = 100.0 * (linux_d - cm_d) / linux_d if linux_d > 0 else 0.0
        result.add_row(index, cm_d * 1000.0, linux_d * 1000.0, speedup)
        if progress is not None:
            progress(f"figure7 request {index}: cm={cm_d*1000:.0f} ms linux={linux_d*1000:.0f} ms")
    later_cm = sum(cm_durations[2:]) / max(1, len(cm_durations[2:]))
    later_linux = sum(linux_durations[2:]) / max(1, len(linux_durations[2:]))
    if later_linux > 0:
        result.notes.append(
            f"Later requests (3..{n_requests}) improve by "
            f"{100.0 * (later_linux - later_cm) / later_linux:.1f}% with the CM (paper: ~40%)."
        )
    result.notes.append(
        "Paper: the first CM request pays one extra RTT (initial window 1 vs 2); subsequent "
        "requests avoid slow start entirely by inheriting the macroflow's window."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
