"""Paper-style time-series traces through the unified telemetry layer.

The CM paper's evaluation leans on time-series evidence — congestion-window
and rate evolution, queue occupancy, per-flow convergence (Figures 3 and
8-10 all plot state over time).  This experiment reproduces that style of
figure for two bundled scenario presets through the parallel runner:

* ``dumbbell_bulk`` — two staggered TCP/CM transfers on a shared dumbbell:
  the late flow's macroflow cwnd converging against the first, bottleneck
  queue occupancy, per-flow goodput;
* ``libcm_select_streaming`` — the layered ALF media server on a stepped
  path: CM rate estimate and transmitted layer tracking the bandwidth
  changes.

Every sampled telemetry series of each run is exported, prefixed with the
preset name, so the artifact is a ready-to-plot bundle; the JSON is
byte-stable per (preset, seed) like every other experiment artifact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "PRESET_NAMES"]

#: The presets whose time series this experiment reproduces.
PRESET_NAMES = ("dumbbell_bulk", "libcm_select_streaming")

#: Event probes recorded alongside the sampled series.
_EVENTS = ("cm.congestion", "packet.drop")


def trials(
    duration: Optional[float] = None,
    sample_interval: float = 0.25,
) -> List[TrialSpec]:
    """One trial per preset.

    ``duration`` overrides each preset's stop horizon (``None`` keeps it);
    ``sample_interval`` is the telemetry sampling cadence.  Both appear in
    the params explicitly — the cache contract forbids hidden defaults.
    """
    return [
        TrialSpec(
            "timeseries",
            {
                "preset": preset,
                "duration": duration,
                "sample_interval": sample_interval,
                "events": list(_EVENTS),
            },
        )
        for preset in PRESET_NAMES
    ]


def run_trial(params: dict) -> dict:
    """Run one preset with a telemetry block attached; return the payload."""
    from ..scenario import TelemetrySpec, get_preset
    from ..scenario.runner import run as run_scenario

    spec = get_preset(params["preset"])
    if params["duration"] is not None:
        spec.stop.until = float(params["duration"])
    spec.telemetry = TelemetrySpec(
        sample_interval=params["sample_interval"],
        samplers=("macroflows", "schedulers", "links", "apps"),
        events=tuple(params["events"]),
    )
    result = run_scenario(spec, seed=spec.seed)
    return result.payload()


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Merge the per-preset payloads into one figure-style result."""
    result = ExperimentResult(
        name="timeseries",
        title="Telemetry time series: cwnd / rate / queue / goodput over time",
        columns=["preset", "metric", "value"],
    )
    for outcome in outcomes:
        payload = outcome.value
        preset = payload["name"]
        telemetry = payload.get("telemetry", {})
        samples = telemetry.get("samples", {})
        for series_name in sorted(samples):
            result.add_series(
                f"{preset}.{series_name}",
                [tuple(point) for point in samples[series_name]],
            )
        events = telemetry.get("events", {})
        result.add_row(preset, "duration_s", payload["duration_s"])
        result.add_row(preset, "sampled_series", len(samples))
        for event in sorted(events):
            result.add_row(preset, f"events.{event}", events[event]["count"])
        result.add_row(preset, "event_log_dropped", telemetry.get("event_log_dropped", 0))
    result.notes.append(
        "Paper: Figures 3 and 8-10 plot exactly this kind of evidence — window/rate "
        "evolution and queue occupancy over time; the dumbbell series show the late "
        "TCP/CM flow converging onto the first one's share, the streaming series show "
        "the layered server tracking the CM rate estimate through bandwidth steps."
    )
    return result


def run(
    duration: Optional[float] = None,
    sample_interval: float = 0.25,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run both presets and bundle their telemetry time series."""
    specs = trials(duration=duration, sample_interval=sample_interval)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
