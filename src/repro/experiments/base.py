"""Common result container and table formatting for the experiment harness."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["ExperimentResult", "format_table"]


def format_table(columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as a plain-text table with aligned columns."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [header, separator]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Tabular and time-series output of one reproduced table or figure."""

    name: str
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Run metadata (seeds, jobs, git rev, wall clock, cache counters).  It is
    #: deliberately *excluded* from :meth:`payload`/:meth:`to_json` so the
    #: main JSON artifact stays byte-identical across job counts and re-runs;
    #: the artifacts module writes it to a ``.meta.json`` sidecar instead.
    provenance: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        """Append one row of tabular output."""
        self.rows.append(list(values))

    def add_series(self, label: str, points: List[Tuple[float, float]]) -> None:
        """Attach a named (time, value) series (used by the figure-style results)."""
        self.series[label] = list(points)

    def column(self, name: str) -> List:
        """Extract one column of the tabular output by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def payload(self) -> Dict[str, Any]:
        """The deterministic, JSON-able content of the result (no provenance)."""
        return {
            "name": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "series": {label: [list(point) for point in points] for label, points in self.series.items()},
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """Canonical JSON rendering: sorted keys, 2-space indent, one trailing newline.

        Two results with equal payloads serialize to byte-identical strings,
        which is the property the determinism tests and the artifact cache
        rely on.
        """
        return json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output (series points become tuples)."""
        payload = json.loads(text)
        result = cls(
            name=payload["name"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload["notes"]),
        )
        for label, points in payload["series"].items():
            result.series[label] = [tuple(point) for point in points]
        return result

    def to_text(self) -> str:
        """Human-readable rendering used by the CLI runner."""
        parts = [f"== {self.name}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.columns, self.rows))
        for label, points in self.series.items():
            parts.append(f"-- series: {label} ({len(points)} points) --")
            preview = ", ".join(f"({t:.1f}s, {v:.0f})" for t, v in points[:8])
            parts.append(f"   {preview}{' ...' if len(points) > 8 else ''}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
