"""Goodput vs. loss burstiness at a fixed long-run loss rate.

Independent (Bernoulli) loss and bursty (Gilbert–Elliott) loss with the
*same average rate* are very different beasts for a congestion-managed
sender: independent drops arrive one per window and each one halves the
rate, while a fade that takes out a whole flight costs a single backoff
but risks a retransmission timeout.  This experiment holds the long-run
loss rate constant and sweeps the mean fade length — the knob the
two-state Markov model exposes — then measures bulk goodput through the
lossy hop.

For a Gilbert–Elliott channel with ``loss_good=0`` / ``loss_bad=1`` the
stationary loss rate is ``p_gb / (p_gb + p_bg)`` and the mean burst length
is ``1 / p_bg``; given a target rate *L* and burst length *B* we set
``p_bg = 1/B`` and ``p_gb = L / (B * (1 - L))``.  Burst length 1 *still
differs from Bernoulli* (a packet that just survived the good state is
safer than average), so the table includes a true Bernoulli row as the
baseline.

Topology mirrors the ``gilbert_wireless_bulk`` preset: fast edges around a
2 Mbps "wireless" hop that carries the configured loss process, one bulk
TCP/CM transfer pushing through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.stats import summarize
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "burstloss_spec"]

#: Mean fade lengths (packets); 0 encodes the Bernoulli baseline.
DEFAULT_BURST_LENGTHS = (0, 1, 2, 4, 8)
DEFAULT_LOSS_RATE = 0.03
#: Fade placement relative to flight boundaries dominates a single run, so
#: the default curve averages a few seeds (each trial is ~40 ms).
DEFAULT_SEEDS = (1, 2, 3)
DEFAULT_DURATION = 30.0

BOTTLENECK_BPS = 2e6
BOTTLENECK_DELAY = 0.015
ACCESS_BPS = 30e6
ACCESS_DELAY = 1e-3
TRANSFER_BYTES = 10 ** 9
RECEIVE_WINDOW = 128 * 1024


def ge_params(loss_rate: float, burst_length: float) -> dict:
    """Gilbert–Elliott transition probabilities for a target (rate, burst)."""
    if not 0.0 < loss_rate < 1.0:
        raise ValueError("loss_rate must be in (0, 1)")
    if burst_length < 1.0:
        raise ValueError("burst_length must be >= 1")
    p_bad_good = 1.0 / burst_length
    p_good_bad = loss_rate * p_bad_good / (1.0 - loss_rate)
    return {"kind": "gilbert_elliott", "p_good_bad": p_good_bad,
            "p_bad_good": p_bad_good}


def burstloss_spec(burst_length: float, loss_rate: float, duration: float):
    """A bulk CM transfer over a lossy hop; burst_length 0 = Bernoulli."""
    from ..scenario import (
        AppSpec,
        GraphLinkSpec,
        GraphNodeSpec,
        GraphSpec,
        ScenarioSpec,
        StopSpec,
    )

    lossy = dict(a="r0", b="r1", rate_bps=BOTTLENECK_BPS,
                 delay=BOTTLENECK_DELAY, queue_limit=25)
    if burst_length:
        lossy["loss"] = ge_params(loss_rate, burst_length)
    else:
        lossy["loss_rate"] = loss_rate
    return ScenarioSpec(
        name=f"burstloss_b{burst_length:g}",
        description=(
            f"Bulk CM transfer over a {loss_rate:.0%} lossy hop, "
            + (f"mean fade {burst_length:g} packets" if burst_length
               else "independent (Bernoulli) drops")
        ),
        graph=GraphSpec(
            nodes=[
                GraphNodeSpec(name="src", cm=True),
                GraphNodeSpec(name="r0", kind="router"),
                GraphNodeSpec(name="r1", kind="router"),
                GraphNodeSpec(name="dst"),
            ],
            links=[
                GraphLinkSpec(a="src", b="r0", rate_bps=ACCESS_BPS,
                              delay=ACCESS_DELAY, queue_limit=100),
                GraphLinkSpec(**lossy),
                GraphLinkSpec(a="r1", b="dst", rate_bps=ACCESS_BPS,
                              delay=ACCESS_DELAY, queue_limit=100),
            ],
        ),
        apps=[
            AppSpec(app="tcp_listener", host="dst", label="listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="src", peer="dst", label="bulk",
                    params={"variant": "cm", "port": 5001,
                            "transfer_bytes": TRANSFER_BYTES,
                            "receive_window": RECEIVE_WINDOW}),
        ],
        stop=StopSpec(until=duration),
        metrics=("apps", "links"),
        seed=1,
    )


def run_trial(params: dict) -> dict:
    """Run one (burst length, seed) scenario; return goodput and loss stats."""
    from ..scenario.runner import run as run_scenario

    burst = params["burst_length"]
    duration = params["duration"]
    spec = burstloss_spec(burst, params["loss_rate"], duration)
    result = run_scenario(spec, seed=params["seed"])

    bulk = result.app("bulk")["metrics"]
    hop = next(e for e in result.links if e["link"] == "r0->r1")
    offered = hop["delivered_packets"] + hop["dropped_random"] + hop["dropped_overflow"]
    return {
        "burst_length": burst,
        "seed": params["seed"],
        "goodput_Bps": bulk["bytes_acked"] / duration,
        "retransmissions": bulk["retransmissions"],
        "timeouts": bulk["timeouts"],
        "observed_loss": hop["dropped_random"] / offered if offered else 0.0,
        "dropped_random": hop["dropped_random"],
    }


def trials(
    burst_lengths: Sequence[float] = DEFAULT_BURST_LENGTHS,
    loss_rate: float = DEFAULT_LOSS_RATE,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (mean burst length, seed); burst 0 = Bernoulli baseline."""
    return [
        TrialSpec("burstloss", {"burst_length": burst, "loss_rate": loss_rate,
                                "duration": duration, "seed": seed})
        for burst in burst_lengths
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average over seeds per burst length: the goodput-vs-burstiness curve."""
    result = ExperimentResult(
        name="burstloss",
        title="Bulk CM goodput vs. loss burstiness at a fixed mean loss rate",
        columns=["mean_burst", "goodput_KBps", "utilization", "observed_loss",
                 "retransmissions", "timeouts"],
    )
    grouped: Dict[float, List[dict]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.spec.params["burst_length"], []).append(outcome.value)
    for burst, values in grouped.items():
        goodput = summarize([v["goodput_Bps"] for v in values]).mean
        result.add_row(
            burst if burst else "bernoulli",
            goodput / 1e3,
            min(1.0, goodput * 8.0 / BOTTLENECK_BPS),
            summarize([v["observed_loss"] for v in values]).mean,
            sum(v["retransmissions"] for v in values),
            sum(v["timeouts"] for v in values),
        )
    result.notes.append(
        "Every row sees the same long-run loss rate "
        f"({DEFAULT_LOSS_RATE:.0%} by default); only the correlation structure "
        "changes.  Rows with mean_burst >= 1 use a Gilbert-Elliott channel "
        "(p_bad_good = 1/burst, p_good_bad solved for the target rate); the "
        "bernoulli row is the independent-drop baseline.  Longer fades "
        "concentrate drops into fewer congestion events, trading window "
        "backoffs for timeout risk."
    )
    return result


def run(
    burst_lengths: Sequence[float] = DEFAULT_BURST_LENGTHS,
    loss_rate: float = DEFAULT_LOSS_RATE,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Sweep fade lengths and reduce to the goodput curve."""
    specs = trials(burst_lengths=burst_lengths, loss_rate=loss_rate,
                   duration=duration, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
