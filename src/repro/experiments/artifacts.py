"""JSON artifacts and provenance sidecars for experiment results.

Each experiment run can be persisted as two files in a ``--json-dir``:

* ``<name>.json`` — the deterministic payload (``ExperimentResult.to_json``):
  columns, rows, series, notes.  Byte-identical for identical inputs
  regardless of ``--jobs`` or cache state, so it can be diffed, hashed and
  used as a golden trace.
* ``<name>.meta.json`` — the provenance sidecar: seeds, jobs, git revision,
  wall clock, trial/cache counters, python version, timestamp.  Everything
  that varies between equivalent runs lives here, never in the payload.

Since PR 6 every write can also *register* the artifact in the shared
result store (:mod:`repro.results`): pass ``store=`` explicitly (a path or
an open :class:`~repro.results.ResultStore`) or set the
``REPRO_RESULT_STORE`` environment variable to a database path and every
artifact written anywhere in the process lands in the store too.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from .base import ExperimentResult

__all__ = ["git_revision", "build_provenance", "write_artifacts", "register_artifact", "read_artifact"]


def git_revision() -> str:
    """The repository HEAD revision, or "unknown" outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def build_provenance(
    experiment: str,
    seeds: Optional[Sequence[int]],
    jobs: int,
    wall_clock_s: float,
    n_trials: int,
    n_cached: int,
) -> Dict[str, Any]:
    """Assemble the provenance dict recorded alongside a result."""
    return {
        "experiment": experiment,
        "seeds": list(seeds) if seeds is not None else None,
        "jobs": jobs,
        "git_revision": git_revision(),
        "wall_clock_s": wall_clock_s,
        "trials": n_trials,
        "trials_from_cache": n_cached,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def write_artifacts(result: ExperimentResult, json_dir: str, store=None) -> Tuple[str, str]:
    """Write ``<name>.json`` + ``<name>.meta.json`` under ``json_dir``.

    ``store`` (a path, an open :class:`repro.results.ResultStore`, or the
    ``REPRO_RESULT_STORE`` environment variable as the fallback) registers
    the payload + provenance in the shared result store after the files
    land.  Registration is strictly additive: the artifact bytes on disk
    are written first and never depend on the store.
    """
    os.makedirs(json_dir, exist_ok=True)
    payload_path = os.path.join(json_dir, f"{result.name}.json")
    meta_path = os.path.join(json_dir, f"{result.name}.meta.json")
    with open(payload_path, "w", encoding="utf-8") as handle:
        handle.write(result.to_json())
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(result.provenance, handle, indent=2, sort_keys=True)
        handle.write("\n")
    register_artifact(result, source=os.path.basename(payload_path), store=store)
    return payload_path, meta_path


def register_artifact(result: ExperimentResult, source: Optional[str] = None, store=None):
    """Record an experiment result in the shared result store, if one is wired.

    Resolution order: an explicit ``store`` (path or open store), then the
    ``REPRO_RESULT_STORE`` environment variable, else a no-op.  Returns the
    :class:`repro.results.IngestReport` or ``None`` when no store is wired.
    """
    from ..results.store import ResultStore

    opened = None
    if store is None:
        path = os.environ.get("REPRO_RESULT_STORE")
        if not path:
            return None
        store = opened = ResultStore(path)
    elif isinstance(store, str):
        store = opened = ResultStore(store)
    try:
        return store.ingest_experiment_payload(
            result.payload(), provenance=result.provenance or None, source=source
        )
    finally:
        if opened is not None:
            opened.close()


def read_artifact(payload_path: str) -> ExperimentResult:
    """Load a result from its payload file, restoring provenance if the sidecar exists."""
    with open(payload_path, "r", encoding="utf-8") as handle:
        result = ExperimentResult.from_json(handle.read())
    base, ext = os.path.splitext(payload_path)
    meta_path = base + ".meta" + ext
    if os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as handle:
            result.provenance = json.load(handle)
    return result
