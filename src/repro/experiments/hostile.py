"""CM fairness against an unresponsive UDP blast sharing the bottleneck.

The CM paper's scheduler can only regulate traffic that *joins* the manager;
an application that blasts UDP from an unconnected socket bypasses the
per-destination macroflow entirely and never backs off.  This experiment
puts two persistent TCP/CM transfers behind one 8 Mbps bottleneck, then
sweeps an unresponsive constant-bit-rate blast from 0 up to beyond the
bottleneck rate, and measures two things:

* **Jain fairness among the CM flows** — the managed flows must keep
  dividing whatever capacity the hog leaves them *evenly*; hostile
  cross-traffic is no excuse for intra-ensemble unfairness.  The
  acceptance bar is Jain >= 0.9 at every blast rate.
* **CM share of the bottleneck** — how much the responsive flows concede,
  the textbook "TCP-friendly flows lose to a firehose" curve.

Topology mirrors the ``cm_vs_udp_blast`` preset: two CM senders and the
blast source on fast access links into a router, one constrained hop, and
separate sinks so the blast never shares a macroflow with the transfers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import jain_fairness
from ..analysis.stats import summarize
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "hostile_spec"]

#: Blast rate as a fraction of the bottleneck rate.  1.25 overdrives the
#: hop: the hog alone can fill the queue, the worst case for the CM flows.
DEFAULT_BLAST_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.25)
DEFAULT_SEEDS = (1,)
DEFAULT_DURATION = 20.0

BOTTLENECK_BPS = 8e6
BOTTLENECK_DELAY = 0.010
ACCESS_BPS = 40e6
ACCESS_DELAY = 1e-3
N_CM_FLOWS = 2
BLAST_PACKET_BYTES = 1_000
RECEIVE_WINDOW = 256 * 1024

FAIRNESS_BAR = 0.9


def hostile_spec(blast_fraction: float, duration: float):
    """Two persistent CM transfers plus a CBR UDP blast on one bottleneck."""
    from ..scenario import (
        AppSpec,
        GraphLinkSpec,
        GraphNodeSpec,
        GraphSpec,
        ScenarioSpec,
        StopSpec,
        WorkloadSpec,
    )

    nodes = [
        GraphNodeSpec(name="srv", cm=True),
        GraphNodeSpec(name="hog"),
        GraphNodeSpec(name="r0", kind="router"),
        GraphNodeSpec(name="r1", kind="router"),
        GraphNodeSpec(name="cli"),
        GraphNodeSpec(name="hogsink"),
    ]
    links = [
        GraphLinkSpec(a="srv", b="r0", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                      queue_limit=100),
        GraphLinkSpec(a="hog", b="r0", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                      queue_limit=100),
        GraphLinkSpec(a="r0", b="r1", rate_bps=BOTTLENECK_BPS,
                      delay=BOTTLENECK_DELAY, queue_limit=40),
        GraphLinkSpec(a="cli", b="r1", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                      queue_limit=100),
        GraphLinkSpec(a="hogsink", b="r1", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                      queue_limit=100),
    ]
    apps: List = []
    for i in range(N_CM_FLOWS):
        apps.append(AppSpec(app="tcp_listener", host="cli",
                            label=f"listener{i}", params={"port": 5001 + i}))
        apps.append(AppSpec(
            app="tcp_sender", host="srv", peer="cli", label=f"cm_flow{i}",
            params={"variant": "cm", "port": 5001 + i, "transfer_bytes": 10 ** 9,
                    "receive_window": RECEIVE_WINDOW},
        ))
    workloads: List = []
    if blast_fraction > 0.0:
        workloads.append(WorkloadSpec(
            kind="udp_blast", host="hog", peer="hogsink", label="blast",
            params={"rate_bps": blast_fraction * BOTTLENECK_BPS,
                    "packet_bytes": BLAST_PACKET_BYTES, "port": 9900},
        ))
    return ScenarioSpec(
        name=f"hostile_{int(round(blast_fraction * 100))}pct",
        description=(
            f"{N_CM_FLOWS} CM transfers vs. a {blast_fraction:.2f}x-bottleneck "
            "unresponsive UDP blast"
        ),
        graph=GraphSpec(nodes=nodes, links=links),
        apps=apps,
        workloads=workloads,
        stop=StopSpec(until=duration),
        metrics=("apps", "links"),
        seed=1,
    )


def run_trial(params: dict) -> dict:
    """Run one (blast fraction, seed) scenario; return shares and fairness."""
    from ..scenario.runner import run as run_scenario

    fraction = params["blast_fraction"]
    duration = params["duration"]
    spec = hostile_spec(fraction, duration)
    result = run_scenario(spec, seed=params["seed"])

    cm_bytes = [
        result.app(f"cm_flow{i}")["metrics"]["bytes_acked"]
        for i in range(N_CM_FLOWS)
    ]
    blast_bytes = 0
    if fraction > 0.0:
        blast_bytes = result.workload("blast")["metrics"]["bytes_delivered"]
    bottleneck = next(e for e in result.links if e["link"] == "r0->r1")
    return {
        "blast_fraction": fraction,
        "seed": params["seed"],
        "cm_bytes": cm_bytes,
        "cm_jain_fairness": jain_fairness([float(b) for b in cm_bytes]),
        "cm_goodput_Bps": sum(cm_bytes) / duration,
        "blast_goodput_Bps": blast_bytes / duration,
        "bottleneck_drops": bottleneck["dropped_overflow"],
    }


def trials(
    blast_fractions: Sequence[float] = DEFAULT_BLAST_FRACTIONS,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (blast fraction, seed)."""
    return [
        TrialSpec("hostile", {"blast_fraction": fraction, "duration": duration,
                              "seed": seed})
        for fraction in blast_fractions
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average over seeds per blast fraction and tabulate the shares."""
    result = ExperimentResult(
        name="hostile",
        title="CM flows sharing a bottleneck with an unresponsive UDP blast",
        columns=["blast_fraction", "cm_jain_fairness", "cm_share",
                 "blast_share", "bottleneck_drops"],
    )
    capacity = BOTTLENECK_BPS / 8.0
    grouped: Dict[float, List[dict]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.spec.params["blast_fraction"], []).append(outcome.value)
    worst_fairness = 1.0
    for fraction, values in grouped.items():
        fairness = summarize([v["cm_jain_fairness"] for v in values]).mean
        worst_fairness = min(worst_fairness, min(v["cm_jain_fairness"] for v in values))
        result.add_row(
            fraction,
            fairness,
            summarize([v["cm_goodput_Bps"] for v in values]).mean / capacity,
            summarize([v["blast_goodput_Bps"] for v in values]).mean / capacity,
            sum(v["bottleneck_drops"] for v in values),
        )
    result.notes.append(
        "The blast never joins the CM (unconnected UDP socket), so it takes its "
        "configured rate regardless of congestion; the managed flows concede the "
        "remainder but must keep splitting it evenly between themselves.  "
        f"Acceptance: CM-flow Jain fairness >= {FAIRNESS_BAR} at every blast rate "
        f"(worst observed: {worst_fairness:.4f} — "
        f"{'PASS' if worst_fairness >= FAIRNESS_BAR else 'FAIL'})."
    )
    return result


def run(
    blast_fractions: Sequence[float] = DEFAULT_BLAST_FRACTIONS,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Sweep blast rates and reduce to the fairness/share table."""
    specs = trials(blast_fractions=blast_fractions, duration=duration, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
