"""Host-count scaling: per-macroflow fairness under stochastic flow churn.

The CM paper argues its per-destination aggregation keeps an ensemble of
flows *stable and fair*; its testbeds, however, never exceeded a handful of
hosts.  This experiment sweeps the number of sender hosts competing on one
shared bottleneck — each host running a persistent TCP/CM transfer *plus* a
seeded stochastic churn of short flows through the same macroflow — and
measures how fairly the bottleneck divides between the macroflows.

Topology (built from a :class:`~repro.scenario.spec.GraphSpec`): ``n``
sender hosts on fast access links into a left router, one constrained
left->right link, one sink host.  All of host *i*'s traffic (the persistent
flow and every churned flow) targets the sink, so it aggregates into a
single macroflow per host and the per-host byte count *is* the macroflow's
share of the bottleneck.

The headline metric is Jain's fairness index over those shares; the
ROADMAP-level acceptance bar is >= 0.9 with 16 hosts of churning flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import jain_fairness
from ..analysis.stats import summarize
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce", "scale_spec"]

DEFAULT_HOST_COUNTS = (4, 8, 16)
DEFAULT_SEEDS = (1,)
#: Long enough to amortise the AIMD convergence transient; at shorter
#: horizons the index is dominated by who won the first slow-start race.
DEFAULT_DURATION = 40.0

BOTTLENECK_BPS = 12e6
BOTTLENECK_DELAY = 0.010
ACCESS_BPS = 200e6
ACCESS_DELAY = 0.5e-3
RECEIVE_WINDOW = 256 * 1024


def scale_spec(n_hosts: int, duration: float):
    """The n-sender shared-bottleneck graph with per-host churn workloads."""
    from ..scenario import (
        AppSpec,
        GraphLinkSpec,
        GraphNodeSpec,
        GraphSpec,
        ScenarioSpec,
        StopSpec,
        WorkloadSpec,
    )

    nodes = [GraphNodeSpec(name=f"s{i}", cm=True) for i in range(n_hosts)]
    nodes += [
        GraphNodeSpec(name="sink"),
        GraphNodeSpec(name="rl", kind="router"),
        GraphNodeSpec(name="rr", kind="router"),
    ]
    links = [
        GraphLinkSpec(a=f"s{i}", b="rl", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                      queue_limit=200)
        for i in range(n_hosts)
    ]
    links.append(GraphLinkSpec(a="rl", b="rr", rate_bps=BOTTLENECK_BPS,
                               delay=BOTTLENECK_DELAY, queue_limit=50))
    links.append(GraphLinkSpec(a="rr", b="sink", rate_bps=ACCESS_BPS, delay=ACCESS_DELAY,
                               queue_limit=200))

    apps: List = []
    workloads: List = []
    churn = {
        "arrival": "poisson",
        "rate": 1.0,
        "variant": "cm",
        "min_bytes": 15_000,
        "pareto_alpha": 1.5,
        "max_bytes": 300_000,
        "max_active": 8,
        "receive_window": RECEIVE_WINDOW,
    }
    for i in range(n_hosts):
        apps.append(AppSpec(app="tcp_listener", host="sink",
                            label=f"listener{i}", params={"port": 5001 + i}))
        # The persistent flow keeps host i's macroflow backlogged, so the
        # fairness measurement reflects contention, not idleness.
        apps.append(AppSpec(
            app="tcp_sender", host=f"s{i}", peer="sink", label=f"persistent{i}",
            params={"variant": "cm", "port": 5001 + i, "transfer_bytes": 10 ** 9,
                    "receive_window": RECEIVE_WINDOW},
        ))
        workloads.append(WorkloadSpec(
            kind="tcp_flows", host=f"s{i}", peer="sink", label=f"churn{i}",
            params=dict(churn, port_base=20_000 + 1_000 * i),
        ))
    return ScenarioSpec(
        name=f"scale_{n_hosts}hosts",
        description=f"{n_hosts} churning senders sharing one {BOTTLENECK_BPS / 1e6:.0f} Mbps bottleneck",
        graph=GraphSpec(nodes=nodes, links=links),
        apps=apps,
        workloads=workloads,
        stop=StopSpec(until=duration),
        metrics=("apps", "links"),
        seed=1,
    )


def run_trial(params: dict) -> dict:
    """Run one (host count, seed) scenario; return per-macroflow shares."""
    from ..scenario.runner import run as run_scenario

    n_hosts = params["n_hosts"]
    spec = scale_spec(n_hosts, params["duration"])
    result = run_scenario(spec, seed=params["seed"])

    per_macroflow: List[int] = []
    for i in range(n_hosts):
        persistent = result.app(f"persistent{i}")["metrics"]["bytes_acked"]
        churned = result.workload(f"churn{i}")["metrics"]["bytes_acked"]
        per_macroflow.append(persistent + churned)
    flows_churned = sum(
        result.workload(f"churn{i}")["metrics"]["flows_started"] for i in range(n_hosts)
    )
    bottleneck = next(entry for entry in result.links if entry["link"] == "rl->rr")
    total_bytes = sum(per_macroflow)
    return {
        "n_hosts": n_hosts,
        "seed": params["seed"],
        "per_macroflow_bytes": per_macroflow,
        "jain_fairness": jain_fairness([float(b) for b in per_macroflow]),
        "flows_churned": flows_churned,
        "goodput_Bps": total_bytes / params["duration"],
        "bottleneck_delivered": bottleneck["delivered_packets"],
        "bottleneck_drops": bottleneck["dropped_overflow"],
    }


def trials(
    host_counts: Sequence[int] = DEFAULT_HOST_COUNTS,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (host count, seed)."""
    return [
        TrialSpec("scale", {"n_hosts": n, "duration": duration, "seed": seed})
        for n in host_counts
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average the fairness index over seeds per host count and tabulate."""
    result = ExperimentResult(
        name="scale",
        title="Per-macroflow Jain fairness on a shared bottleneck vs. host count",
        columns=["n_hosts", "jain_fairness", "min_fairness", "flows_churned",
                 "goodput_MBps", "utilization"],
    )
    grouped: Dict[int, List[dict]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.spec.params["n_hosts"], []).append(outcome.value)
    for n_hosts, values in grouped.items():
        fairness = [v["jain_fairness"] for v in values]
        goodput = summarize([v["goodput_Bps"] for v in values]).mean
        result.add_row(
            n_hosts,
            summarize(fairness).mean,
            min(fairness),
            sum(v["flows_churned"] for v in values),
            goodput / 1e6,
            min(1.0, goodput * 8.0 / BOTTLENECK_BPS),
        )
    result.notes.append(
        "Each host aggregates a persistent TCP/CM transfer plus Poisson-churned "
        "Pareto-sized flows into one per-destination macroflow; Jain's index over the "
        "per-macroflow byte counts measures how fairly the CM ensembles share the "
        "bottleneck.  The paper's stability claim predicts the index stays near 1.0 "
        "as hosts are added; the acceptance bar is >= 0.9 at 16 hosts."
    )
    return result


def run(
    host_counts: Sequence[int] = DEFAULT_HOST_COUNTS,
    duration: float = DEFAULT_DURATION,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Sweep host counts and reduce to the fairness table."""
    specs = trials(host_counts=host_counts, duration=duration, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
