"""Sharded trial execution for the experiment harness.

Every experiment is decomposed into independent *trials* (one figure point x
one seed, one API variant, one layered-streaming run ...).  A trial is fully
described by a :class:`TrialSpec` — the experiment name plus a JSON-able
parameter dict — and executed by the experiment's registered ``trial``
function, which must be a pure function of those parameters.  That contract
buys three things at once:

* **parallelism** — trials shard across a ``multiprocessing`` pool
  (:func:`run_trials` with ``jobs > 1``) because workers rebuild everything
  from the picklable spec;
* **determinism** — results are merged back in spec order (not completion
  order), so ``reduce()`` sees the same sequence no matter how many workers
  ran or how the OS scheduled them, and the serialized artifact is
  byte-identical across job counts;
* **caching** — the spec's canonical JSON is a content address, so a trial
  result can be stored on disk (:class:`TrialCache`) and re-runs only pay
  for cache misses.

Trial return values must survive a JSON round-trip; :func:`run_trials`
normalizes every freshly computed value through ``json.dumps``/``loads`` so
cold (computed) and warm (cached) runs hand ``reduce()`` bit-identical
structures.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "TrialSpec",
    "TrialOutcome",
    "TrialCache",
    "canonical_json",
    "code_fingerprint",
    "run_trials",
]

#: Bump whenever the meaning of a trial's parameters or return value changes;
#: it is part of every cache key, so old on-disk entries simply stop matching.
CACHE_SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON used for shard keys and cache addresses."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _json_normalize(value: Any) -> Any:
    """Round-trip a value through JSON so tuples/ints/floats are canonical."""
    return json.loads(json.dumps(value))


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file, computed once per process.

    Folding this into every cache key makes the trial cache self-invalidating:
    any edit to the simulator, transports, or experiment code changes the
    fingerprint, so stale entries computed under old physics simply stop
    matching — no manual ``CACHE_SCHEMA_VERSION`` bump required (that constant
    remains for semantic changes that live outside the package, e.g. a new
    JSON normalization rule in the harness driver).
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


@dataclass
class TrialSpec:
    """One independent unit of experiment work.

    ``experiment`` names the registered experiment whose ``trial`` function
    executes the spec; ``params`` must contain only JSON-able values and must
    fully determine the trial's result.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)

    def cache_key(self) -> str:
        """Content address of this trial: sha256 over experiment + params +
        the ``repro`` source fingerprint, so code changes invalidate entries."""
        payload = canonical_json(
            {
                "experiment": self.experiment,
                "params": self.params,
                "version": CACHE_SCHEMA_VERSION,
                "code": code_fingerprint(),
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for progress messages."""
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}({inner})"


@dataclass
class TrialOutcome:
    """A trial spec paired with its (JSON-normalized) result."""

    spec: TrialSpec
    value: Any
    cached: bool = False


class TrialCache:
    """Content-addressed on-disk store of trial results.

    Layout: ``<root>/<first two hex chars>/<sha256>.json`` holding
    ``{"value": <result>}``.  Writes are atomic (tempfile + rename) so a
    killed run never leaves a truncated entry, and corrupt entries are
    treated as misses.
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0

    def _path(self, spec: TrialSpec) -> str:
        digest = spec.cache_key()
        return os.path.join(self.root, digest[:2], digest + ".json")

    def lookup(self, spec: TrialSpec) -> Tuple[bool, Any]:
        """Return (hit, value); counts the lookup in hits/misses."""
        path = self._path(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            value = entry["value"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, spec: TrialSpec, value: Any) -> None:
        path = self._path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"value": value}, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def _execute_spec(spec: TrialSpec) -> Any:
    """Run one trial in the current process via the experiment registry."""
    from .registry import get_spec

    return get_spec(spec.experiment).trial(dict(spec.params))


def _pool_worker(item: Tuple[int, TrialSpec]) -> Tuple[int, Any]:
    index, spec = item
    return index, _execute_spec(spec)


def run_trials(
    specs: Iterable[TrialSpec],
    jobs: int = 1,
    cache: Optional[TrialCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[TrialOutcome]:
    """Execute trials, possibly across a process pool, in deterministic order.

    The returned outcomes are in ``specs`` order regardless of ``jobs`` or
    worker scheduling; with a cache, hits are served from disk and only
    misses are executed (and then stored).
    """
    specs = list(specs)
    total = len(specs)
    values: List[Any] = [None] * total
    cached_flags = [False] * total
    pending: List[int] = []

    for index, spec in enumerate(specs):
        if cache is not None:
            hit, value = cache.lookup(spec)
            if hit:
                values[index] = value
                cached_flags[index] = True
                continue
        pending.append(index)

    done = total - len(pending)
    if progress is not None and done:
        progress(f"{done}/{total} trials served from cache")

    def record(index: int, value: Any) -> None:
        nonlocal done
        value = _json_normalize(value)
        values[index] = value
        if cache is not None:
            cache.store(specs[index], value)
        done += 1
        if progress is not None:
            progress(f"[{done}/{total}] {specs[index].describe()}")

    if pending:
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            with multiprocessing.Pool(processes=workers) as pool:
                items = [(index, specs[index]) for index in pending]
                for index, value in pool.imap_unordered(_pool_worker, items, chunksize=1):
                    record(index, value)
        else:
            for index in pending:
                record(index, _execute_spec(specs[index]))

    return [
        TrialOutcome(spec=spec, value=values[index], cached=cached_flags[index])
        for index, spec in enumerate(specs)
    ]


def time_trials(specs: Iterable[TrialSpec], jobs: int) -> float:
    """Wall-clock seconds to execute ``specs`` uncached at ``jobs`` workers.

    Used by the perf harness to measure pool speedup without cache effects.
    """
    specs = list(specs)
    start = time.perf_counter()
    run_trials(specs, jobs=jobs)
    return time.perf_counter() - start
