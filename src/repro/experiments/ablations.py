"""Ablations of the CM design choices called out in DESIGN.md.

Three questions, each answered with a small experiment:

* **Scheduler** — with two flows sharing a macroflow, does the unweighted
  round-robin scheduler split the window evenly, and does the weighted
  scheduler skew it according to the configured weights?
* **Controller** — how does the default byte-counting AIMD window controller
  compare to the simple rate-based AIMD alternative on a lossy path?
* **Macroflow sharing** — how much does a second connection gain from
  joining an existing macroflow versus being split into its own (the
  mechanism behind Figure 7, isolated from the web-server machinery)?
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import jain_fairness
from ..core import CongestionManager, RateAimdController, WeightedRoundRobinScheduler
from ..transport.tcp import CMTCPSender, TCPListener
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials
from .topology import build_testbed, dummynet_pair_spec, wan_pair_spec

__all__ = [
    "run_scheduler_ablation",
    "run_controller_ablation",
    "run_sharing_ablation",
    "run",
    "trials",
    "run_trial",
    "reduce",
]

#: The three independent ablation studies, in presentation order.
PARTS = ("scheduler", "controller", "sharing")


def run_scheduler_ablation(transfer_bytes: int = 8_000_000, weight: int = 3) -> ExperimentResult:
    """Two concurrent TCP/CM flows to one receiver under each scheduler."""
    result = ExperimentResult(
        name="ablation_scheduler",
        title="Bandwidth split between two flows of one macroflow",
        columns=["scheduler", "flow1_kB", "flow2_kB", "flow1_share", "jain_fairness"],
    )
    for label, scheduler_factory, weighted in (
        ("round-robin", None, False),
        (f"weighted {weight}:1", WeightedRoundRobinScheduler, True),
    ):
        testbed = build_testbed(dummynet_pair_spec(loss_rate=0.0), seed=5)
        cm = (
            CongestionManager(testbed.sender, scheduler_factory=scheduler_factory)
            if scheduler_factory
            else CongestionManager(testbed.sender)
        )
        listener_a = TCPListener(testbed.receiver, 5001)
        listener_b = TCPListener(testbed.receiver, 5002)
        sender_a = CMTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=256 * 1024)
        sender_b = CMTCPSender(testbed.sender, testbed.receiver.addr, 5002, receive_window=256 * 1024)
        if weighted:
            macroflow = cm.macroflow_of(sender_a.flow_id)
            macroflow.scheduler.set_weight(sender_a.flow_id, weight)
            macroflow.scheduler.set_weight(sender_b.flow_id, 1)
        sender_a.send(transfer_bytes)
        sender_b.send(transfer_bytes)
        # Run for a fixed horizon and compare progress, so the faster flow
        # cannot simply finish and hand the link to the slower one.
        testbed.sim.run(until=6.0)
        got_a, got_b = sender_a.bytes_acked, sender_b.bytes_acked
        total = max(1, got_a + got_b)
        result.add_row(label, got_a / 1000.0, got_b / 1000.0, got_a / total, jain_fairness([got_a, got_b]))
        for obj in (sender_a, sender_b):
            obj.close()
        listener_a.close()
        listener_b.close()
    result.notes.append(
        "Round robin should split the macroflow roughly evenly (Jain index near 1); the weighted "
        "scheduler should give the heavy flow a share close to weight/(weight+1)."
    )
    return result


def run_controller_ablation(transfer_bytes: int = 1_000_000, loss_rate: float = 0.01) -> ExperimentResult:
    """Default AIMD window controller vs. the rate-based controller on a lossy path."""
    result = ExperimentResult(
        name="ablation_controller",
        title="Congestion controller comparison on a 1% loss path",
        columns=["controller", "throughput_kBps", "retransmissions", "timeouts"],
    )
    for label, factory in (
        ("aimd-window (default)", None),
        ("aimd-rate", lambda mtu: RateAimdController(mtu)),
    ):
        testbed = build_testbed(dummynet_pair_spec(loss_rate=loss_rate), seed=9)
        if factory is None:
            CongestionManager(testbed.sender)
        else:
            CongestionManager(testbed.sender, controller_factory=factory)
        listener = TCPListener(testbed.receiver, 5001)
        sender = CMTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=32 * 1024)
        sender.send(transfer_bytes)
        testbed.sim.run(until=300.0)
        result.add_row(label, sender.throughput() / 1000.0, sender.retransmissions, sender.timeouts)
        sender.close()
        listener.close()
    result.notes.append(
        "The window controller is the paper's TCP-compatible default; the rate controller exists to "
        "exercise the CM's pluggable-controller hook and is expected to be less efficient."
    )
    return result


def run_sharing_ablation(transfer_bytes: int = 96 * 1024) -> ExperimentResult:
    """Second connection joining the macroflow vs. split into a fresh one."""
    result = ExperimentResult(
        name="ablation_sharing",
        title="Benefit of macroflow sharing for a follow-up connection",
        columns=["configuration", "first_transfer_ms", "second_transfer_ms"],
    )
    for label, split_second in (("shared macroflow", False), ("cm_split (no sharing)", True)):
        testbed = build_testbed(wan_pair_spec(), seed=21)
        cm = CongestionManager(testbed.sender)
        listener = TCPListener(testbed.receiver, 5001)
        first = CMTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=256 * 1024)
        first.send(transfer_bytes)
        testbed.sim.run(until=60.0)
        first_ms = (first.complete_time - first.connect_time) * 1000.0 if first.done else float("nan")
        first.close()

        listener2 = TCPListener(testbed.receiver, 5002)
        second = CMTCPSender(testbed.sender, testbed.receiver.addr, 5002, receive_window=256 * 1024)
        if split_second:
            cm.cm_split(second.flow_id)
        second.send(transfer_bytes)
        testbed.sim.run(until=testbed.sim.now + 60.0)
        second_ms = (second.complete_time - second.connect_time) * 1000.0 if second.done else float("nan")
        second.close()
        listener.close()
        listener2.close()
        result.add_row(label, first_ms, second_ms)
    result.notes.append(
        "With sharing, the second connection inherits the first one's congestion window and RTT "
        "estimate and finishes markedly faster; after cm_split it has to slow start from scratch."
    )
    return result


def run_trial(params: dict) -> dict:
    """Run one ablation study and return its result payload (JSON-able)."""
    part = params["part"]
    if part == "scheduler":
        sub = run_scheduler_ablation()
    elif part == "controller":
        sub = run_controller_ablation()
    elif part == "sharing":
        sub = run_sharing_ablation()
    else:
        raise ValueError(f"unknown ablation part {part!r}")
    return sub.payload()


def trials() -> List[TrialSpec]:
    """One trial per independent ablation study."""
    return [TrialSpec("ablations", {"part": part}) for part in PARTS]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Merge the three ablation payloads into one summary result."""
    merged = ExperimentResult(
        name="ablations",
        title="Design-choice ablations (scheduler, controller, macroflow sharing)",
        columns=["experiment", "row"],
    )
    for outcome in outcomes:
        sub = outcome.value
        for row in sub["rows"]:
            merged.add_row(sub["name"], " | ".join(str(v) for v in row))
        merged.notes.extend(f"[{sub['name']}] {note}" for note in sub["notes"])
    return merged


def run(progress: Optional[callable] = None) -> ExperimentResult:
    """Run all three ablations and merge their summaries into one result."""
    return reduce(run_trials(trials(), jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
