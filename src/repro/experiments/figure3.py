"""Figure 3: throughput vs. packet loss rate for TCP/CM and TCP/Linux.

Paper setup: bulk transfers over a 10 Mbps Dummynet pipe with a 60 ms RTT
while the forward-path random loss rate sweeps from 0 to 5 %.  The claim
being reproduced is that TCP with its congestion control performed by the CM
degrades with loss the same way native TCP does (the two curves lie on top
of each other), with TCP/CM slightly below at very low loss because of its
1-MTU initial window and byte counting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.stats import summarize
from ..core import CongestionManager
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from .base import ExperimentResult
from .parallel import TrialOutcome, TrialSpec, run_trials
from .topology import build_testbed, dummynet_pair_spec

__all__ = ["run", "trials", "run_trial", "reduce", "DEFAULT_LOSS_RATES", "DEFAULT_SEEDS"]

DEFAULT_SEEDS = (1, 2)

DEFAULT_LOSS_RATES = (0.0, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05)

#: Receive window matching the era's Linux default socket buffers; it is what
#: capped the paper's zero-loss throughput near 500 KB/s on this path.
RECEIVE_WINDOW = 32 * 1024


def _one_transfer(variant: str, loss_rate: float, transfer_bytes: int, seed: int) -> float:
    testbed = build_testbed(dummynet_pair_spec(loss_rate=loss_rate), seed=seed)
    listener = TCPListener(testbed.receiver, 5001)
    if variant == "cm":
        CongestionManager(testbed.sender)
        sender = CMTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=RECEIVE_WINDOW)
    else:
        sender = RenoTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=RECEIVE_WINDOW)
    sender.send(transfer_bytes)
    testbed.sim.run(until=900.0)
    del listener
    elapsed = (
        (sender.complete_time - sender.connect_time)
        if sender.done and sender.complete_time is not None and sender.connect_time is not None
        else 0.0
    )
    if elapsed <= 0.0:
        # Degenerate short transfer (or incomplete run): a zero-or-negative
        # wall-clock window would crash the whole trial shard, so fall back
        # to the sender's own rate estimate instead of dividing by it.
        return sender.throughput()
    return transfer_bytes / elapsed


def run_trial(params: dict) -> float:
    """Execute one (variant, loss, seed) transfer; pure function of ``params``."""
    return _one_transfer(
        params["variant"], params["loss"], params["transfer_bytes"], params["seed"]
    )


def trials(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    transfer_bytes: int = 2_000_000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> List[TrialSpec]:
    """One trial per (loss rate, variant, seed), in deterministic sweep order."""
    return [
        TrialSpec(
            "figure3",
            {"variant": variant, "loss": loss, "transfer_bytes": transfer_bytes, "seed": seed},
        )
        for loss in loss_rates
        for variant in ("cm", "linux")
        for seed in seeds
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Average the per-seed throughputs into the Figure 3 table with error bars."""
    result = ExperimentResult(
        name="figure3",
        title="Throughput vs. loss, 10 Mbps / 60 ms RTT (KB/s)",
        columns=[
            "loss_%", "tcp_cm_kBps", "tcp_linux_kBps", "ratio_cm_over_linux",
            "cm_stddev_kBps", "cm_ci95_kBps", "linux_stddev_kBps", "linux_ci95_kBps", "seeds",
        ],
    )
    grouped: Dict[float, Dict[str, List[float]]] = {}
    for outcome in outcomes:
        params = outcome.spec.params
        per_loss = grouped.setdefault(params["loss"], {"cm": [], "linux": []})
        per_loss[params["variant"]].append(outcome.value / 1000.0)
    for loss, values in grouped.items():
        cm = summarize(values["cm"])
        linux = summarize(values["linux"])
        ratio = cm.mean / linux.mean if linux.mean > 0 else 0.0
        result.add_row(
            loss * 100.0, cm.mean, linux.mean, ratio,
            cm.stddev, cm.ci95, linux.stddev, linux.ci95, cm.n,
        )
    result.notes.append(
        "Paper: both variants degrade together from ~450-500 KB/s at zero loss; "
        "TCP/CM sits slightly below TCP/Linux at low loss (initial window of 1 vs 2)."
    )
    return result


def run(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    transfer_bytes: int = 2_000_000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Sweep loss rates and measure both sender variants.

    ``seeds`` controls how many independent loss patterns are averaged per
    point; the paper's curves are single runs, a few seeds smooth the worst
    of the variance and feed the stddev/CI columns.
    """
    specs = trials(loss_rates=loss_rates, transfer_bytes=transfer_bytes, seeds=seeds)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
