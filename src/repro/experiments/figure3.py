"""Figure 3: throughput vs. packet loss rate for TCP/CM and TCP/Linux.

Paper setup: bulk transfers over a 10 Mbps Dummynet pipe with a 60 ms RTT
while the forward-path random loss rate sweeps from 0 to 5 %.  The claim
being reproduced is that TCP with its congestion control performed by the CM
degrades with loss the same way native TCP does (the two curves lie on top
of each other), with TCP/CM slightly below at very low loss because of its
1-MTU initial window and byte counting.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import CongestionManager
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from .base import ExperimentResult
from .topology import dummynet_pair

__all__ = ["run", "DEFAULT_LOSS_RATES"]

DEFAULT_LOSS_RATES = (0.0, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05)

#: Receive window matching the era's Linux default socket buffers; it is what
#: capped the paper's zero-loss throughput near 500 KB/s on this path.
RECEIVE_WINDOW = 32 * 1024


def _one_transfer(variant: str, loss_rate: float, transfer_bytes: int, seed: int) -> float:
    testbed = dummynet_pair(loss_rate=loss_rate, seed=seed)
    listener = TCPListener(testbed.receiver, 5001)
    if variant == "cm":
        CongestionManager(testbed.sender)
        sender = CMTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=RECEIVE_WINDOW)
    else:
        sender = RenoTCPSender(testbed.sender, testbed.receiver.addr, 5001, receive_window=RECEIVE_WINDOW)
    sender.send(transfer_bytes)
    testbed.sim.run(until=900.0)
    del listener
    if not sender.done:
        return sender.throughput()
    return transfer_bytes / (sender.complete_time - sender.connect_time)


def run(
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    transfer_bytes: int = 2_000_000,
    seeds: Sequence[int] = (1, 2),
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Sweep loss rates and measure both sender variants.

    ``seeds`` controls how many independent loss patterns are averaged per
    point; the paper's curves are single runs, two seeds keep the harness
    fast while smoothing the worst of the variance.
    """
    result = ExperimentResult(
        name="figure3",
        title="Throughput vs. loss, 10 Mbps / 60 ms RTT (KB/s)",
        columns=["loss_%", "tcp_cm_kBps", "tcp_linux_kBps", "ratio_cm_over_linux"],
    )
    for loss in loss_rates:
        cm_vals = []
        linux_vals = []
        for seed in seeds:
            cm_vals.append(_one_transfer("cm", loss, transfer_bytes, seed))
            linux_vals.append(_one_transfer("linux", loss, transfer_bytes, seed))
        cm_kbps = sum(cm_vals) / len(cm_vals) / 1000.0
        linux_kbps = sum(linux_vals) / len(linux_vals) / 1000.0
        ratio = cm_kbps / linux_kbps if linux_kbps > 0 else 0.0
        result.add_row(loss * 100.0, cm_kbps, linux_kbps, ratio)
        if progress is not None:
            progress(f"figure3 loss={loss:.3f} cm={cm_kbps:.1f} linux={linux_kbps:.1f}")
    result.notes.append(
        "Paper: both variants degrade together from ~450-500 KB/s at zero loss; "
        "TCP/CM sits slightly below TCP/Linux at low loss (initial window of 1 vs 2)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
