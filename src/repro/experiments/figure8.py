"""Figure 8: adaptive layered application using the ALF (request/callback) API.

The server picks the layer to transmit from ``cm_query`` at every send
opportunity and otherwise sends as fast as the CM permits.  The reproduced
behaviour: the transmission rate tracks the CM-reported rate closely and
reacts quickly (many small layer oscillations), following the bandwidth
steps imposed on the path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis import oscillation_count
from .base import ExperimentResult
from .layered_common import DEFAULT_BANDWIDTH_SCHEDULE, run_layered_trial
from .parallel import TrialOutcome, TrialSpec, run_trials

__all__ = ["run", "trials", "run_trial", "reduce"]

run_trial = run_layered_trial


def trials(
    duration: float = 25.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
) -> List[TrialSpec]:
    """A single trial: one ALF-mode layered-streaming run.

    Every knob of :func:`run_layered` appears in the params explicitly —
    the cache contract forbids hidden defaults.
    """
    return [
        TrialSpec(
            "figure8",
            {
                "mode": "alf",
                "duration": duration,
                "bandwidth_schedule": [list(step) for step in bandwidth_schedule],
                "ack_every_packets": 1,
                "ack_delay": None,
                "thresh": 1.5,
                "seed": 11,
                "rate_bin": 0.5,
            },
        )
    ]


def reduce(outcomes: Sequence[TrialOutcome]) -> ExperimentResult:
    """Turn the layered-run dict into the Figure 8 series and summary rows."""
    outcome = outcomes[0].value
    transmission_series = [tuple(point) for point in outcome["transmission_series"]]
    result = ExperimentResult(
        name="figure8",
        title="Layered application, ALF API: rate over time (bytes/s)",
        columns=["metric", "value"],
    )
    result.add_series("transmission_rate", transmission_series)
    result.add_series("cm_reported_rate", [tuple(point) for point in outcome["reported_series"]])
    mean_tx = (
        sum(v for _t, v in transmission_series) / len(transmission_series)
        if transmission_series
        else 0.0
    )
    result.add_row("mean_transmission_rate_Bps", mean_tx)
    result.add_row("packets_sent", outcome["packets_sent"])
    result.add_row("bytes_received_at_client", outcome["bytes_received"])
    result.add_row("layer_switches", oscillation_count([layer for _t, layer in outcome["layer_history"]]))
    result.add_row("loss_events", outcome["loss_events"])
    result.notes.append(
        "Paper: the ALF sender tracks the CM-reported rate closely and oscillates between "
        "layers more often than the rate-callback sender of Figure 9."
    )
    return result


def run(
    duration: float = 25.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the ALF-mode layered server and report its rate time-series."""
    specs = trials(duration=duration, bandwidth_schedule=bandwidth_schedule)
    return reduce(run_trials(specs, jobs=1, progress=progress))


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
