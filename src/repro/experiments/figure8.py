"""Figure 8: adaptive layered application using the ALF (request/callback) API.

The server picks the layer to transmit from ``cm_query`` at every send
opportunity and otherwise sends as fast as the CM permits.  The reproduced
behaviour: the transmission rate tracks the CM-reported rate closely and
reacts quickly (many small layer oscillations), following the bandwidth
steps imposed on the path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis import oscillation_count
from .base import ExperimentResult
from .layered_common import DEFAULT_BANDWIDTH_SCHEDULE, run_layered

__all__ = ["run"]


def run(
    duration: float = 25.0,
    bandwidth_schedule: Sequence[Tuple[float, float]] = DEFAULT_BANDWIDTH_SCHEDULE,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the ALF-mode layered server and report its rate time-series."""
    outcome = run_layered("alf", duration=duration, bandwidth_schedule=bandwidth_schedule)
    result = ExperimentResult(
        name="figure8",
        title="Layered application, ALF API: rate over time (bytes/s)",
        columns=["metric", "value"],
    )
    result.add_series("transmission_rate", outcome.transmission_series)
    result.add_series("cm_reported_rate", outcome.reported_series)
    mean_tx = (
        sum(v for _t, v in outcome.transmission_series) / len(outcome.transmission_series)
        if outcome.transmission_series
        else 0.0
    )
    result.add_row("mean_transmission_rate_Bps", mean_tx)
    result.add_row("packets_sent", outcome.packets_sent)
    result.add_row("bytes_received_at_client", outcome.bytes_received)
    result.add_row("layer_switches", oscillation_count([layer for _t, layer in outcome.layer_history]))
    result.add_row("loss_events", outcome.loss_events)
    if progress is not None:
        progress(f"figure8 mean tx rate {mean_tx:.0f} B/s, {outcome.packets_sent} packets")
    result.notes.append(
        "Paper: the ALF sender tracks the CM-reported rate closely and oscillates between "
        "layers more often than the rate-callback sender of Figure 9."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_text())
