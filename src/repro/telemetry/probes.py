"""Event probes: the dispatch table between instrumented code and recorders.

The hot paths of the simulation (per-packet link operations, per-MTU CM
grants) cannot afford an observability layer that costs anything when it is
not in use.  The contract here is the *compiled no-op*:

* every instrumented site holds a probe slot (an instance attribute) that
  is ``None`` by default;
* :meth:`TelemetryHub.probe` returns ``None`` when **no recorder is
  subscribed** to that event, so attaching a hub with no interest in
  ``packet.deliver`` leaves the link's deliver path exactly as cheap as no
  hub at all;
* the emitting code guards with ``if probe is not None`` — one local/slot
  load and an identity test, the cheapest conditional Python can express.

When a recorder *is* subscribed, ``probe(event)`` compiles a dispatch
closure over the subscriber list (single-subscriber case unrolled) that
counts the emission and fans the ``(event, time, fields)`` record out.

Binding order contract: subscribe every sink **before** handing the hub to
the components (``Link.attach_telemetry`` and friends read the dispatch
table once, at attach time).  The scenario builder follows this order; code
wiring a hub by hand must too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EVENTS", "EVENT_NAMES", "TelemetryHub", "Sink"]

#: Everything an instrumented site may emit — the probe catalog.  The
#: scenario spec validates ``telemetry.events`` entries against this table
#: and ``docs/telemetry.md`` documents each event's fields.
EVENTS: Dict[str, str] = {
    "packet.enqueue": "a link accepted a packet into its queue",
    "packet.drop": "a link dropped a packet (fields carry the reason)",
    "packet.deliver": "a link delivered a packet to the far end",
    "cm.grant": "the CM granted one MTU of transmission to a flow",
    "cm.congestion": "a macroflow's controller reacted to a congestion signal",
    "tcp.transmit": "a TCP sender emitted a data segment",
    "app.chunk": "an application transmitted one media/application chunk",
}

#: The catalog's names in a stable order (used for "subscribe to all").
EVENT_NAMES: Tuple[str, ...] = tuple(EVENTS)

#: A sink consumes ``(event, time, fields)`` records.
Sink = Callable[[str, float, Dict[str, Any]], None]


class TelemetryHub:
    """Routes probe emissions to subscribed sinks and counts them.

    The hub is deliberately tiny: a dispatch table (event name -> sinks), a
    per-event emission counter, and the :meth:`probe` compiler that turns
    the table into either ``None`` (no-op) or a closure.
    """

    def __init__(self) -> None:
        self._sinks: Dict[str, List[Sink]] = {}
        #: Emissions per event name (only events with subscribers count —
        #: an unsubscribed probe site compiles to nothing at all).
        self.counts: Dict[str, int] = {}

    def subscribe(self, event: str, sink: Sink) -> None:
        """Attach ``sink`` to one event from the catalog."""
        if event not in EVENTS:
            raise ValueError(
                f"unknown telemetry event {event!r}; catalog: {', '.join(EVENT_NAMES)}"
            )
        self._sinks.setdefault(event, []).append(sink)
        self.counts.setdefault(event, 0)

    def subscribe_all(self, sink: Sink) -> None:
        """Attach ``sink`` to every event in the catalog."""
        for event in EVENT_NAMES:
            self.subscribe(event, sink)

    def subscribed_events(self) -> Tuple[str, ...]:
        """Events with at least one sink, in catalog order."""
        return tuple(event for event in EVENT_NAMES if self._sinks.get(event))

    def probe(self, event: str) -> Optional[Callable[[float, Dict[str, Any]], None]]:
        """Compile the emit callable for ``event`` — or ``None`` (the no-op).

        Instrumented sites call this once at attach time and keep the
        result in a slot; a ``None`` means the site's fast path stays an
        ``is not None`` test with zero calls.
        """
        if event not in EVENTS:
            raise ValueError(
                f"unknown telemetry event {event!r}; catalog: {', '.join(EVENT_NAMES)}"
            )
        sinks = self._sinks.get(event)
        if not sinks:
            return None
        counts = self.counts
        if len(sinks) == 1:
            sink = sinks[0]

            def emit(time: float, fields: Dict[str, Any],
                     _event: str = event, _sink: Sink = sink) -> None:
                counts[_event] += 1
                _sink(_event, time, fields)

            return emit
        fanout = tuple(sinks)

        def emit_many(time: float, fields: Dict[str, Any],
                      _event: str = event, _sinks: Tuple[Sink, ...] = fanout) -> None:
            counts[_event] += 1
            for sink in _sinks:
                sink(_event, time, fields)

        return emit_many
