"""Unified telemetry: pluggable probes + bounded recorders for every layer.

The CM paper's evaluation is time-series evidence — cwnd and rate
evolution, queue occupancy, per-flow convergence — and this package is the
single instrumentation layer that produces it:

* :mod:`~repro.telemetry.probes` — the event-probe dispatch table
  (:class:`TelemetryHub`).  Instrumented sites in ``netsim.link``,
  ``core.manager``/``core.macroflow``, ``transport.tcp.sender`` and
  ``apps.layered`` hold probe slots that are ``None`` (a compiled no-op)
  until a recorder subscribes.
* :mod:`~repro.telemetry.recorders` — bounded storage: fixed-bin
  accumulators, ring buffers, seeded reservoirs, capped series, and a
  streaming JSON-lines sink.
* :mod:`~repro.telemetry.samplers` — event-engine-driven periodic sampling
  of CM-internal state (cwnd, rate, loss EWMA, scheduler backlog), link
  queues and application goodput.

The scenario layer wires all of this from a declarative ``telemetry:``
block (see ``docs/telemetry.md``); nothing here imports from the layers it
observes, so the dependency arrow always points *into* telemetry.
"""

from .probes import EVENT_NAMES, EVENTS, TelemetryHub
from .recorders import (
    FixedBinAccumulator,
    JsonlSink,
    ReservoirRecorder,
    RingRecorder,
    SeriesRecorder,
)
from .samplers import (
    SAMPLER_GROUPS,
    PeriodicSampler,
    app_goodput_source,
    cm_state_source,
    link_queue_source,
    scheduler_backlog_source,
)

__all__ = [
    "EVENTS",
    "EVENT_NAMES",
    "TelemetryHub",
    "FixedBinAccumulator",
    "RingRecorder",
    "ReservoirRecorder",
    "SeriesRecorder",
    "JsonlSink",
    "SAMPLER_GROUPS",
    "PeriodicSampler",
    "cm_state_source",
    "scheduler_backlog_source",
    "link_queue_source",
    "app_goodput_source",
]
