"""Bounded recorders: where probe events and periodic samples end up.

Every recorder in this module holds **bounded** memory no matter how many
observations are pushed through it — the property that lets a probes-on
simulation process millions of packet events without the unbounded-list
growth the old :class:`~repro.netsim.trace.PacketTrace` suffered from.
Four shapes cover the telemetry layer's needs:

* :class:`FixedBinAccumulator` — sums values into fixed-width time bins,
  capped at ``max_bins`` distinct bins (rate/throughput series);
* :class:`RingRecorder` — keeps the **last** ``capacity`` records (event
  logs where the recent tail matters most);
* :class:`ReservoirRecorder` — keeps a seeded uniform random sample of
  ``capacity`` records over the whole stream (Vitter's Algorithm R, so the
  kept set is deterministic per seed);
* :class:`SeriesRecorder` — keeps the **first** ``max_samples`` points of a
  periodic time series (sampling cadence is known, so the cap is a horizon);
* :class:`JsonlSink` — streams every record to a JSON-lines file, holding
  O(1) memory; the canonical rendering (sorted keys, compact separators)
  makes the file byte-identical for identical simulations.

Every bounded recorder counts what it could not keep (``dropped`` /
``clipped``) instead of silently losing it.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FixedBinAccumulator",
    "RingRecorder",
    "ReservoirRecorder",
    "SeriesRecorder",
    "JsonlSink",
]


class FixedBinAccumulator:
    """Sum values into fixed-width time bins with a cap on distinct bins.

    Bins are sparse (a dict keyed by bin index), so memory is bounded by the
    number of *distinct* bins touched, never by the number of observations.
    Once ``max_bins`` distinct bins exist, values falling into new bins are
    folded into the nearest existing edge bin and counted in
    :attr:`clipped` — the series stays well-formed, the overflow is visible.
    """

    __slots__ = ("bin_width", "max_bins", "clipped", "total", "count", "_bins",
                 "_lo", "_hi")

    def __init__(self, bin_width: float = 0.5, max_bins: int = 8192):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if max_bins < 1:
            raise ValueError("max_bins must be >= 1")
        self.bin_width = float(bin_width)
        self.max_bins = int(max_bins)
        #: Observations that landed outside the bounded bin range.
        self.clipped = 0
        #: Sum of every value ever added (clipped ones included).
        self.total = 0.0
        #: Number of observations.
        self.count = 0
        self._bins: Dict[int, float] = {}
        # Cached lowest/highest allocated bin index, so the clip path stays
        # O(1) instead of scanning the whole dict once the cap is reached.
        self._lo: Optional[int] = None
        self._hi: Optional[int] = None

    def add(self, time: float, value: float) -> None:
        """Account ``value`` observed at simulated ``time``."""
        bins = self._bins
        index = int(time // self.bin_width)
        self.total += value
        self.count += 1
        if index not in bins:
            if len(bins) >= self.max_bins:
                # Fold into the nearest existing edge so the series shape
                # is preserved; the clipped counter keeps it honest.
                self.clipped += 1
                index = self._hi if index > self._hi else self._lo
            else:
                if self._lo is None:
                    self._lo = self._hi = index
                elif index < self._lo:
                    self._lo = index
                elif index > self._hi:
                    self._hi = index
        bins[index] = bins.get(index, 0.0) + value

    @property
    def bins_used(self) -> int:
        """Distinct bins currently allocated (``<= max_bins`` always)."""
        return len(self._bins)

    def bin_series(self) -> List[Tuple[float, float]]:
        """``(bin_start_time, value_sum)`` points, zero-filled between the
        first and last touched bin so plots show stalls rather than
        interpolating over them."""
        bins = self._bins
        if not bins:
            return []
        width = self.bin_width
        get = bins.get
        return [(index * width, get(index, 0.0)) for index in range(self._lo, self._hi + 1)]


class RingRecorder:
    """Keep the last ``capacity`` records pushed into it."""

    __slots__ = ("capacity", "dropped", "_buffer", "_next")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        #: Records overwritten because the ring was full.
        self.dropped = 0
        self._buffer: List[Any] = []
        self._next = 0

    def append(self, record: Any) -> None:
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(record)
        else:
            buffer[self._next] = record
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._buffer)

    def items(self) -> List[Any]:
        """Records in arrival order (oldest kept first)."""
        buffer = self._buffer
        if len(buffer) < self.capacity:
            return list(buffer)
        return buffer[self._next:] + buffer[: self._next]


class ReservoirRecorder:
    """Seeded uniform sample of ``capacity`` records over the whole stream.

    Vitter's Algorithm R with a private :class:`random.Random`, so two runs
    that push the same record stream through a reservoir built with the same
    seed keep exactly the same records (the determinism contract every
    telemetry artifact follows).
    """

    __slots__ = ("capacity", "seen", "_rng", "_kept")

    def __init__(self, capacity: int = 1024, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        #: Total records offered (kept or not).
        self.seen = 0
        self._rng = random.Random(seed)
        self._kept: List[Tuple[int, Any]] = []

    def append(self, record: Any) -> None:
        index = self.seen
        self.seen = index + 1
        kept = self._kept
        if len(kept) < self.capacity:
            kept.append((index, record))
            return
        slot = self._rng.randint(0, index)
        if slot < self.capacity:
            kept[slot] = (index, record)

    @property
    def dropped(self) -> int:
        """Records not retained in the reservoir."""
        return self.seen - len(self._kept)

    def __len__(self) -> int:
        return len(self._kept)

    def items(self) -> List[Any]:
        """Kept records in original stream order."""
        return [record for _index, record in sorted(self._kept, key=lambda kv: kv[0])]


class SeriesRecorder:
    """A ``(time, value)`` series capped at ``max_samples`` points.

    Periodic samplers have a known cadence, so the cap acts as a horizon:
    the first ``max_samples`` points are kept and later ones only counted.
    """

    __slots__ = ("max_samples", "dropped", "_points")

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self.dropped = 0
        self._points: List[Tuple[float, float]] = []

    def append(self, time: float, value: float) -> None:
        points = self._points
        if len(points) < self.max_samples:
            points.append((time, value))
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> List[Tuple[float, float]]:
        """The recorded (time, value) points in sample order."""
        return list(self._points)


class JsonlSink:
    """Stream records to a JSON-lines file with canonical formatting.

    Usable directly as a probe sink (``sink(event, time, fields)``) and as a
    sample sink (:meth:`write_sample`).  Lines are canonical JSON — sorted
    keys, compact separators, ``allow_nan=False`` — so identical simulations
    produce byte-identical trace files (the CI determinism check ``cmp``\\ s
    two of them).  Memory is O(1); the bound is the file system's problem.
    """

    def __init__(self, path: str):
        self.path = path
        self.lines_written = 0
        self._handle = open(path, "w", encoding="utf-8")

    def __call__(self, event: str, time: float, fields: Dict[str, Any]) -> None:
        payload = {"t": time, "event": event}
        payload.update(fields)
        self._write(payload)

    def write_sample(self, time: float, series: str, value: float) -> None:
        self._write({"t": time, "event": "sample", "series": series, "value": value})

    def _write(self, payload: Dict[str, Any]) -> None:
        self._handle.write(
            json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
        )
        self.lines_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None
