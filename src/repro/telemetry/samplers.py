"""Periodic samplers: CM-internal and per-layer state as time series.

Event probes capture *what happened*; the samplers here capture *what the
state was* — congestion window, CM rate estimate, loss EWMA, scheduler
backlog, link queue depth, application goodput — on a fixed simulated-time
cadence, driven by the same event engine as everything else.

A :class:`PeriodicSampler` owns one :class:`~repro.telemetry.recorders.SeriesRecorder`
per series name, created lazily so dynamic state (macroflows appearing when
a web server answers its first request) simply starts a new series at the
tick where it first exists.  Source callables receive ``(now, record)`` and
push zero or more ``record(series_name, value)`` observations per tick.

Samplers only *read* simulation state.  That is a hard rule: it is what
makes a probes-on run produce byte-identical application/link/host metrics
to a probes-off run (the CI telemetry-determinism job checks exactly this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .recorders import JsonlSink, SeriesRecorder

__all__ = [
    "SAMPLER_GROUPS",
    "PeriodicSampler",
    "cm_state_source",
    "scheduler_backlog_source",
    "link_queue_source",
    "app_goodput_source",
]

#: Sampler groups the scenario spec may request in ``telemetry.samplers``.
SAMPLER_GROUPS: Tuple[str, ...] = ("macroflows", "schedulers", "links", "apps")

#: A sampler source: called once per tick with ``(now, record)``.
Source = Callable[[float, Callable[[float, str, float], None]], None]


class PeriodicSampler:
    """Samples registered sources every ``interval`` simulated seconds.

    Parameters
    ----------
    sim:
        The event engine driving the simulation being observed.
    interval:
        Simulated seconds between ticks.
    max_samples:
        Per-series bound handed to each lazily-created
        :class:`SeriesRecorder`.
    sink:
        Optional :class:`JsonlSink`; every observation is additionally
        streamed there as a ``{"event": "sample"}`` line.
    """

    def __init__(
        self,
        sim,
        interval: float,
        max_samples: int = 4096,
        sink: Optional[JsonlSink] = None,
    ):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.sink = sink
        self.ticks = 0
        self.series: Dict[str, SeriesRecorder] = {}
        self._sources: List[Source] = []
        self._event = None
        self._running = False

    # ------------------------------------------------------------- registration
    def add_source(self, source: Source) -> None:
        """Register a source; call before :meth:`start`."""
        self._sources.append(source)

    # ----------------------------------------------------------------- control
    def start(self) -> None:
        """Take an immediate sample and begin ticking (idempotent)."""
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop ticking; recorded series stay available."""
        self._running = False
        if self._event is not None:
            if self._event.pending:
                self._event.cancel()
            self._event = None

    # --------------------------------------------------------------- internals
    def _record(self, now: float, name: str, value: float) -> None:
        recorder = self.series.get(name)
        if recorder is None:
            recorder = SeriesRecorder(self.max_samples)
            self.series[name] = recorder
        recorder.append(now, value)
        if self.sink is not None:
            self.sink.write_sample(now, name, value)

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        self.ticks += 1
        record = self._record
        for source in self._sources:
            source(now, record)
        self._event = self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------ output
    def sampled_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """All recorded series, name -> (time, value) points."""
        return {name: recorder.points() for name, recorder in self.series.items()}

    def dropped_by_series(self) -> Dict[str, int]:
        """Series that hit their bound, name -> dropped point count."""
        return {
            name: recorder.dropped
            for name, recorder in self.series.items()
            if recorder.dropped
        }


# ====================================================================== #
# Source factories                                                       #
# ====================================================================== #
def cm_state_source(host_name: str, cm) -> Source:
    """Congestion state per macroflow of one host's CM.

    Series: ``cm.<host>.mf<id>.{cwnd,rate,loss_ewma,outstanding}``.
    Macroflows are discovered per tick, so flows opened mid-run (web
    servers) show up from their first sample onwards.
    """

    def sample(now: float, record) -> None:
        for macroflow in cm.macroflows:
            prefix = f"cm.{host_name}.mf{macroflow.macroflow_id}"
            record(now, f"{prefix}.cwnd", macroflow.controller.cwnd)
            record(now, f"{prefix}.rate", macroflow.rate())
            record(now, f"{prefix}.loss_ewma", macroflow.loss_rate)
            record(now, f"{prefix}.outstanding", macroflow.outstanding_bytes)

    return sample


def scheduler_backlog_source(host_name: str, cm) -> Source:
    """Pending request counts per macroflow scheduler.

    Series: ``cm.<host>.mf<id>.pending``.
    """

    def sample(now: float, record) -> None:
        for macroflow in cm.macroflows:
            record(
                now,
                f"cm.{host_name}.mf{macroflow.macroflow_id}.pending",
                float(macroflow.scheduler.pending_requests()),
            )

    return sample


def link_queue_source(label: str, link) -> Source:
    """Queue depth of one link.  Series: ``link.<label>.queue``."""
    name = f"link.{label}.queue"

    def sample(now: float, record) -> None:
        record(now, name, float(link.queue_length))

    return sample


def app_goodput_source(label: str, app) -> Optional[Source]:
    """Whatever an application reports via ``telemetry_sample()``.

    Series: ``app.<label>.<key>`` per key of the returned dict.  Returns
    ``None`` for applications that do not implement sampling.
    """
    sampler = getattr(app, "telemetry_sample", None)
    if sampler is None or sampler() is None:
        return None
    prefix = f"app.{label}"

    def sample(now: float, record) -> None:
        values = sampler()
        if not values:
            return
        for key in sorted(values):
            record(now, f"{prefix}.{key}", float(values[key]))

    return sample
