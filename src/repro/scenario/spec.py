"""The declarative scenario specification tree.

A :class:`ScenarioSpec` is a complete, validated, JSON-serialisable
description of one simulation: the hosts, the links between them (or a
dumbbell preset), which hosts run a Congestion Manager, the application
instances with their typed parameters, the stop condition and the metrics to
collect.  Every consumer of the construction layer — the experiment
harnesses, the ``python -m repro.scenario`` CLI, the tests and any future
multi-hop study — builds its testbed from one of these specs instead of
hand-wiring :class:`~repro.netsim.engine.Simulator` /
:class:`~repro.netsim.node.Host` / :class:`~repro.netsim.channel.Channel`
objects.

Design rules:

* **Eager validation** — :meth:`ScenarioSpec.validate` checks the whole tree
  (host references, rate/loss ranges, application names and parameter types
  against the :mod:`repro.scenario.applications` registry) and raises
  :class:`SpecError` with a path-qualified, actionable message.
* **Strict JSON round-trip** — ``spec.to_dict()`` and
  ``ScenarioSpec.from_dict`` are inverses; ``from_dict`` rejects unknown
  keys, naming the offending key and listing the valid ones.
* **Seeds are external** — the spec carries a default ``seed``, but
  :func:`repro.scenario.builder.build` takes the run seed as an argument so
  one spec can drive a multi-seed sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Type, TypeVar

__all__ = [
    "SpecError",
    "HostSpec",
    "LinkSpec",
    "DumbbellSpec",
    "GraphNodeSpec",
    "GraphLinkSpec",
    "RerouteSpec",
    "GraphSpec",
    "AppSpec",
    "WorkloadSpec",
    "StopSpec",
    "TelemetrySpec",
    "EngineSpec",
    "ScenarioSpec",
    "CM_CONTROLLERS",
    "CM_SCHEDULERS",
    "METRIC_GROUPS",
    "NODE_KINDS",
    "TELEMETRY_EVENT_RECORDERS",
    "LOSS_MODEL_KINDS",
    "AQM_KINDS",
]

#: Congestion-controller choices for CM-enabled hosts (see ``repro.core.congestion``).
CM_CONTROLLERS: Tuple[str, ...] = ("aimd_window", "aimd_rate")

#: Intra-macroflow scheduler choices (see ``repro.core.scheduler``).
CM_SCHEDULERS: Tuple[str, ...] = ("round_robin", "weighted")

#: Metric groups the runner knows how to collect.
METRIC_GROUPS: Tuple[str, ...] = ("apps", "links", "hosts")

#: Bounded recorder shapes a telemetry block may route events into.
TELEMETRY_EVENT_RECORDERS: Tuple[str, ...] = ("ring", "reservoir")

#: Node roles a graph topology may declare.
NODE_KINDS: Tuple[str, ...] = ("host", "router")

#: Burst-loss models a link's ``loss`` block may select (see
#: :class:`repro.netsim.link.GilbertElliottLoss`).
LOSS_MODEL_KINDS: Tuple[str, ...] = ("gilbert_elliott",)

#: Active-queue-management kinds a link's ``aqm`` block may select (see
#: :class:`repro.netsim.link.RedQueue`).
AQM_KINDS: Tuple[str, ...] = ("red",)


class SpecError(ValueError):
    """A scenario spec failed validation; the message says where and why."""

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


def default_addr(index: int) -> str:
    """Address assigned to the ``index``-th host when ``addr`` is left empty.

    ``10.<index+1>.0.1`` reproduces the seed testbeds' sender/receiver
    addresses (``10.1.0.1`` / ``10.2.0.1``) for the common two-host case.
    The validator uses the same scheme as the builder so an explicit addr
    cannot silently collide with a generated one.
    """
    return f"10.{index + 1}.0.1"


_T = TypeVar("_T")

#: Per-class field-name cache: ``dataclasses.fields`` walks descriptors on
#: every call, which is measurable on the per-trial ``from_dict``/validate
#: paths; field sets never change after class definition.
_FIELD_NAMES: Dict[type, frozenset] = {}


def _field_names(cls: type) -> frozenset:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = frozenset(f.name for f in dataclasses.fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def _reject_unknown_keys(cls: type, data: Mapping[str, Any], path: str) -> None:
    """Raise a path-qualified SpecError for keys no field of ``cls`` matches."""
    if not isinstance(data, Mapping):
        raise SpecError(path, f"expected a mapping for {cls.__name__}, got {type(data).__name__}")
    known = _field_names(cls)
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            path,
            f"unknown key{'s' if len(unknown) > 1 else ''} {', '.join(map(repr, unknown))} "
            f"for {cls.__name__}; valid keys: {', '.join(sorted(known))}",
        )


def _from_mapping(cls: Type[_T], data: Mapping[str, Any], path: str) -> _T:
    """Build a dataclass from a mapping, rejecting unknown keys."""
    _reject_unknown_keys(cls, data, path)
    return cls(**dict(data))  # type: ignore[arg-type]


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise SpecError(path, message)


def _check_number(value: Any, path: str, minimum: Optional[float] = None,
                  maximum: Optional[float] = None) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {value!r}")
    if minimum is not None:
        _require(value >= minimum, path, f"must be >= {minimum}, got {value!r}")
    if maximum is not None:
        _require(value <= maximum, path, f"must be <= {maximum}, got {value!r}")


def _check_block_keys(block: Mapping[str, Any], allowed: Sequence[str],
                      required: Sequence[str], path: str) -> None:
    unknown = sorted(set(block) - set(allowed))
    _require(not unknown, path,
             f"unknown key{'s' if len(unknown) > 1 else ''} "
             f"{', '.join(map(repr, unknown))}; valid keys: {', '.join(allowed)}")
    for name in required:
        _require(name in block, f"{path}.{name}", "is required")


def _check_loss_block(loss: Any, path: str) -> None:
    """Validate a ``loss`` mapping (burst-loss model selection) on a link."""
    _require(isinstance(loss, Mapping), path,
             f"expected a mapping with a 'kind' key, got {loss!r}")
    kind = loss.get("kind")
    _require(kind in LOSS_MODEL_KINDS, f"{path}.kind",
             f"unknown loss model {kind!r}; choose from {', '.join(LOSS_MODEL_KINDS)}")
    _check_block_keys(loss, ("kind", "p_good_bad", "p_bad_good", "loss_good", "loss_bad"),
                      ("p_good_bad", "p_bad_good"), path)
    for name in ("p_good_bad", "p_bad_good"):
        _check_number(loss[name], f"{path}.{name}", maximum=1.0)
        _require(loss[name] > 0.0, f"{path}.{name}", f"must be > 0, got {loss[name]!r}")
    if "loss_good" in loss:
        _check_number(loss["loss_good"], f"{path}.loss_good", minimum=0.0)
        _require(loss["loss_good"] < 1.0, f"{path}.loss_good",
                 f"must be < 1, got {loss['loss_good']!r}")
    if "loss_bad" in loss:
        _check_number(loss["loss_bad"], f"{path}.loss_bad", minimum=0.0, maximum=1.0)


def _check_aqm_block(aqm: Any, path: str) -> None:
    """Validate an ``aqm`` mapping (active queue management) on a link."""
    _require(isinstance(aqm, Mapping), path,
             f"expected a mapping with a 'kind' key, got {aqm!r}")
    kind = aqm.get("kind")
    _require(kind in AQM_KINDS, f"{path}.kind",
             f"unknown aqm {kind!r}; choose from {', '.join(AQM_KINDS)}")
    _check_block_keys(aqm, ("kind", "min_th", "max_th", "max_p", "w_q", "mean_packet_bytes"),
                      ("min_th", "max_th"), path)
    _check_number(aqm["min_th"], f"{path}.min_th", minimum=1)
    _check_number(aqm["max_th"], f"{path}.max_th")
    _require(aqm["max_th"] > aqm["min_th"], f"{path}.max_th",
             f"must be > min_th ({aqm['min_th']!r}), got {aqm['max_th']!r}")
    if "max_p" in aqm:
        _check_number(aqm["max_p"], f"{path}.max_p", maximum=1.0)
        _require(aqm["max_p"] > 0.0, f"{path}.max_p", f"must be > 0, got {aqm['max_p']!r}")
    if "w_q" in aqm:
        _check_number(aqm["w_q"], f"{path}.w_q", maximum=1.0)
        _require(aqm["w_q"] > 0.0, f"{path}.w_q", f"must be > 0, got {aqm['w_q']!r}")
    if "mean_packet_bytes" in aqm:
        _check_number(aqm["mean_packet_bytes"], f"{path}.mean_packet_bytes", minimum=1)


def _block_key(block: Optional[Mapping[str, Any]]) -> Any:
    """Hashable validation-cache atom for an optional dict-valued spec block."""
    if block is None:
        return None
    return tuple(sorted((name, _kv(value)) for name, value in block.items()))


# ---------------------------------------------------------------------- keys
# Validation is memoized by spec *content* (see ScenarioSpec.validate): two
# specs with equal keys pass or fail identically, so re-walking the checks
# per trial is pure overhead.  ``_kv`` makes the key atoms collision-proof
# against Python's cross-type equalities (``True == 1``, ``1 == 1.0``):
# validation treats bools, ints and floats differently (int-only fields
# reject floats, number fields reject bools), so none of them may share a
# cache slot with another type.
_TRUE_KEY = ("bool", True)
_FALSE_KEY = ("bool", False)


def _kv(value: Any) -> Any:
    if value is True:
        return _TRUE_KEY
    if value is False:
        return _FALSE_KEY
    if value.__class__ is float:
        return ("float", value)
    return value


@dataclass
class HostSpec:
    """One end system.

    ``addr`` defaults to ``10.<index+1>.0.1`` when left empty.  ``cm``
    attaches a :class:`~repro.core.manager.CongestionManager` (with the named
    controller/scheduler) after the topology is wired; experiments that need
    to control CM construction order themselves leave it ``False`` and attach
    one by hand.
    """

    name: str
    addr: str = ""
    costs: bool = True
    cm: bool = False
    cm_controller: str = "aimd_window"
    cm_scheduler: str = "round_robin"

    def validate(self, path: str) -> None:
        _require(isinstance(self.name, str) and bool(self.name), path, "host name must be a non-empty string")
        _require(isinstance(self.addr, str), f"{path}.addr", "must be a string")
        _require(isinstance(self.costs, bool), f"{path}.costs", "must be a boolean")
        _require(isinstance(self.cm, bool), f"{path}.cm", "must be a boolean")
        _require(self.cm_controller in CM_CONTROLLERS, f"{path}.cm_controller",
                 f"unknown controller {self.cm_controller!r}; choose from {', '.join(CM_CONTROLLERS)}")
        _require(self.cm_scheduler in CM_SCHEDULERS, f"{path}.cm_scheduler",
                 f"unknown scheduler {self.cm_scheduler!r}; choose from {', '.join(CM_SCHEDULERS)}")

    def _key(self) -> tuple:
        return (self.name, self.addr, _kv(self.costs), _kv(self.cm),
                self.cm_controller, self.cm_scheduler)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class LinkSpec:
    """A bidirectional Dummynet-style channel between two named hosts.

    ``delay`` is the one-way propagation delay; ``loss_rate`` applies to the
    ``a -> b`` direction and ``reverse_loss_rate`` to ``b -> a`` (``None``
    means symmetric, matching :class:`~repro.netsim.channel.Channel`).
    ``seed_offset`` is added to the run seed for this link's random-loss RNG
    so multiple links in one scenario draw independent streams; leaving it
    at ``0`` auto-derives an offset from the link's position (``2 * index``,
    since each channel consumes two consecutive seeds), which keeps the
    first link byte-identical to the legacy single-link testbeds while
    making additional links independent by default.
    ``rate_schedule`` is a sequence of ``(time, rate_bps)`` steps applied by
    the runner while the scenario executes (Figures 8/9-style bandwidth
    changes).

    ``loss`` selects a stateful burst-loss model per direction (currently
    ``{"kind": "gilbert_elliott", "p_good_bad": ..., "p_bad_good": ...,
    "loss_good": 0.0, "loss_bad": 1.0}``); it replaces the Bernoulli
    ``loss_rate``, which must stay 0.  ``aqm`` selects active queue
    management (currently ``{"kind": "red", "min_th": ..., "max_th": ...,
    "max_p": 0.1, "w_q": 0.002, "mean_packet_bytes": 1000}``), which
    ECN-marks capable packets and drops the rest; it replaces the simple
    ``ecn_threshold``, which must stay unset.
    """

    a: str
    b: str
    rate_bps: float
    delay: float
    queue_limit: Optional[int] = 100
    loss_rate: float = 0.0
    reverse_loss_rate: Optional[float] = None
    ecn_threshold: Optional[int] = None
    seed_offset: int = 0
    rate_schedule: Tuple[Tuple[float, float], ...] = ()
    loss: Optional[Dict[str, Any]] = None
    aqm: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        # Normalize JSON lists into tuples; malformed steps (including
        # non-sequence entries) are preserved so validate() can report them
        # with a path-qualified message rather than a raw TypeError here.
        self.rate_schedule = tuple(
            tuple(step) if isinstance(step, (list, tuple)) else (step,)
            for step in self.rate_schedule
        )

    def validate(self, path: str, host_names: Sequence[str]) -> None:
        for end, label in ((self.a, "a"), (self.b, "b")):
            _require(end in host_names, f"{path}.{label}",
                     f"unknown host {end!r}; declared hosts: {', '.join(host_names) or '(none)'}")
        _require(self.a != self.b, path, f"link endpoints must differ, both are {self.a!r}")
        _check_number(self.rate_bps, f"{path}.rate_bps", minimum=1.0)
        _check_number(self.delay, f"{path}.delay", minimum=0.0)
        _check_number(self.loss_rate, f"{path}.loss_rate", minimum=0.0, maximum=1.0)
        if self.reverse_loss_rate is not None:
            _check_number(self.reverse_loss_rate, f"{path}.reverse_loss_rate", minimum=0.0, maximum=1.0)
        if self.queue_limit is not None:
            _check_number(self.queue_limit, f"{path}.queue_limit", minimum=1)
        if self.ecn_threshold is not None:
            _check_number(self.ecn_threshold, f"{path}.ecn_threshold", minimum=1)
        _require(isinstance(self.seed_offset, int), f"{path}.seed_offset", "must be an integer")
        last = -1.0
        for index, step in enumerate(self.rate_schedule):
            step_path = f"{path}.rate_schedule[{index}]"
            _require(len(step) == 2, step_path, "each step must be a (time, rate_bps) pair")
            _check_number(step[0], f"{step_path}.time", minimum=0.0)
            _check_number(step[1], f"{step_path}.rate_bps", minimum=1.0)
            _require(step[0] > last, step_path, "step times must be strictly increasing")
            last = step[0]
        if self.loss is not None:
            _check_loss_block(self.loss, f"{path}.loss")
            _require(self.loss_rate == 0.0, f"{path}.loss_rate",
                     "must stay 0 when a loss model is configured (the model replaces "
                     "the Bernoulli draw)")
            _require(self.reverse_loss_rate is None, f"{path}.reverse_loss_rate",
                     "must stay unset when a loss model is configured (each direction "
                     "gets its own model instance)")
        if self.aqm is not None:
            _check_aqm_block(self.aqm, f"{path}.aqm")
            _require(self.ecn_threshold is None, f"{path}.ecn_threshold",
                     "must stay unset when an aqm is configured (the aqm owns marking)")

    def _key(self) -> tuple:
        return (self.a, self.b, _kv(self.rate_bps), _kv(self.delay),
                _kv(self.queue_limit), _kv(self.loss_rate), _kv(self.reverse_loss_rate),
                _kv(self.ecn_threshold), _kv(self.seed_offset),
                tuple(tuple(_kv(v) for v in step) for step in self.rate_schedule),
                _block_key(self.loss), _block_key(self.aqm))

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["rate_schedule"] = [list(step) for step in self.rate_schedule]
        # Absent optional blocks are omitted so pre-existing specs render
        # (and digest) exactly as before the fields were introduced.
        if self.loss is None:
            payload.pop("loss")
        if self.aqm is None:
            payload.pop("aqm")
        return payload


@dataclass
class DumbbellSpec:
    """The classic shared-bottleneck topology, generated instead of listed.

    Builds ``n_pairs`` sender/receiver host pairs (named ``sender0`` /
    ``receiver0`` ...) around one constrained router-to-router link via
    :func:`repro.netsim.channel.build_dumbbell`.  ``cm_senders`` lists the
    sender indices that get a Congestion Manager attached after wiring.
    """

    n_pairs: int
    bottleneck_bps: float
    bottleneck_delay: float
    access_bps: float = 1e9
    access_delay: float = 0.1e-3
    queue_limit: int = 64
    loss_rate: float = 0.0
    ecn_threshold: Optional[int] = None
    with_costs: bool = True
    cm_senders: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.cm_senders = tuple(int(i) for i in self.cm_senders)

    def host_names(self) -> List[str]:
        """The generated host names, senders first (matching build order)."""
        names = [f"sender{i}" for i in range(self.n_pairs)]
        names += [f"receiver{i}" for i in range(self.n_pairs)]
        return names

    def validate(self, path: str) -> None:
        _require(isinstance(self.n_pairs, int) and self.n_pairs >= 1, f"{path}.n_pairs",
                 f"need at least one sender/receiver pair, got {self.n_pairs!r}")
        _check_number(self.bottleneck_bps, f"{path}.bottleneck_bps", minimum=1.0)
        _check_number(self.bottleneck_delay, f"{path}.bottleneck_delay", minimum=0.0)
        _check_number(self.access_bps, f"{path}.access_bps", minimum=1.0)
        _check_number(self.access_delay, f"{path}.access_delay", minimum=0.0)
        _check_number(self.queue_limit, f"{path}.queue_limit", minimum=1)
        _check_number(self.loss_rate, f"{path}.loss_rate", minimum=0.0, maximum=1.0)
        if self.ecn_threshold is not None:
            _check_number(self.ecn_threshold, f"{path}.ecn_threshold", minimum=1)
        for index in self.cm_senders:
            _require(0 <= index < self.n_pairs, f"{path}.cm_senders",
                     f"sender index {index} out of range 0..{self.n_pairs - 1}")

    def _key(self) -> tuple:
        return (_kv(self.n_pairs), _kv(self.bottleneck_bps), _kv(self.bottleneck_delay),
                _kv(self.access_bps), _kv(self.access_delay), _kv(self.queue_limit),
                _kv(self.loss_rate), _kv(self.ecn_threshold), _kv(self.with_costs),
                self.cm_senders)

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["cm_senders"] = list(self.cm_senders)
        return payload


@dataclass
class GraphNodeSpec:
    """One named node of a graph topology: an end system or a router.

    Hosts carry applications, CPU cost ledgers and (optionally) a Congestion
    Manager; routers only forward.  ``addr`` defaults to ``10.<i+1>.0.1``
    where ``i`` counts the *host* nodes declared before this one (routers
    default to ``router:<name>``, which never appears in a packet header).
    """

    name: str
    kind: str = "host"
    addr: str = ""
    costs: bool = True
    cm: bool = False
    cm_controller: str = "aimd_window"
    cm_scheduler: str = "round_robin"

    def validate(self, path: str) -> None:
        _require(isinstance(self.name, str) and bool(self.name), path,
                 "node name must be a non-empty string")
        _require(self.kind in NODE_KINDS, f"{path}.kind",
                 f"unknown node kind {self.kind!r}; choose from {', '.join(NODE_KINDS)}")
        _require(isinstance(self.addr, str), f"{path}.addr", "must be a string")
        _require(isinstance(self.costs, bool), f"{path}.costs", "must be a boolean")
        _require(isinstance(self.cm, bool), f"{path}.cm", "must be a boolean")
        if self.kind == "router":
            _require(not self.cm, f"{path}.cm",
                     "routers cannot run a Congestion Manager (the CM is an end-system module)")
        _require(self.cm_controller in CM_CONTROLLERS, f"{path}.cm_controller",
                 f"unknown controller {self.cm_controller!r}; choose from {', '.join(CM_CONTROLLERS)}")
        _require(self.cm_scheduler in CM_SCHEDULERS, f"{path}.cm_scheduler",
                 f"unknown scheduler {self.cm_scheduler!r}; choose from {', '.join(CM_SCHEDULERS)}")

    def _key(self) -> tuple:
        return (self.name, self.kind, self.addr, _kv(self.costs), _kv(self.cm),
                self.cm_controller, self.cm_scheduler)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class GraphLinkSpec:
    """A bidirectional link between two named graph nodes.

    Semantics match :class:`LinkSpec` (one :class:`~repro.netsim.link.Link`
    per direction, ``seed_offset`` staggering the loss RNGs, ``loss_rate``
    on the ``a -> b`` direction); there is no ``rate_schedule`` — graph
    scenarios change conditions through workload churn instead.  ``loss``
    and ``aqm`` select the burst-loss model / active queue management per
    direction exactly as on :class:`LinkSpec`.
    """

    a: str
    b: str
    rate_bps: float
    delay: float
    queue_limit: Optional[int] = 100
    loss_rate: float = 0.0
    reverse_loss_rate: Optional[float] = None
    ecn_threshold: Optional[int] = None
    seed_offset: int = 0
    loss: Optional[Dict[str, Any]] = None
    aqm: Optional[Dict[str, Any]] = None

    def validate(self, path: str, node_names: Sequence[str]) -> None:
        for end, label in ((self.a, "a"), (self.b, "b")):
            _require(end in node_names, f"{path}.{label}",
                     f"unknown node {end!r}; declared nodes: {', '.join(node_names) or '(none)'}")
        _require(self.a != self.b, path, f"link endpoints must differ, both are {self.a!r}")
        _check_number(self.rate_bps, f"{path}.rate_bps", minimum=1.0)
        _check_number(self.delay, f"{path}.delay", minimum=0.0)
        _check_number(self.loss_rate, f"{path}.loss_rate", minimum=0.0, maximum=1.0)
        if self.reverse_loss_rate is not None:
            _check_number(self.reverse_loss_rate, f"{path}.reverse_loss_rate",
                          minimum=0.0, maximum=1.0)
        if self.queue_limit is not None:
            _check_number(self.queue_limit, f"{path}.queue_limit", minimum=1)
        if self.ecn_threshold is not None:
            _check_number(self.ecn_threshold, f"{path}.ecn_threshold", minimum=1)
        _require(isinstance(self.seed_offset, int), f"{path}.seed_offset", "must be an integer")
        if self.loss is not None:
            _check_loss_block(self.loss, f"{path}.loss")
            _require(self.loss_rate == 0.0, f"{path}.loss_rate",
                     "must stay 0 when a loss model is configured (the model replaces "
                     "the Bernoulli draw)")
            _require(self.reverse_loss_rate is None, f"{path}.reverse_loss_rate",
                     "must stay unset when a loss model is configured (each direction "
                     "gets its own model instance)")
        if self.aqm is not None:
            _check_aqm_block(self.aqm, f"{path}.aqm")
            _require(self.ecn_threshold is None, f"{path}.ecn_threshold",
                     "must stay unset when an aqm is configured (the aqm owns marking)")

    def _key(self) -> tuple:
        return (self.a, self.b, _kv(self.rate_bps), _kv(self.delay),
                _kv(self.queue_limit), _kv(self.loss_rate), _kv(self.reverse_loss_rate),
                _kv(self.ecn_threshold), _kv(self.seed_offset),
                _block_key(self.loss), _block_key(self.aqm))

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        if self.loss is None:
            payload.pop("loss")
        if self.aqm is None:
            payload.pop("aqm")
        return payload


@dataclass
class RerouteSpec:
    """A scheduled mid-run routing change on one graph link.

    At simulated ``time`` the link between ``a`` and ``b`` changes its
    one-way propagation delay (the routing cost) to ``delay`` in both
    directions; shortest-path next-hops are then recomputed over the whole
    graph and reinstalled into every node — the mobility-style handoff: a
    path that got slower sheds its traffic onto the now-shorter alternative
    mid-run.  ``a``/``b`` must name a declared link (either orientation).
    """

    time: float
    a: str
    b: str
    delay: float

    def validate(self, path: str, link_pairs: Sequence[Tuple[str, str]]) -> None:
        _check_number(self.time, f"{path}.time", minimum=1e-9)
        _check_number(self.delay, f"{path}.delay", minimum=0.0)
        pair = (min(self.a, self.b), max(self.a, self.b))
        _require(pair in link_pairs, path,
                 f"no declared link between {self.a!r} and {self.b!r}; reroutes "
                 "change the cost of an existing link, they do not create one")

    def _key(self) -> tuple:
        return (_kv(self.time), self.a, self.b, _kv(self.delay))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class GraphSpec:
    """An arbitrary topology: named nodes joined by bidirectional links.

    Compiled by the builder through :func:`repro.netsim.graph.build_graph`:
    static shortest-path routes (delay metric, deterministic name-level
    tie-breaks) are installed into the hosts' and routers' routing tables,
    so parking-lot, star and multi-bottleneck mesh scenarios forward
    through the exact same :class:`~repro.iplayer.ip.IPLayer` machinery as
    the two-host testbeds.  Applications and workloads may only be placed
    on ``host`` nodes.
    """

    nodes: List[GraphNodeSpec] = field(default_factory=list)
    links: List[GraphLinkSpec] = field(default_factory=list)
    reroutes: List[RerouteSpec] = field(default_factory=list)

    def node_names(self) -> List[str]:
        """Every node name (hosts and routers), in declaration order."""
        return [node.name for node in self.nodes]

    def host_names(self) -> List[str]:
        """Host-kind node names in declaration order (valid app placements)."""
        return [node.name for node in self.nodes if node.kind == "host"]

    def routing(self) -> Dict[str, Dict[str, str]]:
        """The name-level next-hop tables the builder will install.

        Pure function of the link set — declaration-order independent (the
        property test layer permutes nodes/links and asserts equality).
        """
        from ..netsim.graph import shortest_path_next_hops

        edges: Dict[Tuple[str, str], float] = {}
        for link in self.links:
            edges[(link.a, link.b)] = link.delay
            edges[(link.b, link.a)] = link.delay
        return shortest_path_next_hops(edges)

    def validate(self, path: str) -> None:
        _require(bool(self.nodes), f"{path}.nodes", "a graph needs at least one node")
        seen: Dict[str, int] = {}
        seen_addrs: Dict[str, str] = {}
        host_count = 0
        for index, node in enumerate(self.nodes):
            node_path = f"{path}.nodes[{index}]"
            _require(isinstance(node, GraphNodeSpec), node_path,
                     f"expected a GraphNodeSpec, got {type(node).__name__}")
            node.validate(node_path)
            _require(node.name not in seen, node_path,
                     f"duplicate node name {node.name!r} (also {path}.nodes[{seen.get(node.name)}])")
            seen[node.name] = index
            if node.kind == "host":
                addr = node.addr or default_addr(host_count)
                _require(addr not in seen_addrs, f"{node_path}.addr",
                         f"duplicate address {addr!r} (also used by {seen_addrs.get(addr)!r})")
                seen_addrs[addr] = node.name
                host_count += 1
        _require(host_count >= 1, f"{path}.nodes",
                 "a graph needs at least one host node (routers cannot run applications)")
        names = self.node_names()
        adjacency: Dict[str, List[str]] = {name: [] for name in names}
        seen_pairs: Dict[Tuple[str, str], int] = {}
        for index, link in enumerate(self.links):
            link_path = f"{path}.links[{index}]"
            _require(isinstance(link, GraphLinkSpec), link_path,
                     f"expected a GraphLinkSpec, got {type(link).__name__}")
            link.validate(link_path, names)
            pair = (min(link.a, link.b), max(link.a, link.b))
            _require(pair not in seen_pairs, link_path,
                     f"duplicate link between {link.a!r} and {link.b!r} "
                     f"(also {path}.links[{seen_pairs.get(pair)}]); parallel links "
                     "would make the static routing ambiguous")
            seen_pairs[pair] = index
            adjacency[link.a].append(link.b)
            adjacency[link.b].append(link.a)
        if len(names) > 1:
            # Reject disconnected graphs eagerly: an unreachable destination
            # would otherwise surface mid-run as a NoRouteError on the first
            # send, far from the spec mistake that caused it.
            reached = {names[0]}
            frontier = [names[0]]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour not in reached:
                        reached.add(neighbour)
                        frontier.append(neighbour)
            unreachable = [name for name in names if name not in reached]
            _require(not unreachable, f"{path}.links",
                     f"graph is disconnected: no path from {names[0]!r} to "
                     f"{', '.join(map(repr, unreachable))}")
        link_pairs = tuple(seen_pairs)
        last_time = 0.0
        for index, reroute in enumerate(self.reroutes):
            reroute_path = f"{path}.reroutes[{index}]"
            _require(isinstance(reroute, RerouteSpec), reroute_path,
                     f"expected a RerouteSpec, got {type(reroute).__name__}")
            reroute.validate(reroute_path, link_pairs)
            _require(reroute.time >= last_time, f"{reroute_path}.time",
                     "reroute times must be non-decreasing (declaration order is "
                     "the tie-break for same-instant changes)")
            last_time = reroute.time

    def _key(self) -> tuple:
        return (tuple(node._key() for node in self.nodes),
                tuple(link._key() for link in self.links),
                tuple(reroute._key() for reroute in self.reroutes))

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "nodes": [node.to_dict() for node in self.nodes],
            "links": [link.to_dict() for link in self.links],
        }
        # Omitted when empty so pre-reroute specs render/digest unchanged.
        if self.reroutes:
            payload["reroutes"] = [reroute.to_dict() for reroute in self.reroutes]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], path: str = "graph") -> "GraphSpec":
        _reject_unknown_keys(cls, data, path)
        payload = dict(data)
        nodes = [_from_mapping(GraphNodeSpec, item, f"{path}.nodes[{i}]")
                 for i, item in enumerate(payload.pop("nodes", []) or [])]
        links = [_from_mapping(GraphLinkSpec, item, f"{path}.links[{i}]")
                 for i, item in enumerate(payload.pop("links", []) or [])]
        reroutes = [_from_mapping(RerouteSpec, item, f"{path}.reroutes[{i}]")
                    for i, item in enumerate(payload.pop("reroutes", []) or [])]
        return cls(nodes=nodes, links=links, reroutes=reroutes)


@dataclass
class WorkloadSpec:
    """One stochastic traffic generator from the workload registry.

    Unlike an :class:`AppSpec` — one application wired at build time — a
    workload *churns*: driven by the event engine, it attaches application
    instances (flows, web sessions, audio bursts) at seeded random arrival
    times and detaches them again while the scenario runs.  ``params`` is
    validated against the generator's declared schema in
    :mod:`repro.workloads`.  ``start``/``stop`` bound the generator's active
    window in simulated seconds (``stop=None`` means the scenario horizon);
    ``seed_offset`` decorrelates multiple workloads under one run seed
    (``0`` auto-staggers by declaration order).
    """

    kind: str
    host: str
    peer: str = ""
    label: str = ""
    start: float = 0.0
    stop: Optional[float] = None
    seed_offset: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def normalized_params(self) -> Dict[str, Any]:
        """The defaults-applied params cached by the last :meth:`validate`."""
        cached = getattr(self, "_normalized_params", None)
        if cached is None:
            raise SpecError("params", f"workload {self.kind!r} has not been validated yet")
        return cached

    def validate(self, path: str, host_names: Sequence[str]) -> Dict[str, Any]:
        """Validate, cache and return the normalized (defaults-applied) params."""
        from ..workloads import get_workload, known_workloads, validate_workload_params

        _require(isinstance(self.kind, str) and bool(self.kind), f"{path}.kind",
                 "workload kind must be a non-empty string")
        try:
            workload_cls = get_workload(self.kind)
        except KeyError:
            raise SpecError(f"{path}.kind",
                            f"unknown workload {self.kind!r}; registered: "
                            f"{', '.join(known_workloads())}") from None
        _require(self.host in host_names, f"{path}.host",
                 f"unknown host {self.host!r}; declared hosts: {', '.join(host_names) or '(none)'}")
        if workload_cls.needs_peer:
            _require(bool(self.peer), f"{path}.peer",
                     f"workload {self.kind!r} needs a peer host")
        if self.peer:
            _require(self.peer in host_names, f"{path}.peer",
                     f"unknown host {self.peer!r}; declared hosts: {', '.join(host_names) or '(none)'}")
            _require(self.peer != self.host, f"{path}.peer", "peer must differ from host")
        _check_number(self.start, f"{path}.start", minimum=0.0)
        if self.stop is not None:
            _check_number(self.stop, f"{path}.stop", minimum=0.0)
            _require(self.stop > self.start, f"{path}.stop",
                     f"must be later than start ({self.start!r}), got {self.stop!r}")
        _require(isinstance(self.seed_offset, int), f"{path}.seed_offset", "must be an integer")
        _require(isinstance(self.params, dict), f"{path}.params", "must be a mapping")
        normalized = validate_workload_params(self.kind, self.params, path=f"{path}.params")
        self._normalized_params = normalized
        return normalized

    def _key(self) -> tuple:
        # The registered class object joins the key so re-registering a
        # different generator under the same kind can never serve stale
        # cached validations (mirrors AppSpec._key).
        from ..workloads import WORKLOADS

        return (self.kind, WORKLOADS.get(self.kind), self.host, self.peer, self.label,
                _kv(self.start), _kv(self.stop), _kv(self.seed_offset),
                tuple(sorted((name, _kv(value)) for name, value in self.params.items())))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "host": self.host,
            "peer": self.peer,
            "label": self.label,
            "start": self.start,
            "stop": self.stop,
            "seed_offset": self.seed_offset,
            "params": dict(self.params),
        }


@dataclass
class AppSpec:
    """One application instance from the registry.

    ``host`` is where the application runs; ``peer`` names the remote host
    for applications that address one (senders, clients).  ``params`` is
    validated against the application's declared parameter schema — unknown
    parameters, missing required ones and type mismatches are all eager
    :class:`SpecError`\\ s.  ``label`` distinguishes multiple instances of
    the same application in the result (defaults to ``app[index]``).
    """

    app: str
    host: str
    peer: str = ""
    label: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def normalized_params(self) -> Dict[str, Any]:
        """The defaults-applied params cached by the last :meth:`validate`.

        The builder runs once per trial, so it reuses the dict the eager
        validation pass already produced instead of re-walking the schema.
        """
        cached = getattr(self, "_normalized_params", None)
        if cached is None:
            raise SpecError("params", f"app {self.app!r} has not been validated yet")
        return cached

    def validate(self, path: str, host_names: Sequence[str]) -> Dict[str, Any]:
        """Validate, cache and return the normalized (defaults-applied) params."""
        from .applications import get_application, known_applications, validate_params

        _require(isinstance(self.app, str) and bool(self.app), f"{path}.app",
                 "application name must be a non-empty string")
        try:
            app_cls = get_application(self.app)
        except KeyError:
            raise SpecError(f"{path}.app",
                            f"unknown application {self.app!r}; registered: "
                            f"{', '.join(known_applications())}") from None
        _require(self.host in host_names, f"{path}.host",
                 f"unknown host {self.host!r}; declared hosts: {', '.join(host_names) or '(none)'}")
        if app_cls.needs_peer:
            _require(bool(self.peer), f"{path}.peer",
                     f"application {self.app!r} needs a peer host")
        if self.peer:
            _require(self.peer in host_names, f"{path}.peer",
                     f"unknown host {self.peer!r}; declared hosts: {', '.join(host_names) or '(none)'}")
            _require(self.peer != self.host, f"{path}.peer", "peer must differ from host")
        _require(isinstance(self.params, dict), f"{path}.params", "must be a mapping")
        normalized = validate_params(self.app, self.params, path=f"{path}.params")
        self._normalized_params = normalized
        return normalized

    def _key(self) -> tuple:
        # The registered class object joins the key so re-registering a
        # different application under the same name can never serve stale
        # cached validations (mirrors _PARAMS_CACHE in applications.py).
        from .applications import APPLICATIONS

        return (self.app, APPLICATIONS.get(self.app), self.host, self.peer, self.label,
                tuple(sorted((name, _kv(value)) for name, value in self.params.items())))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "host": self.host,
            "peer": self.peer,
            "label": self.label,
            "params": dict(self.params),
        }


@dataclass
class StopSpec:
    """When the runner stops the simulation.

    ``until`` is the hard horizon in simulated seconds.  With
    ``when_apps_done`` the runner additionally polls every
    ``check_interval`` simulated seconds and stops early once every
    application that reports a completion state is done.
    """

    until: float = 10.0
    when_apps_done: bool = False
    check_interval: float = 1.0

    def validate(self, path: str) -> None:
        _check_number(self.until, f"{path}.until", minimum=1e-9)
        _check_number(self.check_interval, f"{path}.check_interval", minimum=1e-9)
        _require(isinstance(self.when_apps_done, bool), f"{path}.when_apps_done", "must be a boolean")

    def _key(self) -> tuple:
        return (_kv(self.until), _kv(self.when_apps_done), _kv(self.check_interval))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class TelemetrySpec:
    """What the unified telemetry layer records during the run.

    ``samplers`` selects the periodic state samplers (driven by the event
    engine every ``sample_interval`` simulated seconds):

    * ``macroflows`` — per-macroflow cwnd, CM rate estimate, loss EWMA and
      outstanding bytes;
    * ``schedulers`` — per-macroflow scheduler backlog (pending requests);
    * ``links`` — per-link queue depth;
    * ``apps`` — whatever each application reports via
      ``telemetry_sample()`` (goodput counters, current layer, ...).

    ``events`` lists event probes (from the
    :data:`repro.telemetry.probes.EVENTS` catalog) whose emissions are kept
    in a bounded event log — a ring of the newest ``ring_capacity`` records
    or, with ``event_recorder="reservoir"``, a seeded uniform sample of the
    whole run.  Every recorder is bounded: ``max_samples`` caps each sampled
    series, ``ring_capacity`` the event log.
    """

    sample_interval: float = 0.25
    samplers: Tuple[str, ...] = ("macroflows", "links", "apps")
    events: Tuple[str, ...] = ()
    max_samples: int = 4096
    ring_capacity: int = 4096
    event_recorder: str = "ring"

    def __post_init__(self) -> None:
        self.samplers = tuple(self.samplers)
        self.events = tuple(self.events)

    def validate(self, path: str) -> None:
        from ..telemetry.probes import EVENT_NAMES
        from ..telemetry.samplers import SAMPLER_GROUPS

        _check_number(self.sample_interval, f"{path}.sample_interval", minimum=1e-9)
        for index, group in enumerate(self.samplers):
            _require(group in SAMPLER_GROUPS, f"{path}.samplers[{index}]",
                     f"unknown sampler group {group!r}; choose from {', '.join(SAMPLER_GROUPS)}")
        for index, event in enumerate(self.events):
            _require(event in EVENT_NAMES, f"{path}.events[{index}]",
                     f"unknown telemetry event {event!r}; catalog: {', '.join(EVENT_NAMES)}")
        _require(isinstance(self.max_samples, int) and self.max_samples >= 1,
                 f"{path}.max_samples", f"must be an integer >= 1, got {self.max_samples!r}")
        _require(isinstance(self.ring_capacity, int) and self.ring_capacity >= 1,
                 f"{path}.ring_capacity", f"must be an integer >= 1, got {self.ring_capacity!r}")
        _require(self.event_recorder in TELEMETRY_EVENT_RECORDERS, f"{path}.event_recorder",
                 f"unknown event recorder {self.event_recorder!r}; "
                 f"choose from {', '.join(TELEMETRY_EVENT_RECORDERS)}")

    def _key(self) -> tuple:
        return (_kv(self.sample_interval), self.samplers, self.events,
                _kv(self.max_samples), _kv(self.ring_capacity), self.event_recorder)

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["samplers"] = list(self.samplers)
        payload["events"] = list(self.events)
        return payload


@dataclass
class EngineSpec:
    """How the simulation executes — never *what* it simulates.

    ``shards`` > 1 partitions a graph scenario across that many worker
    processes (conservative-lookahead sync along cut links; see
    ``docs/parallel_engine.md``).  Because the engine block only selects an
    execution strategy, it is excluded from the result ``spec_digest``: the
    same scenario at any shard count digests — and must byte-compare —
    identically.
    """

    shards: int = 1

    def validate(self, path: str) -> None:
        _require(isinstance(self.shards, int) and not isinstance(self.shards, bool)
                 and self.shards >= 1,
                 f"{path}.shards", f"must be an integer >= 1, got {self.shards!r}")

    def _key(self) -> tuple:
        return (_kv(self.shards),)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


#: Sealed (frozen) class variants, created lazily per spec class by
#: :meth:`ScenarioSpec.seal`.
_SEALED_VARIANTS: Dict[type, type] = {}


def _sealed_setattr(self, name: str, value: Any) -> None:
    raise SpecError(
        "", f"{type(self).__name__} is shared and sealed; build a fresh spec instead of mutating"
    )


def _sealed_validate(self) -> "ScenarioSpec":
    # Sealing proved the content valid and the class swap makes mutation
    # impossible, so re-validation is a no-op (the per-trial fast path).
    return self


def _sealed_variant(cls: type) -> type:
    sealed = _SEALED_VARIANTS.get(cls)
    if sealed is None:
        namespace: Dict[str, Any] = {"__setattr__": _sealed_setattr, "_is_sealed": True}
        if cls is ScenarioSpec:
            namespace["validate"] = _sealed_validate
        sealed = type(f"Sealed{cls.__name__}", (cls,), namespace)
        _SEALED_VARIANTS[cls] = sealed
    return sealed


@dataclass
class ScenarioSpec:
    """The root of the declarative scenario tree."""

    name: str
    description: str = ""
    hosts: List[HostSpec] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)
    dumbbell: Optional[DumbbellSpec] = None
    graph: Optional[GraphSpec] = None
    apps: List[AppSpec] = field(default_factory=list)
    workloads: List[WorkloadSpec] = field(default_factory=list)
    stop: StopSpec = field(default_factory=StopSpec)
    telemetry: Optional[TelemetrySpec] = None
    engine: Optional[EngineSpec] = None
    metrics: Tuple[str, ...] = ("apps",)
    seed: int = 0

    #: Content-keyed memo of successful validations.  Two specs with equal
    #: keys pass or fail identically (the key captures every validated
    #: field, with bools disambiguated from numbers), so per-trial re-runs
    #: of ``validate`` collapse to one dict probe; the stored value is the
    #: defaults-applied params of each app, re-attached on a hit.
    _VALIDATION_CACHE: ClassVar[Dict[tuple, Tuple[tuple, tuple]]] = {}
    _VALIDATION_CACHE_MAX: ClassVar[int] = 512

    def __post_init__(self) -> None:
        self.metrics = tuple(self.metrics)

    # ------------------------------------------------------------ validation
    def host_names(self) -> List[str]:
        """All host names the apps/links may reference, in build order."""
        if self.dumbbell is not None:
            return self.dumbbell.host_names()
        if self.graph is not None:
            return self.graph.host_names()
        return [host.name for host in self.hosts]

    def _key(self) -> tuple:
        # Every validated field must appear here: the validation memo serves
        # cached results for equal keys, so a field the key omits would let
        # two different specs collide (the workload/graph regression test in
        # tests/test_scenario_spec.py guards exactly that).
        dumbbell = self.dumbbell
        graph = self.graph
        telemetry = self.telemetry
        engine = self.engine
        return (self.name, self.description,
                tuple(host._key() for host in self.hosts),
                tuple(link._key() for link in self.links),
                dumbbell._key() if dumbbell is not None else None,
                graph._key() if graph is not None else None,
                tuple(app._key() for app in self.apps),
                tuple(workload._key() for workload in self.workloads),
                self.stop._key(),
                telemetry._key() if telemetry is not None else None,
                engine._key() if engine is not None else None,
                self.metrics, _kv(self.seed))

    def validate(self) -> "ScenarioSpec":
        """Validate the whole tree eagerly; returns ``self`` for chaining.

        Successful validations are memoized by content (see
        ``_VALIDATION_CACHE``); an equal spec seen before skips straight to
        re-attaching the cached defaults-applied app params.
        """
        cache = ScenarioSpec._VALIDATION_CACHE
        try:
            key = self._key()
        except TypeError:
            # Unhashable garbage in some field; the full walk will name it.
            key = None
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                app_params, workload_params = cached
                for app, params in zip(self.apps, app_params):
                    app._normalized_params = dict(params)
                for workload, params in zip(self.workloads, workload_params):
                    workload._normalized_params = dict(params)
                return self
        _require(isinstance(self.name, str) and bool(self.name), "name",
                 "scenario name must be a non-empty string")
        _require(isinstance(self.seed, int), "seed", "must be an integer")
        if self.dumbbell is not None:
            _require(not self.hosts and not self.links, "dumbbell",
                     "a dumbbell scenario generates its hosts; drop the explicit hosts/links")
            _require(self.graph is None, "graph",
                     "a scenario declares either a dumbbell or a graph, not both")
            self.dumbbell.validate("dumbbell")
        elif self.graph is not None:
            _require(not self.hosts and not self.links, "graph",
                     "a graph scenario declares its nodes/links inside the graph block; "
                     "drop the explicit hosts/links")
            self.graph.validate("graph")
        else:
            _require(bool(self.hosts), "hosts", "need at least one host (or a dumbbell)")
            seen_names: Dict[str, int] = {}
            seen_addrs: Dict[str, str] = {}
            for index, host in enumerate(self.hosts):
                path = f"hosts[{index}]"
                host.validate(path)
                _require(host.name not in seen_names, path,
                         f"duplicate host name {host.name!r} (also hosts[{seen_names.get(host.name)}])")
                seen_names[host.name] = index
                # Check the *effective* address: an explicit addr must not
                # collide with another host's builder-generated default.
                addr = host.addr or default_addr(index)
                _require(addr not in seen_addrs, f"{path}.addr",
                         f"duplicate address {addr!r} (also used by {seen_addrs.get(addr)!r})")
                seen_addrs[addr] = host.name
        names = self.host_names()
        for index, link in enumerate(self.links):
            link.validate(f"links[{index}]", names)
        seen_labels: Dict[str, int] = {}
        for index, app in enumerate(self.apps):
            app.validate(f"apps[{index}]", names)
            if app.label:
                _require(app.label not in seen_labels, f"apps[{index}].label",
                         f"duplicate label {app.label!r} (also apps[{seen_labels.get(app.label)}]); "
                         "labels address app entries in the result, so they must be unique")
                seen_labels[app.label] = index
        seen_workload_labels: Dict[str, int] = {}
        for index, workload in enumerate(self.workloads):
            workload.validate(f"workloads[{index}]", names)
            if workload.label:
                _require(workload.label not in seen_workload_labels, f"workloads[{index}].label",
                         f"duplicate label {workload.label!r} "
                         f"(also workloads[{seen_workload_labels.get(workload.label)}]); "
                         "labels address workload entries in the result, so they must be unique")
                seen_workload_labels[workload.label] = index
        self.stop.validate("stop")
        if self.telemetry is not None:
            self.telemetry.validate("telemetry")
        if self.engine is not None:
            self.engine.validate("engine")
            if self.engine.shards > 1:
                _require(self.graph is not None, "engine.shards",
                         "sharded execution needs a graph topology "
                         "(hosts/links and dumbbell scenarios run single-process)")
        for metric in self.metrics:
            _require(metric in METRIC_GROUPS, "metrics",
                     f"unknown metric group {metric!r}; choose from {', '.join(METRIC_GROUPS)}")
        if key is not None:
            if len(cache) >= ScenarioSpec._VALIDATION_CACHE_MAX:
                cache.clear()
            cache[key] = (
                tuple(dict(app._normalized_params) for app in self.apps),
                tuple(dict(workload._normalized_params) for workload in self.workloads),
            )
        return self

    def seal(self) -> "ScenarioSpec":
        """Validate, then freeze this spec tree in place; returns ``self``.

        Sealing swaps the spec and its children to ``Sealed*`` subclasses
        whose ``__setattr__`` raises and whose root ``validate`` is a no-op
        — the fast path for factories that hand one shared, immutable spec
        to many trials (``repro.experiments.topology``).  Note that sealing
        changes ``type(spec)``, so sealed and unsealed specs with equal
        content compare unequal under the dataclass ``__eq__``.
        """
        if getattr(self, "_is_sealed", False):
            return self
        self.validate()
        children: List[Any] = [*self.hosts, *self.links, *self.apps, *self.workloads, self.stop]
        if self.dumbbell is not None:
            children.append(self.dumbbell)
        if self.graph is not None:
            children.extend([*self.graph.nodes, *self.graph.links,
                             *self.graph.reroutes, self.graph])
        if self.telemetry is not None:
            children.append(self.telemetry)
        if self.engine is not None:
            children.append(self.engine)
        for child in children:
            child.__class__ = _sealed_variant(child.__class__)
        self.__class__ = _sealed_variant(ScenarioSpec)
        return self

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON rendering; ``from_dict(to_dict(spec))`` == ``spec``.

        The ``telemetry``, ``graph``, ``workloads`` and ``engine`` keys are
        only present when the corresponding block is configured, so specs
        without them render (and digest) exactly as they did before the
        blocks existed.
        """
        payload = {
            "name": self.name,
            "description": self.description,
            "hosts": [host.to_dict() for host in self.hosts],
            "links": [link.to_dict() for link in self.links],
            "dumbbell": self.dumbbell.to_dict() if self.dumbbell is not None else None,
            "apps": [app.to_dict() for app in self.apps],
            "stop": self.stop.to_dict(),
            "metrics": list(self.metrics),
            "seed": self.seed,
        }
        if self.graph is not None:
            payload["graph"] = self.graph.to_dict()
        if self.workloads:
            payload["workloads"] = [workload.to_dict() for workload in self.workloads]
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        if self.engine is not None:
            payload["engine"] = self.engine.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict`; unknown keys raise :class:`SpecError`."""
        _reject_unknown_keys(cls, data, "")
        payload = dict(data)
        hosts = [_from_mapping(HostSpec, item, f"hosts[{i}]")
                 for i, item in enumerate(payload.pop("hosts", []) or [])]
        links_data = payload.pop("links", []) or []
        links: List[LinkSpec] = []
        for i, item in enumerate(links_data):
            link = _from_mapping(LinkSpec, dict(item), f"links[{i}]")
            links.append(link)
        dumbbell_data = payload.pop("dumbbell", None)
        dumbbell = (_from_mapping(DumbbellSpec, dumbbell_data, "dumbbell")
                    if dumbbell_data is not None else None)
        graph_data = payload.pop("graph", None)
        graph = GraphSpec.from_dict(graph_data, "graph") if graph_data is not None else None
        apps = [_from_mapping(AppSpec, item, f"apps[{i}]")
                for i, item in enumerate(payload.pop("apps", []) or [])]
        workloads = [_from_mapping(WorkloadSpec, item, f"workloads[{i}]")
                     for i, item in enumerate(payload.pop("workloads", []) or [])]
        stop_data = payload.pop("stop", None)
        stop = _from_mapping(StopSpec, stop_data, "stop") if stop_data is not None else StopSpec()
        telemetry_data = payload.pop("telemetry", None)
        telemetry = (_from_mapping(TelemetrySpec, telemetry_data, "telemetry")
                     if telemetry_data is not None else None)
        engine_data = payload.pop("engine", None)
        engine = (_from_mapping(EngineSpec, engine_data, "engine")
                  if engine_data is not None else None)
        metrics_data = payload.pop("metrics", ("apps",))
        if not isinstance(metrics_data, (list, tuple)):
            # tuple("apps") would silently explode a string into characters.
            raise SpecError("metrics",
                            f"expected a list of metric groups, got {type(metrics_data).__name__} "
                            f"({metrics_data!r})")
        metrics = tuple(metrics_data)
        return cls(
            name=payload.pop("name", ""),
            description=payload.pop("description", ""),
            hosts=hosts,
            links=links,
            dumbbell=dumbbell,
            graph=graph,
            apps=apps,
            workloads=workloads,
            stop=stop,
            telemetry=telemetry,
            engine=engine,
            metrics=metrics,
            seed=payload.pop("seed", 0),
        )
