"""Bundled scenario presets that go beyond the paper's testbeds.

Each preset is a plain :class:`~repro.scenario.spec.ScenarioSpec` factory —
the CLI runs them by name (``python -m repro.scenario run web_vat_mix``) and
dumps them as editable JSON (``... dump web_vat_mix``).  They double as
living documentation of what the declarative API can compose that the
hand-wired testbeds never could:

``web_vat_mix``
    A web server and an interactive vat audio stream sharing one macroflow
    over a lossy wide-area path — the paper's core pitch (heterogeneous
    applications sharing congestion state) as a single runnable spec.
``bulk_macroflow_sharing``
    Four staggered TCP/CM transfers to one destination: each later flow
    joins the macroflow and inherits the window the earlier ones built.
``ecn_vs_loss``
    Two independent sender/receiver pairs in one simulation: one behind an
    ECN-marking bottleneck, one behind a drop-tail lossy pipe, same
    bandwidth — a congestion-signalling comparison the paper never ran.
``libcm_poll_streaming`` / ``libcm_select_streaming``
    The layered media server with the libcm event loop in ``poll`` versus
    ``select`` mode — the API-integration sweep, with the libcm syscall
    counters in the result showing what each mode costs.
``dumbbell_bulk``
    Two TCP/CM transfers over a shared dumbbell bottleneck with the
    telemetry layer sampling cwnd / CM rate / queue depth over time — the
    paper-style time-series evidence (cwnd and rate evolution, queue
    occupancy) as a single runnable spec; the ``timeseries`` experiment
    reproduces its figures through the parallel runner.
``parking_lot_mix``
    The classic parking-lot chain (four routers, three shared segments): a
    long-path bulk transfer and interactive vat audio cross every segment
    while seeded stochastic TCP churn loads each hop — the first preset on
    an arbitrary graph topology with runtime flow arrivals.
``star_web_churn``
    A star: one web server behind its access bottleneck, three clients
    churning heavy-tailed web sessions against it — per-request CM
    connections inheriting the shared macroflow state under Poisson load.
``mesh_macroflow_sharing``
    A multi-bottleneck mesh with an unused alternate path: three staggered
    TCP/CM transfers plus flow churn share one macroflow end-to-end while
    cross-traffic churns both bottleneck segments.
``gilbert_wireless_bulk``
    A bulk TCP/CM transfer plus flow churn crossing a wireless-style hop
    whose losses come in Gilbert–Elliott fade bursts rather than
    independent Bernoulli drops.
``red_gateway_sharing``
    Two ECN-capable TCP/CM flows and one non-ECN Reno flow behind a RED
    gateway: the same congestion signal arrives as marks for the former
    and early drops for the latter.
``flash_crowd_star``
    The star web topology under a flash crowd: session arrivals surge to
    ten times the baseline rate around t = 5 s and drain away again.
``cm_vs_udp_blast``
    Two persistent TCP/CM transfers sharing a bottleneck with an
    unresponsive constant-bit-rate UDP blast that no CM can regulate.
``mobile_handoff_reroute``
    A mobile host walking out of Wi-Fi range mid-run: scheduled reroute
    events repoint shortest-path routing at a slower cellular path and
    back again.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import (
    AppSpec,
    DumbbellSpec,
    GraphLinkSpec,
    GraphNodeSpec,
    GraphSpec,
    HostSpec,
    LinkSpec,
    RerouteSpec,
    ScenarioSpec,
    StopSpec,
    TelemetrySpec,
    WorkloadSpec,
)

__all__ = ["PRESETS", "get_preset", "preset_names"]


def web_vat_mix() -> ScenarioSpec:
    """Web fetch train and vat audio sharing the server's macroflow."""
    return ScenarioSpec(
        name="web_vat_mix",
        description=(
            "Web server + interactive audio from one CM host to one client over a "
            "lossy 4 Mbps / 70 ms path; both workloads share the macroflow."
        ),
        hosts=[
            HostSpec(name="server", cm=True),
            HostSpec(name="client"),
        ],
        links=[
            LinkSpec(a="server", b="client", rate_bps=4e6, delay=0.035,
                     queue_limit=50, loss_rate=0.005, reverse_loss_rate=0.0),
        ],
        apps=[
            AppSpec(app="web_server", host="server",
                    params={"port": 80, "variant": "cm"}),
            AppSpec(app="ack_reflector", host="client", params={"port": 9001}),
            AppSpec(app="vat", host="server", peer="client", params={"port": 9001}),
            AppSpec(app="web_client", host="client", peer="server",
                    params={"server_port": 80, "n_requests": 6, "spacing": 1.0,
                            "size": 64 * 1024}),
        ],
        stop=StopSpec(until=12.0),
        metrics=("apps", "links", "hosts"),
        seed=42,
    )


def bulk_macroflow_sharing() -> ScenarioSpec:
    """N staggered TCP/CM flows to one destination sharing a macroflow."""
    n_flows = 4
    apps: List[AppSpec] = []
    for index in range(n_flows):
        port = 5001 + index
        apps.append(AppSpec(app="tcp_listener", host="receiver",
                            label=f"listener{index}", params={"port": port}))
        apps.append(AppSpec(
            app="tcp_sender", host="sender", peer="receiver", label=f"flow{index}",
            params={"variant": "cm", "port": port, "transfer_bytes": 1_500_000,
                    "receive_window": 256 * 1024, "start_at": float(index)},
        ))
    return ScenarioSpec(
        name="bulk_macroflow_sharing",
        description=(
            "Four TCP/CM transfers to one destination starting 1 s apart on a "
            "10 Mbps / 60 ms path; late joiners skip slow start by inheriting the "
            "shared macroflow window."
        ),
        hosts=[HostSpec(name="sender", cm=True), HostSpec(name="receiver")],
        links=[LinkSpec(a="sender", b="receiver", rate_bps=10e6, delay=0.03,
                        queue_limit=50, loss_rate=0.0)],
        apps=apps,
        stop=StopSpec(until=25.0, when_apps_done=True),
        metrics=("apps", "links"),
        seed=7,
    )


def ecn_vs_loss() -> ScenarioSpec:
    """Identical transfers behind an ECN-marking vs. a lossy bottleneck."""
    transfer = {"variant": "cm", "transfer_bytes": 3_000_000, "receive_window": 128 * 1024}
    return ScenarioSpec(
        name="ecn_vs_loss",
        description=(
            "Two independent 8 Mbps / 50 ms pairs in one simulation: one bottleneck "
            "marks ECN at queue depth 20, the other drops 1% of packets; same "
            "transfer on each shows marking vs. dropping as a congestion signal."
        ),
        hosts=[
            HostSpec(name="ecn_sender", cm=True),
            HostSpec(name="ecn_receiver"),
            HostSpec(name="loss_sender", cm=True),
            HostSpec(name="loss_receiver"),
        ],
        links=[
            LinkSpec(a="ecn_sender", b="ecn_receiver", rate_bps=8e6, delay=0.025,
                     queue_limit=50, ecn_threshold=20),
            LinkSpec(a="loss_sender", b="loss_receiver", rate_bps=8e6, delay=0.025,
                     queue_limit=50, loss_rate=0.01, reverse_loss_rate=0.0),
        ],
        apps=[
            AppSpec(app="tcp_listener", host="ecn_receiver", label="ecn_listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="ecn_sender", peer="ecn_receiver",
                    label="ecn_flow", params=dict(transfer, port=5001, ecn=True)),
            AppSpec(app="tcp_listener", host="loss_receiver", label="loss_listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="loss_sender", peer="loss_receiver",
                    label="loss_flow", params=dict(transfer, port=5001)),
        ],
        stop=StopSpec(until=60.0, when_apps_done=True),
        metrics=("apps", "links"),
        seed=13,
    )


def _libcm_streaming(libcm_mode: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"libcm_{libcm_mode}_streaming",
        description=(
            f"Layered ALF media server with the libcm event loop in {libcm_mode!r} "
            "mode on a 16 Mbps path that steps down to 4 Mbps mid-run; the libcm "
            "syscall counters in the result quantify the integration cost."
        ),
        hosts=[HostSpec(name="server", cm=True), HostSpec(name="client")],
        links=[LinkSpec(a="server", b="client", rate_bps=16e6, delay=0.0375,
                        queue_limit=60, rate_schedule=((6.0, 4e6), (12.0, 12e6)))],
        apps=[
            AppSpec(app="ack_reflector", host="client", params={"port": 9001}),
            AppSpec(app="layered_streaming", host="server", peer="client",
                    params={"port": 9001, "mode": "alf", "libcm_mode": libcm_mode}),
        ],
        stop=StopSpec(until=15.0),
        metrics=("apps", "links", "hosts"),
        seed=11,
    )


def dumbbell_bulk() -> ScenarioSpec:
    """Two staggered TCP/CM transfers on a shared dumbbell, telemetry on."""
    apps: List[AppSpec] = []
    for index in range(2):
        apps.append(AppSpec(app="tcp_listener", host=f"receiver{index}",
                            label=f"listener{index}", params={"port": 5001}))
        apps.append(AppSpec(
            app="tcp_sender", host=f"sender{index}", peer=f"receiver{index}",
            label=f"flow{index}",
            params={"variant": "cm", "port": 5001, "transfer_bytes": 4_000_000,
                    "receive_window": 256 * 1024, "start_at": float(2 * index)},
        ))
    return ScenarioSpec(
        name="dumbbell_bulk",
        description=(
            "Two TCP/CM transfers (second starts 2 s late) sharing an 8 Mbps / "
            "20 ms dumbbell bottleneck; the telemetry block samples per-macroflow "
            "cwnd/rate/loss, bottleneck queue depth and per-flow goodput every "
            "250 ms — the paper-style convergence time series."
        ),
        dumbbell=DumbbellSpec(
            n_pairs=2,
            bottleneck_bps=8e6,
            bottleneck_delay=0.010,
            queue_limit=40,
            cm_senders=(0, 1),
        ),
        apps=apps,
        stop=StopSpec(until=20.0, when_apps_done=True),
        telemetry=TelemetrySpec(
            sample_interval=0.25,
            samplers=("macroflows", "schedulers", "links", "apps"),
            events=("cm.congestion", "packet.drop"),
        ),
        metrics=("apps", "links"),
        seed=3,
    )


def parking_lot_mix() -> ScenarioSpec:
    """Parking-lot chain: long-path bulk + vat vs. per-segment TCP churn."""
    routers = [GraphNodeSpec(name=f"r{i}", kind="router") for i in range(4)]
    hosts = [
        GraphNodeSpec(name="lsrc", cm=True),
        GraphNodeSpec(name="ldst"),
        GraphNodeSpec(name="c0s", cm=True), GraphNodeSpec(name="c0d"),
        GraphNodeSpec(name="c1s", cm=True), GraphNodeSpec(name="c1d"),
        GraphNodeSpec(name="c2s", cm=True), GraphNodeSpec(name="c2d"),
    ]
    access = dict(rate_bps=40e6, delay=0.001, queue_limit=100)
    segment = dict(rate_bps=8e6, delay=0.008, queue_limit=40)
    links = [
        # The three shared segments of the parking lot.
        GraphLinkSpec(a="r0", b="r1", **segment),
        GraphLinkSpec(a="r1", b="r2", **segment),
        GraphLinkSpec(a="r2", b="r3", **segment),
        # Long-path endpoints sit on the outermost routers.
        GraphLinkSpec(a="lsrc", b="r0", **access),
        GraphLinkSpec(a="ldst", b="r3", **access),
        # Cross-traffic pair i loads segment i only.
        GraphLinkSpec(a="c0s", b="r0", **access),
        GraphLinkSpec(a="c0d", b="r1", **access),
        GraphLinkSpec(a="c1s", b="r1", **access),
        GraphLinkSpec(a="c1d", b="r2", **access),
        GraphLinkSpec(a="c2s", b="r2", **access),
        GraphLinkSpec(a="c2d", b="r3", **access),
    ]
    churn = {"arrival": "poisson", "rate": 1.5, "min_bytes": 15_000,
             "pareto_alpha": 1.4, "max_bytes": 400_000, "max_active": 8}
    return ScenarioSpec(
        name="parking_lot_mix",
        description=(
            "Parking-lot chain of three 8 Mbps segments: a long-path TCP/CM bulk "
            "transfer and vat audio cross all of them while seeded Poisson TCP churn "
            "loads each segment — multi-bottleneck fairness under runtime flow churn."
        ),
        graph=GraphSpec(nodes=hosts[:2] + routers + hosts[2:], links=links),
        apps=[
            AppSpec(app="tcp_listener", host="ldst", label="long_listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="lsrc", peer="ldst", label="long_flow",
                    params={"variant": "cm", "port": 5001, "transfer_bytes": 2_000_000,
                            "receive_window": 256 * 1024}),
            AppSpec(app="ack_reflector", host="ldst", label="vat_sink",
                    params={"port": 9001}),
            AppSpec(app="vat", host="lsrc", peer="ldst", label="long_vat",
                    params={"port": 9001}),
        ],
        workloads=[
            WorkloadSpec(kind="tcp_flows", host=f"c{i}s", peer=f"c{i}d",
                         label=f"segment{i}_churn", params=dict(churn))
            for i in range(3)
        ],
        stop=StopSpec(until=10.0),
        metrics=("apps", "links"),
        seed=21,
    )


def star_web_churn() -> ScenarioSpec:
    """Star topology: one web server, three clients churning web sessions."""
    n_clients = 3
    nodes = [
        GraphNodeSpec(name="server", cm=True),
        GraphNodeSpec(name="hub", kind="router"),
    ] + [GraphNodeSpec(name=f"client{i}") for i in range(n_clients)]
    links = [GraphLinkSpec(a="server", b="hub", rate_bps=12e6, delay=0.005, queue_limit=50)] + [
        GraphLinkSpec(a=f"client{i}", b="hub", rate_bps=30e6, delay=0.002, queue_limit=100)
        for i in range(n_clients)
    ]
    sessions = {"arrival": "poisson", "rate": 1.2, "requests_mean": 3.0,
                "think_mean": 0.4, "min_bytes": 12_288, "pareto_alpha": 1.3,
                "max_bytes": 262_144}
    return ScenarioSpec(
        name="star_web_churn",
        description=(
            "Star around one router: a CM web server behind its 12 Mbps access link "
            "serves three clients churning Poisson web sessions with Pareto response "
            "sizes — every response connection inherits the shared macroflow state."
        ),
        graph=GraphSpec(nodes=nodes, links=links),
        apps=[
            AppSpec(app="web_server", host="server", label="server",
                    params={"port": 80, "variant": "cm"}),
        ],
        workloads=[
            WorkloadSpec(kind="web_sessions", host=f"client{i}", peer="server",
                         label=f"client{i}_sessions", params=dict(sessions))
            for i in range(n_clients)
        ],
        stop=StopSpec(until=10.0),
        metrics=("apps", "links", "hosts"),
        seed=5,
    )


def mesh_macroflow_sharing() -> ScenarioSpec:
    """Multi-bottleneck mesh: one macroflow's flows + churn over two hops."""
    nodes = [
        GraphNodeSpec(name="src", cm=True),
        GraphNodeSpec(name="sink"),
        GraphNodeSpec(name="xs", cm=True), GraphNodeSpec(name="xd"),
        GraphNodeSpec(name="ys", cm=True), GraphNodeSpec(name="yd"),
        GraphNodeSpec(name="ra", kind="router"),
        GraphNodeSpec(name="rb", kind="router"),
        GraphNodeSpec(name="rc", kind="router"),
        GraphNodeSpec(name="rd", kind="router"),
    ]
    access = dict(rate_bps=50e6, delay=0.001, queue_limit=100)
    links = [
        # Primary path ra-rb-rd (two 8 Mbps bottlenecks, 20 ms total) and a
        # higher-latency alternate ra-rc-rd the delay-metric routing ignores.
        GraphLinkSpec(a="ra", b="rb", rate_bps=8e6, delay=0.010, queue_limit=40),
        GraphLinkSpec(a="rb", b="rd", rate_bps=8e6, delay=0.010, queue_limit=40),
        GraphLinkSpec(a="ra", b="rc", rate_bps=6e6, delay=0.030, queue_limit=40),
        GraphLinkSpec(a="rc", b="rd", rate_bps=6e6, delay=0.030, queue_limit=40),
        GraphLinkSpec(a="src", b="ra", **access),
        GraphLinkSpec(a="sink", b="rd", **access),
        # Cross traffic x loads ra-rb, y loads rb-rd.
        GraphLinkSpec(a="xs", b="ra", **access),
        GraphLinkSpec(a="xd", b="rb", **access),
        GraphLinkSpec(a="ys", b="rb", **access),
        GraphLinkSpec(a="yd", b="rd", **access),
    ]
    apps: List[AppSpec] = []
    for index in range(3):
        port = 5001 + index
        apps.append(AppSpec(app="tcp_listener", host="sink",
                            label=f"listener{index}", params={"port": port}))
        apps.append(AppSpec(
            app="tcp_sender", host="src", peer="sink", label=f"flow{index}",
            params={"variant": "cm", "port": port, "transfer_bytes": 1_200_000,
                    "receive_window": 256 * 1024, "start_at": 1.5 * index},
        ))
    churn = {"arrival": "weibull", "rate": 1.2, "weibull_shape": 0.8,
             "min_bytes": 12_000, "pareto_alpha": 1.5, "max_bytes": 300_000,
             "max_active": 6}
    return ScenarioSpec(
        name="mesh_macroflow_sharing",
        description=(
            "Mesh with two 8 Mbps bottleneck hops and an ignored higher-latency "
            "alternate path: three staggered TCP/CM transfers plus bursty Weibull "
            "flow churn share the src->sink macroflow while independent churn loads "
            "each bottleneck segment."
        ),
        graph=GraphSpec(nodes=nodes, links=links),
        apps=apps,
        workloads=[
            WorkloadSpec(kind="tcp_flows", host="src", peer="sink", label="macroflow_churn",
                         params=dict(churn, port_base=21_000)),
            WorkloadSpec(kind="tcp_flows", host="xs", peer="xd", label="hop_a_churn",
                         params=dict(churn, rate=1.0)),
            WorkloadSpec(kind="tcp_flows", host="ys", peer="yd", label="hop_b_churn",
                         params=dict(churn, rate=1.0)),
        ],
        stop=StopSpec(until=12.0),
        metrics=("apps", "links"),
        seed=9,
    )


def gilbert_wireless_bulk() -> ScenarioSpec:
    """Bulk TCP/CM + churn across a burst-lossy (Gilbert–Elliott) hop."""
    return ScenarioSpec(
        name="gilbert_wireless_bulk",
        description=(
            "A 2 Mbps wireless-style hop whose losses arrive in Gilbert-Elliott "
            "fade bursts (mean burst 4 packets, ~7% average loss): a bulk TCP/CM "
            "transfer plus Poisson flow churn ride through the fades, exercising "
            "the CM's loss response under correlated rather than independent drops."
        ),
        graph=GraphSpec(
            nodes=[
                GraphNodeSpec(name="src", cm=True),
                GraphNodeSpec(name="r0", kind="router"),
                GraphNodeSpec(name="r1", kind="router"),
                GraphNodeSpec(name="dst"),
            ],
            links=[
                GraphLinkSpec(a="src", b="r0", rate_bps=30e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="r0", b="r1", rate_bps=2e6, delay=0.015,
                              queue_limit=25,
                              loss={"kind": "gilbert_elliott",
                                    "p_good_bad": 0.02, "p_bad_good": 0.25}),
                GraphLinkSpec(a="r1", b="dst", rate_bps=30e6, delay=0.001,
                              queue_limit=100),
            ],
        ),
        apps=[
            AppSpec(app="tcp_listener", host="dst", label="listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="src", peer="dst", label="bulk",
                    params={"variant": "cm", "port": 5001,
                            "transfer_bytes": 1_500_000,
                            "receive_window": 128 * 1024}),
        ],
        workloads=[
            WorkloadSpec(kind="tcp_flows", host="src", peer="dst", label="churn",
                         params={"rate": 1.0, "min_bytes": 10_000,
                                 "pareto_alpha": 1.4, "max_bytes": 120_000,
                                 "max_active": 6}),
        ],
        stop=StopSpec(until=10.0),
        metrics=("apps", "links"),
        seed=17,
    )


def red_gateway_sharing() -> ScenarioSpec:
    """ECN-capable CM flows vs. a non-ECN Reno flow behind a RED gateway."""
    transfer = {"port": 5001, "transfer_bytes": 1_500_000,
                "receive_window": 128 * 1024}
    return ScenarioSpec(
        name="red_gateway_sharing",
        description=(
            "Three senders share a 6 Mbps RED gateway (min_th 6, max_th 18): two "
            "ECN-capable TCP/CM flows receive their congestion signal as marks "
            "while a non-ECN Reno flow takes early drops — random early detection "
            "splitting one queue law into two feedback channels."
        ),
        graph=GraphSpec(
            nodes=[
                GraphNodeSpec(name="e0", cm=True),
                GraphNodeSpec(name="e1", cm=True),
                GraphNodeSpec(name="rn"),
                GraphNodeSpec(name="rg", kind="router"),
                GraphNodeSpec(name="rr", kind="router"),
                GraphNodeSpec(name="d"),
            ],
            links=[
                GraphLinkSpec(a="e0", b="rg", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="e1", b="rg", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="rn", b="rg", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="rg", b="rr", rate_bps=6e6, delay=0.012,
                              queue_limit=60,
                              aqm={"kind": "red", "min_th": 6, "max_th": 18,
                                   "max_p": 0.1}),
                GraphLinkSpec(a="rr", b="d", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
            ],
        ),
        apps=[
            AppSpec(app="tcp_listener", host="d", label="listener0",
                    params={"port": 5001}),
            AppSpec(app="tcp_listener", host="d", label="listener1",
                    params={"port": 5002}),
            AppSpec(app="tcp_listener", host="d", label="listener2",
                    params={"port": 5003}),
            AppSpec(app="tcp_sender", host="e0", peer="d", label="ecn_flow0",
                    params=dict(transfer, variant="cm", ecn=True)),
            AppSpec(app="tcp_sender", host="e1", peer="d", label="ecn_flow1",
                    params=dict(transfer, variant="cm", ecn=True, port=5002)),
            AppSpec(app="tcp_sender", host="rn", peer="d", label="drop_flow",
                    params=dict(transfer, variant="reno", port=5003)),
        ],
        stop=StopSpec(until=12.0, when_apps_done=True),
        metrics=("apps", "links"),
        seed=19,
    )


def flash_crowd_star() -> ScenarioSpec:
    """The star web topology under a flash-crowd arrival surge."""
    n_clients = 3
    nodes = [
        GraphNodeSpec(name="server", cm=True),
        GraphNodeSpec(name="hub", kind="router"),
    ] + [GraphNodeSpec(name=f"client{i}") for i in range(n_clients)]
    links = [GraphLinkSpec(a="server", b="hub", rate_bps=10e6, delay=0.005,
                           queue_limit=50)] + [
        GraphLinkSpec(a=f"client{i}", b="hub", rate_bps=30e6, delay=0.002,
                      queue_limit=100)
        for i in range(n_clients)
    ]
    sessions = {"arrival": "flash_crowd", "rate": 0.4, "flash_peak": 10.0,
                "flash_at": 5.0, "flash_width": 1.5, "requests_mean": 3.0,
                "think_mean": 0.3, "min_bytes": 12_288, "pareto_alpha": 1.3,
                "max_bytes": 131_072}
    return ScenarioSpec(
        name="flash_crowd_star",
        description=(
            "The star web topology under a flash crowd: three clients' session "
            "arrivals surge to 10x the baseline rate around t = 5 s (Gaussian "
            "surge, thinned non-homogeneous Poisson) and drain away — the CM "
            "server's macroflows absorb the spike instead of each new connection "
            "probing from scratch."
        ),
        graph=GraphSpec(nodes=nodes, links=links),
        apps=[
            AppSpec(app="web_server", host="server", label="server",
                    params={"port": 80, "variant": "cm"}),
        ],
        workloads=[
            WorkloadSpec(kind="web_sessions", host=f"client{i}", peer="server",
                         label=f"client{i}_sessions", params=dict(sessions))
            for i in range(n_clients)
        ],
        stop=StopSpec(until=10.0),
        metrics=("apps", "links", "hosts"),
        seed=23,
    )


def cm_vs_udp_blast() -> ScenarioSpec:
    """Persistent TCP/CM flows sharing a bottleneck with a hostile UDP blast."""
    apps: List[AppSpec] = []
    for index in range(2):
        port = 5001 + index
        apps.append(AppSpec(app="tcp_listener", host="cli",
                            label=f"listener{index}", params={"port": port}))
        apps.append(AppSpec(
            app="tcp_sender", host="srv", peer="cli", label=f"cm_flow{index}",
            params={"variant": "cm", "port": port, "transfer_bytes": 10 ** 9,
                    "receive_window": 256 * 1024},
        ))
    return ScenarioSpec(
        name="cm_vs_udp_blast",
        description=(
            "Two persistent TCP/CM transfers share an 8 Mbps bottleneck with an "
            "unresponsive 4 Mbps UDP blast that starts at t = 2 s from an "
            "unconnected socket (so no CM can regulate it); the CM flows must "
            "concede the hostile stream's share yet stay fair among themselves."
        ),
        graph=GraphSpec(
            nodes=[
                GraphNodeSpec(name="srv", cm=True),
                GraphNodeSpec(name="hog"),
                GraphNodeSpec(name="r0", kind="router"),
                GraphNodeSpec(name="r1", kind="router"),
                GraphNodeSpec(name="cli"),
                GraphNodeSpec(name="hogsink"),
            ],
            links=[
                GraphLinkSpec(a="srv", b="r0", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="hog", b="r0", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="r0", b="r1", rate_bps=8e6, delay=0.010,
                              queue_limit=40),
                GraphLinkSpec(a="cli", b="r1", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
                GraphLinkSpec(a="hogsink", b="r1", rate_bps=40e6, delay=0.001,
                              queue_limit=100),
            ],
        ),
        apps=apps,
        workloads=[
            WorkloadSpec(kind="udp_blast", host="hog", peer="hogsink",
                         label="blast", start=2.0,
                         params={"rate_bps": 4e6, "packet_bytes": 1_000,
                                 "port": 9900}),
        ],
        stop=StopSpec(until=12.0),
        metrics=("apps", "links"),
        seed=27,
    )


def mobile_handoff_reroute() -> ScenarioSpec:
    """A mobile host handing off from Wi-Fi to cellular and back mid-run."""
    return ScenarioSpec(
        name="mobile_handoff_reroute",
        description=(
            "A mobile CM host reaches a server over Wi-Fi (8 Mbps / 2 ms) with a "
            "cellular fallback (3 Mbps / 20 ms); at t = 4.7 s the Wi-Fi hop's "
            "delay jumps to 90 ms (walking out of range) and shortest-path "
            "routing hands the macroflow off to cellular, then back at t = 8.3 s "
            "— congestion state surviving a mid-run path change."
        ),
        graph=GraphSpec(
            nodes=[
                GraphNodeSpec(name="mob", cm=True),
                GraphNodeSpec(name="ap", kind="router"),
                GraphNodeSpec(name="bs", kind="router"),
                GraphNodeSpec(name="srv"),
            ],
            links=[
                GraphLinkSpec(a="mob", b="ap", rate_bps=8e6, delay=0.002,
                              queue_limit=50),
                GraphLinkSpec(a="ap", b="srv", rate_bps=20e6, delay=0.005,
                              queue_limit=100),
                GraphLinkSpec(a="mob", b="bs", rate_bps=3e6, delay=0.020,
                              queue_limit=50),
                GraphLinkSpec(a="bs", b="srv", rate_bps=20e6, delay=0.010,
                              queue_limit=100),
            ],
            reroutes=[
                RerouteSpec(time=4.7, a="mob", b="ap", delay=0.090),
                RerouteSpec(time=8.3, a="mob", b="ap", delay=0.002),
            ],
        ),
        apps=[
            AppSpec(app="tcp_listener", host="srv", label="listener",
                    params={"port": 5001}),
            AppSpec(app="tcp_sender", host="mob", peer="srv", label="bulk",
                    params={"variant": "cm", "port": 5001,
                            "transfer_bytes": 10 ** 9,
                            "receive_window": 256 * 1024}),
        ],
        workloads=[
            WorkloadSpec(kind="tcp_flows", host="mob", peer="srv", label="churn",
                         params={"rate": 0.8, "min_bytes": 8_000,
                                 "pareto_alpha": 1.5, "max_bytes": 80_000,
                                 "max_active": 4, "port_base": 21_000}),
        ],
        stop=StopSpec(until=12.0),
        metrics=("apps", "links"),
        seed=31,
    )


def libcm_poll_streaming() -> ScenarioSpec:
    """Layered streaming with the application polling libcm from a timer loop."""
    return _libcm_streaming("poll")


def libcm_select_streaming() -> ScenarioSpec:
    """Layered streaming with libcm in the app's select loop (the default)."""
    return _libcm_streaming("select")


PRESETS: Dict[str, Callable[[], ScenarioSpec]] = {
    "web_vat_mix": web_vat_mix,
    "bulk_macroflow_sharing": bulk_macroflow_sharing,
    "ecn_vs_loss": ecn_vs_loss,
    "libcm_poll_streaming": libcm_poll_streaming,
    "libcm_select_streaming": libcm_select_streaming,
    "dumbbell_bulk": dumbbell_bulk,
    "parking_lot_mix": parking_lot_mix,
    "star_web_churn": star_web_churn,
    "mesh_macroflow_sharing": mesh_macroflow_sharing,
    "gilbert_wireless_bulk": gilbert_wireless_bulk,
    "red_gateway_sharing": red_gateway_sharing,
    "flash_crowd_star": flash_crowd_star,
    "cm_vs_udp_blast": cm_vs_udp_blast,
    "mobile_handoff_reroute": mobile_handoff_reroute,
}


def preset_names() -> List[str]:
    """Bundled preset names in presentation order."""
    return list(PRESETS)


def get_preset(name: str) -> ScenarioSpec:
    """Build a preset spec by name; KeyError lists the valid names."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; bundled presets: {', '.join(PRESETS)}")
    return PRESETS[name]()
