"""Compile a :class:`~repro.scenario.spec.ScenarioSpec` into live objects.

:func:`build` is the single place in the repository where a declarative
scenario becomes a wired simulation: it validates the spec, creates the
:class:`~repro.netsim.engine.Simulator`, the hosts (with their CPU cost
ledgers), the channels or dumbbell, attaches Congestion Managers, and
instantiates every application through the
:mod:`~repro.scenario.applications` registry.

Construction order is part of the determinism contract (event sequence
numbers break heap ties, link RNGs are seeded in creation order):

1. hosts in spec order (explicit list, or dumbbell senders-then-receivers);
2. channels in spec order, link RNG seeded with ``seed + link.seed_offset``
   (forward) and ``+ 1`` (reverse) — exactly how the hand-wired testbeds of
   the seed repository did it;
3. Congestion Managers for ``cm``-flagged hosts, in host order;
4. applications in spec order.

With the same spec and seed, :func:`build` therefore produces a simulation
that is event-for-event identical to the legacy hand-wired construction,
which is what keeps the experiment artifacts byte-identical per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.congestion import AimdWindowController, CongestionController, RateAimdController
from ..core.manager import CongestionManager
from ..core.scheduler import RoundRobinScheduler, Scheduler, WeightedRoundRobinScheduler
from ..hostmodel import HostCosts
from ..netsim import Channel, Dumbbell, GraphNet, Host, Simulator, build_dumbbell, build_graph
from .applications import Application, get_application
from .spec import ScenarioSpec, SpecError, default_addr
from .telemetry import ScenarioTelemetry

__all__ = ["Scenario", "build", "workload_rng_seed"]


def workload_rng_seed(run_seed: int, seed_offset: Optional[int], index: int) -> int:
    """RNG seed for the ``index``-th declared workload generator.

    Decorrelated across workloads by declaration order (or the explicit
    ``seed_offset``), fully determined by the run seed.  ``index`` is the
    generator's position in ``spec.workloads`` — a *global* quantity — so the
    sharded engine derives the exact same stream no matter which shard ends
    up hosting the generator (pinned by a test).
    """
    offset = seed_offset if seed_offset else index + 1
    return run_seed * 1_000_003 + 7919 * offset

_CONTROLLER_FACTORIES: Dict[str, Callable[[int], CongestionController]] = {
    "aimd_window": lambda mtu: AimdWindowController(mtu),
    "aimd_rate": lambda mtu: RateAimdController(mtu),
}

_SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "round_robin": RoundRobinScheduler,
    "weighted": WeightedRoundRobinScheduler,
}


@dataclass
class Scenario:
    """A compiled scenario: live simulator, hosts, channels and apps."""

    spec: ScenarioSpec
    seed: int
    sim: Simulator
    hosts: Dict[str, Host]
    channels: Dict[Tuple[str, str], Channel] = field(default_factory=dict)
    dumbbell: Optional[Dumbbell] = None
    #: The wired graph topology (nodes incl. routers, directed links,
    #: next-hop tables), present when the spec carries a ``graph:`` block.
    graph_net: Optional[GraphNet] = None
    apps: List[Application] = field(default_factory=list)
    #: Stochastic traffic generators (see :mod:`repro.workloads`), started
    #: and stopped by the runner alongside the static apps.
    workloads: List = field(default_factory=list)
    #: Telemetry wiring, present when the spec has a ``telemetry:`` block or
    #: the caller asked for a trace file; ``None`` means every probe slot in
    #: the simulation stays a compiled no-op.
    telemetry: Optional[ScenarioTelemetry] = None

    def host(self, name: str) -> Host:
        """Look up a host by spec name."""
        return self.hosts[name]

    def channel(self, a: str, b: str) -> Channel:
        """Look up the channel between two hosts (order as in the spec)."""
        return self.channels[(a, b)]


def _attach_cm(host: Host, host_spec) -> CongestionManager:
    """Attach a CM per a HostSpec/GraphNodeSpec's controller/scheduler choice."""
    return CongestionManager(
        host,
        controller_factory=_CONTROLLER_FACTORIES[host_spec.cm_controller],
        scheduler_factory=_SCHEDULER_FACTORIES[host_spec.cm_scheduler],
    )


def _build_graph_topology(scenario: Scenario, spec: ScenarioSpec, run_seed: int) -> None:
    """Wire a ``graph:`` block through :func:`repro.netsim.graph.build_graph`.

    Node and link declaration order is preserved (construction order is part
    of the determinism contract); static shortest-path routes are installed
    into every node's routing table, and CMs attach to ``cm``-flagged hosts
    in node order afterwards — the same phasing the explicit-hosts branch
    uses.
    """
    graph_spec = spec.graph
    host_index = 0
    node_payloads = []
    for node in graph_spec.nodes:
        addr = node.addr
        if not addr and node.kind == "host":
            addr = default_addr(host_index)
        if node.kind == "host":
            host_index += 1
        node_payloads.append({
            "name": node.name,
            "kind": node.kind,
            "addr": addr,
            "costs": node.costs,
        })
    link_payloads = [
        {
            "a": link.a,
            "b": link.b,
            "rate_bps": link.rate_bps,
            "delay": link.delay,
            "queue_limit": link.queue_limit,
            "loss_rate": link.loss_rate,
            "reverse_loss_rate": link.reverse_loss_rate,
            "ecn_threshold": link.ecn_threshold,
            "seed_offset": link.seed_offset,
            "loss": link.loss,
            "aqm": link.aqm,
        }
        for link in graph_spec.links
    ]
    net = build_graph(
        scenario.sim, node_payloads, link_payloads,
        seed=run_seed, host_costs_factory=HostCosts,
    )
    scenario.graph_net = net
    scenario.hosts.update(net.hosts)
    for node in graph_spec.nodes:
        if node.cm:
            _attach_cm(net.hosts[node.name], node)
    # Reroute events are scheduled at build time (not by the runner) so the
    # event sequence numbering is identical in the single-process and
    # sharded engines, which schedule them from the same declaration order.
    for reroute in graph_spec.reroutes:
        scenario.sim.schedule(reroute.time, net.apply_reroute,
                              reroute.a, reroute.b, reroute.delay)


def build(spec: ScenarioSpec, seed: Optional[int] = None,
          trace_path: Optional[str] = None) -> Scenario:
    """Validate ``spec`` and wire the simulation it describes.

    ``seed`` overrides ``spec.seed``; it feeds every link's loss RNG (offset
    per link) so a multi-seed sweep re-uses one spec.  ``trace_path``
    additionally streams every telemetry event and sample to a JSON-lines
    file (attaching probes even when the spec carries no telemetry block —
    the result payload is unaffected in that case).
    """
    spec.validate()
    run_seed = spec.seed if seed is None else int(seed)

    sim = Simulator()
    hosts: Dict[str, Host] = {}
    scenario = Scenario(spec=spec, seed=run_seed, sim=sim, hosts=hosts)

    if spec.dumbbell is not None:
        dumbbell_spec = spec.dumbbell
        dumbbell = build_dumbbell(
            sim,
            n_pairs=dumbbell_spec.n_pairs,
            bottleneck_bps=dumbbell_spec.bottleneck_bps,
            bottleneck_delay=dumbbell_spec.bottleneck_delay,
            access_bps=dumbbell_spec.access_bps,
            access_delay=dumbbell_spec.access_delay,
            queue_limit=dumbbell_spec.queue_limit,
            loss_rate=dumbbell_spec.loss_rate,
            ecn_threshold=dumbbell_spec.ecn_threshold,
            host_costs_factory=HostCosts if dumbbell_spec.with_costs else None,
            seed=run_seed,
        )
        scenario.dumbbell = dumbbell
        for index, host in enumerate(dumbbell.senders):
            hosts[f"sender{index}"] = host
        for index, host in enumerate(dumbbell.receivers):
            hosts[f"receiver{index}"] = host
        for index in dumbbell_spec.cm_senders:
            CongestionManager(dumbbell.senders[index])
    elif spec.graph is not None:
        _build_graph_topology(scenario, spec, run_seed)
    else:
        for index, host_spec in enumerate(spec.hosts):
            addr = host_spec.addr or default_addr(index)
            hosts[host_spec.name] = Host(
                sim, host_spec.name, addr,
                costs=HostCosts() if host_spec.costs else None,
            )
        for index, link in enumerate(spec.links):
            # Explicit seed_offset wins; otherwise stagger by position (a
            # channel consumes two consecutive seeds, forward + reverse) so
            # co-existing links draw independent loss streams by default.
            offset = link.seed_offset if link.seed_offset else 2 * index
            scenario.channels[(link.a, link.b)] = Channel(
                sim,
                hosts[link.a],
                hosts[link.b],
                rate_bps=link.rate_bps,
                one_way_delay=link.delay,
                queue_limit=link.queue_limit,
                loss_rate=link.loss_rate,
                reverse_loss_rate=link.reverse_loss_rate,
                ecn_threshold=link.ecn_threshold,
                seed=run_seed + offset,
                loss_model=link.loss,
                aqm=link.aqm,
            )
        for host_spec in spec.hosts:
            if host_spec.cm:
                _attach_cm(hosts[host_spec.name], host_spec)

    for index, app_spec in enumerate(spec.apps):
        # spec.validate() above already walked every app's schema and cached
        # the defaults-applied params; reuse them instead of re-validating
        # on the per-trial construction path.
        params = app_spec.normalized_params()
        app_cls = get_application(app_spec.app)
        peer = hosts[app_spec.peer] if app_spec.peer else None
        try:
            app = app_cls(hosts[app_spec.host], peer, app_spec, params)
        except SpecError:
            raise
        except (RuntimeError, ValueError) as exc:
            raise SpecError(f"apps[{index}]", f"building {app_spec.app!r} failed: {exc}") from exc
        if not app_spec.label:
            app.label = f"{app_spec.app}[{index}]"
        scenario.apps.append(app)

    if spec.workloads:
        from ..workloads import get_workload

        for index, workload_spec in enumerate(spec.workloads):
            workload_cls = get_workload(workload_spec.kind)
            # Each generator draws from its own RNG stream (see
            # workload_rng_seed for the shard-invariance contract).
            rng = random.Random(workload_rng_seed(run_seed, workload_spec.seed_offset, index))
            try:
                workload = workload_cls(
                    scenario, workload_spec, workload_spec.normalized_params(), rng)
            except SpecError:
                raise
            except (RuntimeError, ValueError) as exc:
                raise SpecError(f"workloads[{index}]",
                                f"building {workload_spec.kind!r} failed: {exc}") from exc
            if not workload_spec.label:
                workload.label = f"{workload_spec.kind}[{index}]"
            scenario.workloads.append(workload)

    if spec.telemetry is not None or trace_path is not None:
        # Subscribing sinks happens inside ScenarioTelemetry *before*
        # attach() binds any probe slot — the hub's dispatch table is read
        # once per slot, at attach time.
        scenario.telemetry = ScenarioTelemetry(
            spec.telemetry, run_seed, sim, trace_path=trace_path
        )
        scenario.telemetry.attach(scenario)
    return scenario
