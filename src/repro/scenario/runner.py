"""Execute a compiled scenario and collect its metrics.

:func:`run` is the declarative counterpart of every hand-written
``build testbed / start apps / sim.run / harvest counters`` loop in the
experiment modules: it compiles the spec with
:func:`~repro.scenario.builder.build`, schedules any link bandwidth steps,
starts the applications in spec order, drives the simulator to the stop
condition, stops the applications and returns a :class:`ScenarioResult`
whose JSON rendering is byte-identical for identical ``(spec, seed)``
inputs — the same determinism contract the experiment artifacts follow.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .builder import Scenario, build
from .spec import ScenarioSpec, SpecError

__all__ = [
    "ScenarioResult",
    "run",
    "run_built",
    "run_streaming",
    "validate_result_payload",
    "DEFAULT_CONTROL_INTERVAL",
]

#: How often (simulated seconds) a hooked run fires its control tick.  The
#: value only bounds control/progress latency — the tick itself must never
#: perturb the simulation, so results are independent of it.
DEFAULT_CONTROL_INTERVAL = 0.05

#: Keys every serialized ScenarioResult must carry (the CI golden schema).
RESULT_SCHEMA_KEYS = ("name", "seed", "spec_digest", "duration_s", "apps", "links", "hosts")


@dataclass
class ScenarioResult:
    """Per-app / per-link / per-host measurements of one scenario run."""

    name: str
    seed: int
    spec_digest: str
    duration_s: float
    apps: List[Dict[str, Any]] = field(default_factory=list)
    links: List[Dict[str, Any]] = field(default_factory=list)
    hosts: List[Dict[str, Any]] = field(default_factory=list)
    #: Aggregate measurements of each stochastic workload generator,
    #: populated only when the spec carries a ``workloads:`` block.
    workloads: List[Dict[str, Any]] = field(default_factory=list)
    #: Deterministic per-probe time series and event counts, populated only
    #: when the spec carries a ``telemetry:`` block (see docs/telemetry.md).
    telemetry: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        """The deterministic JSON-able content of the result.

        The ``workloads`` and ``telemetry`` keys appear only when the
        corresponding block produced data, so results of scenarios without
        them render byte-identically to results from before the blocks
        existed.
        """
        payload = {
            "name": self.name,
            "seed": self.seed,
            "spec_digest": self.spec_digest,
            "duration_s": self.duration_s,
            "apps": [dict(entry) for entry in self.apps],
            "links": [dict(entry) for entry in self.links],
            "hosts": [dict(entry) for entry in self.hosts],
        }
        if self.workloads:
            payload["workloads"] = [dict(entry) for entry in self.workloads]
        if self.telemetry:
            payload["telemetry"] = dict(self.telemetry)
        return payload

    def sample_series(self, name: str) -> List[List[float]]:
        """Look up one sampled telemetry series (``[[time, value], ...]``)."""
        samples = self.telemetry.get("samples", {})
        if name not in samples:
            raise KeyError(
                f"no sampled series {name!r}; have {sorted(samples)}"
            )
        return samples[name]

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, one trailing newline.

        ``allow_nan=False`` makes a metric that leaks ``NaN``/``inf`` fail
        loudly here instead of silently producing a file strict JSON
        parsers reject.
        """
        return json.dumps(self.payload(), indent=2, sort_keys=True, allow_nan=False) + "\n"

    def app(self, label: str) -> Dict[str, Any]:
        """Look up one application's entry by its label."""
        for entry in self.apps:
            if entry["label"] == label:
                return entry
        raise KeyError(f"no app labelled {label!r}; have {[e['label'] for e in self.apps]}")

    def workload(self, label: str) -> Dict[str, Any]:
        """Look up one workload generator's entry by its label."""
        for entry in self.workloads:
            if entry["label"] == label:
                return entry
        raise KeyError(
            f"no workload labelled {label!r}; have {[e['label'] for e in self.workloads]}")


def spec_digest(spec: ScenarioSpec) -> str:
    """sha256 over the spec's canonical JSON (ties results to their spec).

    The ``engine`` block is stripped first: it selects an execution strategy
    (process sharding), not simulation semantics, and the sharded runner's
    byte-determinism contract requires ``shards=N`` results to compare
    ``cmp``-equal — digest included — with the single-process run.
    """
    payload = spec.to_dict()
    payload.pop("engine", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def validate_result_payload(payload: Any) -> List[str]:
    """Check a deserialized result against the golden schema.

    Returns a list of human-readable problems (empty = valid).  Used by the
    CI scenario smoke job and the ``python -m repro.scenario validate``
    command.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"result must be a JSON object, got {type(payload).__name__}"]
    for key in RESULT_SCHEMA_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append("'name' must be a non-empty string")
    if not isinstance(payload.get("seed"), int):
        problems.append("'seed' must be an integer")
    digest = payload.get("spec_digest")
    if not (isinstance(digest, str) and len(digest) == 64):
        problems.append("'spec_digest' must be a 64-char sha256 hex string")
    if not isinstance(payload.get("duration_s"), (int, float)):
        problems.append("'duration_s' must be a number")
    for group, required in (("apps", ("app", "host", "label", "metrics")),
                            ("links", ("link",)),
                            ("hosts", ("host",))):
        entries = payload.get(group)
        if not isinstance(entries, list):
            problems.append(f"'{group}' must be a list")
            continue
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                problems.append(f"{group}[{index}] must be an object")
                continue
            for key in required:
                if key not in entry:
                    problems.append(f"{group}[{index}] missing key {key!r}")
    # The workloads section is optional (only scenarios with a workloads:
    # block emit it), but when present its entries must be well-formed.
    if "workloads" in payload:
        entries = payload["workloads"]
        if not isinstance(entries, list):
            problems.append("'workloads' must be a list")
        else:
            for index, entry in enumerate(entries):
                if not isinstance(entry, dict):
                    problems.append(f"workloads[{index}] must be an object")
                    continue
                for key in ("kind", "host", "label", "metrics"):
                    if key not in entry:
                        problems.append(f"workloads[{index}] missing key {key!r}")
    return problems


def _link_metrics(name: str, link) -> Dict[str, Any]:
    stats = link.stats
    return {
        "link": name,
        "delivered_packets": stats.delivered_packets,
        "dropped_overflow": stats.dropped_overflow,
        "dropped_random": stats.dropped_random,
        "ecn_marked": stats.ecn_marked,
        "mean_queue_delay_s": stats.mean_queue_delay(),
        "busy_time_s": stats.busy_time,
    }


def _collect(scenario: Scenario, duration: float) -> ScenarioResult:
    spec = scenario.spec
    result = ScenarioResult(
        name=spec.name,
        seed=scenario.seed,
        spec_digest=spec_digest(spec),
        duration_s=duration,
    )
    groups = set(spec.metrics)
    if "apps" in groups:
        for app in scenario.apps:
            result.apps.append({
                "app": app.spec.app,
                "host": app.spec.host,
                "label": app.label,
                "metrics": app.metrics(),
            })
    if "links" in groups:
        for (a, b), channel in scenario.channels.items():
            result.links.append(_link_metrics(f"{a}->{b}", channel.forward))
            result.links.append(_link_metrics(f"{b}->{a}", channel.reverse))
        if scenario.dumbbell is not None:
            result.links.append(_link_metrics("bottleneck", scenario.dumbbell.bottleneck))
            result.links.append(_link_metrics("bottleneck-rev", scenario.dumbbell.bottleneck_reverse))
        if scenario.graph_net is not None:
            for (a, b), link in scenario.graph_net.links.items():
                result.links.append(_link_metrics(f"{a}->{b}", link))
    if "hosts" in groups:
        for name, host in scenario.hosts.items():
            costs = host.costs
            entry: Dict[str, Any] = {"host": name}
            if costs is not None:
                entry["cpu_total_us"] = costs.total_us
                entry["cpu_utilization"] = costs.utilization(duration) if duration > 0 else 0.0
                entry["cpu_by_category_us"] = dict(sorted(costs.ledger.snapshot().items()))
            result.hosts.append(entry)
    for workload in scenario.workloads:
        result.workloads.append({
            "kind": workload.spec.kind,
            "host": workload.spec.host,
            "label": workload.label,
            "metrics": workload.metrics(),
        })
    telemetry = scenario.telemetry
    if telemetry is not None and telemetry.in_result:
        result.telemetry = telemetry.payload()
    return result


def run_built(scenario: Scenario, *, control_hook=None, progress_cb=None,
              control_interval: float = DEFAULT_CONTROL_INTERVAL) -> ScenarioResult:
    """Drive an already-compiled scenario to its stop condition.

    ``control_hook(scenario)`` and ``progress_cb(sim_now, horizon)`` are the
    streaming hooks the service layer attaches (see :func:`run_streaming`):
    when either is given, the engine arms a periodic control tick that fires
    the hooks every ``control_interval`` simulated seconds *from inside the
    event loop*.  The hooks must only read state or apply mutations the
    simulation sanctions (the service mailbox contract) — under that
    contract the result is byte-identical to an unhooked run of the same
    ``(spec, seed)``.  A hook that raises aborts the run; the exception
    propagates to the caller after telemetry is closed.
    """
    spec = scenario.spec
    sim = scenario.sim
    start = sim.now

    for link_spec in spec.links:
        channel = scenario.channels[(link_spec.a, link_spec.b)]
        for when, rate_bps in link_spec.rate_schedule:
            if when > 0.0:
                sim.schedule(when, channel.set_rate, rate_bps)
            else:
                channel.set_rate(rate_bps)

    if scenario.telemetry is not None:
        # First sample at t=start (apps are constructed, flows opened);
        # sampling only reads state, so probes-on cannot perturb the run.
        scenario.telemetry.start()

    for app in scenario.apps:
        app.start()
    for workload in scenario.workloads:
        workload.start()

    stop = spec.stop
    horizon = start + stop.until
    hooked = control_hook is not None or progress_cb is not None
    if hooked:
        def _control_tick() -> None:
            if control_hook is not None:
                control_hook(scenario)
            if progress_cb is not None:
                progress_cb(sim.now, horizon)

        sim.start_control(control_interval, _control_tick)
        if progress_cb is not None:
            progress_cb(sim.now, horizon)
    try:
        if stop.when_apps_done:
            while sim.now < horizon:
                states = [app.done() for app in scenario.apps]
                if any(state is not None for state in states) and all(
                    state in (None, True) for state in states
                ):
                    break
                # The control chain keeps the queue non-empty, so the "has
                # the simulation drained?" question must ignore it — this is
                # what keeps hooked and batch runs byte-identical here.
                if sim.idle_except_control():
                    break
                sim.run(until=min(horizon, sim.now + stop.check_interval))
        else:
            sim.run(until=horizon)

        if scenario.telemetry is not None:
            scenario.telemetry.stop()
        # Workloads stop first: their teardown detaches the apps they spawned
        # and folds the survivors' counters into the workload metrics.
        for workload in scenario.workloads:
            workload.stop()
        for app in scenario.apps:
            app.stop()
        result = _collect(scenario, duration=sim.now - start)
        if progress_cb is not None:
            progress_cb(sim.now, horizon)
        return result
    finally:
        if hooked:
            sim.stop_control()
        if scenario.telemetry is not None:
            scenario.telemetry.close()


def run_streaming(spec: ScenarioSpec, seed: Optional[int] = None, *,
                  trace_path: Optional[str] = None,
                  control_hook=None, progress_cb=None,
                  control_interval: float = DEFAULT_CONTROL_INTERVAL,
                  shards: Optional[int] = None) -> ScenarioResult:
    """Compile and execute ``spec`` with optional live-control hooks.

    This is the one code path both the batch CLI (:func:`run`, no hooks) and
    the ``repro.service`` job fleet (mailbox drain + progress reporting)
    execute, so the two can never drift apart.  Hooks fire inside the event
    loop (see :func:`run_built`); a run whose hooks only read state produces
    a byte-identical result to the hook-free run of the same ``(spec,
    seed)``.

    ``shards`` overrides the spec's ``engine.shards`` (``None`` defers to
    it); any effective value above 1 dispatches to the sharded parallel
    engine, whose result is byte-identical to the single-process run of the
    same ``(spec, seed)`` — see docs/parallel_engine.md.  Mid-run control
    hooks are a single-process feature: combining one with sharding raises.
    """
    effective = shards if shards is not None else (
        spec.engine.shards if spec.engine is not None else 1)
    if effective > 1:
        if control_hook is not None:
            raise SpecError(
                "engine.shards",
                "mid-run control hooks (the service mailbox) are not "
                "supported on sharded runs")
        from ..netsim.parallel import run_sharded

        return run_sharded(spec, seed, shards=effective,
                           trace_path=trace_path, progress_cb=progress_cb)
    return run_built(
        build(spec, seed=seed, trace_path=trace_path),
        control_hook=control_hook,
        progress_cb=progress_cb,
        control_interval=control_interval,
    )


def run(spec: ScenarioSpec, seed: Optional[int] = None,
        trace_path: Optional[str] = None,
        shards: Optional[int] = None) -> ScenarioResult:
    """Compile and execute ``spec``; deterministic per ``(spec, seed)``.

    ``trace_path`` streams every telemetry event and periodic sample to a
    JSON-lines file (byte-identical per ``(spec, seed)``) without touching
    the result payload of specs that carry no telemetry block.  ``shards``
    (or the spec's own ``engine: {shards: N}``) selects the sharded engine;
    either way the result bytes are those of the single-process run.
    """
    return run_streaming(spec, seed, trace_path=trace_path, shards=shards)
