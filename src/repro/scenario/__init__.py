"""Declarative Scenario API: compose any topology/app/transport mix.

This package is the construction layer everything else builds on:

* :mod:`~repro.scenario.spec` — the :class:`ScenarioSpec` dataclass tree
  (hosts, links, dumbbell, CM attachment, typed app instances, stop
  condition, metrics) with strict JSON round-tripping and eager validation;
* :mod:`~repro.scenario.applications` — the uniform :class:`Application`
  registry wrapping every workload in :mod:`repro.apps` plus raw TCP/UDP
  endpoints;
* :mod:`~repro.scenario.builder` — :func:`build(spec, seed)` compiling a
  spec into a live, deterministically-wired simulation;
* :mod:`~repro.scenario.runner` — :func:`run(spec, seed)` executing a spec
  end to end and returning a :class:`ScenarioResult` with per-app /
  per-link / per-host metrics;
* :mod:`~repro.scenario.presets` — bundled scenarios beyond the paper,
  runnable via ``python -m repro.scenario run <preset>``.

See ``docs/scenario_api.md`` for the schema, examples and how the paper's
experiments map onto this layer, plus the graph-topology and stochastic
workload blocks (``repro.workloads``) added on top of it.
"""

from .applications import (
    Application,
    Param,
    describe_applications,
    get_application,
    known_applications,
    register_application,
    validate_params,
)
from .builder import Scenario, build
from .presets import PRESETS, get_preset, preset_names
from .runner import ScenarioResult, run, run_built, run_streaming, validate_result_payload
from .spec import (
    AppSpec,
    DumbbellSpec,
    GraphLinkSpec,
    GraphNodeSpec,
    GraphSpec,
    HostSpec,
    LinkSpec,
    RerouteSpec,
    ScenarioSpec,
    SpecError,
    StopSpec,
    TelemetrySpec,
    WorkloadSpec,
)
from .telemetry import ScenarioTelemetry

__all__ = [
    "ScenarioSpec",
    "HostSpec",
    "LinkSpec",
    "DumbbellSpec",
    "GraphNodeSpec",
    "GraphLinkSpec",
    "RerouteSpec",
    "GraphSpec",
    "AppSpec",
    "WorkloadSpec",
    "StopSpec",
    "TelemetrySpec",
    "ScenarioTelemetry",
    "SpecError",
    "Application",
    "Param",
    "register_application",
    "get_application",
    "known_applications",
    "describe_applications",
    "validate_params",
    "Scenario",
    "build",
    "ScenarioResult",
    "run",
    "run_built",
    "run_streaming",
    "validate_result_payload",
    "PRESETS",
    "get_preset",
    "preset_names",
]
