"""``python -m repro.scenario`` — run/list/dump/validate declarative scenarios."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
