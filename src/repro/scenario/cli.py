"""Command-line front end: ``python -m repro.scenario``.

Subcommands::

    run <preset-or-spec.json>   execute a scenario (optionally over many seeds)
    list                        bundled presets and registered applications
    dump <preset>               print a preset spec as editable JSON
    validate <result.json>      check a result file against the golden schema

``run`` accepts either a bundled preset name or a path to a spec JSON file
(as produced by ``dump``), executes it for ``--seed`` (or seeds ``1..N``
with ``--seeds N``), prints a per-app summary and optionally writes the
deterministic per-seed result JSON files to ``--json-dir``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence

from .presets import get_preset, preset_names
from .runner import ScenarioResult, run, validate_result_payload
from .spec import ScenarioSpec, SpecError

__all__ = ["main"]


def _load_spec(ref: str) -> ScenarioSpec:
    """Resolve a preset name or a spec JSON file path into a validated spec."""
    if ref.endswith(".json") or os.path.sep in ref or os.path.exists(ref):
        try:
            with open(ref, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SpecError("", f"cannot read spec file {ref!r}: {exc}") from exc
        except ValueError as exc:
            raise SpecError("", f"spec file {ref!r} is not valid JSON: {exc}") from exc
        return ScenarioSpec.from_dict(data)
    try:
        return get_preset(ref)
    except KeyError as exc:
        raise SpecError("", str(exc.args[0])) from exc


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, list):
        return f"[{len(value)} values]"
    if isinstance(value, dict):
        return "{" + ", ".join(f"{k}={_format_value(v)}" for k, v in sorted(value.items())) + "}"
    return str(value)


def _print_result(result: ScenarioResult) -> None:
    print(f"== scenario {result.name} (seed {result.seed}, {result.duration_s:.1f} s simulated) ==")
    for entry in result.apps:
        metrics = ", ".join(
            f"{key}={_format_value(value)}" for key, value in sorted(entry["metrics"].items())
        )
        print(f"  {entry['label']:<24} on {entry['host']:<12} {metrics}")
    for entry in result.workloads:
        metrics = ", ".join(
            f"{key}={_format_value(value)}" for key, value in sorted(entry["metrics"].items())
        )
        print(f"  {entry['label']:<24} on {entry['host']:<12} [{entry['kind']}] {metrics}")
    for entry in result.links:
        print(
            f"  link {entry['link']:<22} delivered={entry['delivered_packets']} "
            f"drop_overflow={entry['dropped_overflow']} drop_random={entry['dropped_random']} "
            f"ecn={entry['ecn_marked']}"
        )
    for entry in result.hosts:
        if "cpu_total_us" in entry:
            print(
                f"  host {entry['host']:<22} cpu={entry['cpu_total_us']:.0f}us "
                f"({100.0 * entry['cpu_utilization']:.2f}%)"
            )


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.scenario)
        spec.validate()
    except SpecError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    seeds = list(range(1, args.seeds + 1)) if args.seeds is not None else [
        args.seed if args.seed is not None else spec.seed
    ]
    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
    store = None
    if args.store:
        from ..results.store import ResultStore

        store = ResultStore(args.store)
    failures = 0
    try:
        for seed in seeds:
            trace_path = None
            if args.trace:
                trace_path = args.trace if len(seeds) == 1 else _per_seed_path(args.trace, seed)
            try:
                result = run(spec, seed=seed, trace_path=trace_path, shards=args.shards)
            except SpecError as exc:
                # Some constraints (e.g. an app that needs a CM on its host)
                # are only checkable while wiring the scenario.  A single-seed
                # run is wholly invalid — same exit 2 as eager validation.  A
                # multi-seed batch reports one clean line and keeps going, so
                # it does not lose its remaining seeds to one bad trial (the
                # report-and-continue convention the experiments CLI follows).
                if len(seeds) == 1:
                    print(f"invalid scenario: {exc}", file=sys.stderr)
                    return 2
                print(f"invalid scenario (seed {seed}): {exc}", file=sys.stderr)
                failures += 1
                continue
            if not args.quiet:
                _print_result(result)
            if trace_path:
                print(f"(wrote telemetry trace {trace_path})", file=sys.stderr)
            if args.json_dir:
                path = os.path.join(args.json_dir, f"{result.name}.seed{seed}.json")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(result.to_json())
                print(f"(wrote {path})", file=sys.stderr)
            if store is not None:
                source = f"{result.name}.seed{seed}.json"
                outcome = store.ingest_scenario_payload(result.payload(), source=source)
                if trace_path:
                    outcome.merge(store.ingest_trace(trace_path))
                print(f"(result store {args.store}: {outcome.summary()})", file=sys.stderr)
    finally:
        if store is not None:
            store.close()
    if failures:
        print(f"{failures} of {len(seeds)} seed(s) failed", file=sys.stderr)
        return 1
    return 0


def _per_seed_path(path: str, seed: int) -> str:
    """Insert ``.seed<k>`` before the extension for multi-seed trace files."""
    root, ext = os.path.splitext(path)
    return f"{root}.seed{seed}{ext or '.jsonl'}"


def _cmd_list(_args: argparse.Namespace) -> int:
    from ..workloads import describe_workloads
    from .applications import describe_applications

    print("bundled presets:")
    for name in preset_names():
        spec = get_preset(name)
        print(f"  {name:<26} {spec.description.split(';')[0].strip()}")
    print("\nregistered applications:")
    for name, description, params in describe_applications():
        print(f"  {name:<26} {description}")
        for line in params:
            print(f"      {line}")
    print("\nregistered workloads (stochastic generators for the workloads: block):")
    for name, description, params in describe_workloads():
        print(f"  {name:<26} {description}")
        for line in params:
            print(f"      {line}")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.scenario)
        spec.validate()
    except SpecError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    text = json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"(wrote {args.output})", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.result, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.result!r}: {exc}", file=sys.stderr)
        return 2
    problems = validate_result_payload(payload)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}", file=sys.stderr)
        return 1
    print(f"{args.result}: ok ({len(payload.get('apps', []))} app entries)")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Compose and run declarative CM scenarios (topology + apps from one spec)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a bundled preset or a spec JSON file")
    run_parser.add_argument("scenario", help="preset name or path to a spec .json file")
    run_parser.add_argument("--seed", type=int, default=None, metavar="N",
                            help="run seed (default: the spec's own seed)")
    run_parser.add_argument("--seeds", type=int, default=None, metavar="N",
                            help="run seeds 1..N (overrides --seed)")
    run_parser.add_argument("--json-dir", default=None, metavar="DIR",
                            help="write <name>.seed<k>.json result files to DIR")
    run_parser.add_argument("--trace", default=None, metavar="FILE",
                            help="stream telemetry events + samples to a JSON-lines file "
                                 "(multi-seed runs write FILE with a .seed<k> infix)")
    run_parser.add_argument("--store", default=None, metavar="DB",
                            help="ingest per-seed results (and --trace files) into this "
                                 "sqlite result store")
    run_parser.add_argument("--shards", type=int, default=None, metavar="N",
                            help="run graph scenarios on N shard worker processes "
                                 "(byte-identical to the single-process result; "
                                 "overrides the spec's engine.shards)")
    run_parser.add_argument("--quiet", action="store_true", help="suppress the text summary")
    run_parser.set_defaults(func=_cmd_run)

    list_parser = sub.add_parser("list", help="bundled presets and registered applications")
    list_parser.set_defaults(func=_cmd_list)

    dump_parser = sub.add_parser("dump", help="print a scenario spec as editable JSON")
    dump_parser.add_argument("scenario", help="preset name or path to a spec .json file")
    dump_parser.add_argument("--output", default=None, metavar="FILE",
                             help="write to FILE instead of stdout ('-' = stdout)")
    dump_parser.set_defaults(func=_cmd_dump)

    validate_parser = sub.add_parser("validate", help="check a result JSON against the schema")
    validate_parser.add_argument("result", help="path to a result .json file")
    validate_parser.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.scenario``."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if getattr(args, "seeds", None) is not None and args.seeds < 1:
        parser.error("--seeds must be >= 1")
    return args.func(args)
