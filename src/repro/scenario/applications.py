"""The uniform Application registry backing the scenario layer.

Every workload in the repository — the paper's application case studies in
:mod:`repro.apps` *and* the raw TCP/UDP transport endpoints — is wrapped in
an :class:`Application` subclass with one common signature:

* constructed by the builder from a validated :class:`~repro.scenario.spec.AppSpec`
  (host and peer already resolved to :class:`~repro.netsim.node.Host`
  objects, params normalized against the declared :attr:`Application.PARAMS`
  schema);
* :meth:`Application.start` begins the workload (the simulator has not run
  yet when it is called);
* :meth:`Application.done` optionally reports completion for
  ``stop.when_apps_done`` early exit;
* :meth:`Application.stop` tears the workload down after the horizon;
* :meth:`Application.metrics` returns a flat JSON-able measurement dict for
  the :class:`~repro.scenario.runner.ScenarioResult`.

Registering a new workload is one subclass plus a
:func:`register_application` decorator — the spec validator, builder, CLI
``--list`` output and result schema all pick it up from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from ..apps.alfapp import TCP_VARIANTS, TCPApiTestApp, UDP_VARIANTS, UDPApiTestApp
from ..apps.bulk import BulkTransferApp
from ..apps.layered import LayeredStreamingServer
from ..apps.vat import AudioBuffer, VatApplication
from ..apps.webserver import FileServer, WebClient
from ..core.libcm import LibCM
from ..netsim.node import Host
from ..netsim.packet import DEFAULT_MSS
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from ..transport.udp.feedback import AckReflector
from .spec import AppSpec, SpecError, _kv

__all__ = [
    "Param",
    "Application",
    "register_application",
    "get_application",
    "known_applications",
    "validate_params",
    "describe_applications",
]


@dataclass(frozen=True)
class Param:
    """Typed parameter declaration for an application or workload.

    ``minimum`` bounds numeric parameters (``exclusive_minimum`` makes the
    bound strict) so values that would hang or crash a generator mid-run —
    a zero reap interval, a zero-mean think time — fail eagerly at
    ``spec.validate()`` with a path-qualified message instead.
    """

    type: type
    default: Any = None
    required: bool = False
    help: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    nullable: bool = False
    minimum: Optional[float] = None
    exclusive_minimum: bool = False


def _coerced(value: Any, param: Param) -> Any:
    """Accept ints where floats are declared; reject bool-as-int confusion."""
    if param.type is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    return value


#: Memo of successful schema walks, keyed by (app class, frozen params).
#: The key includes the class object itself, so re-registering a different
#: class under the same name can never serve stale defaults.
_PARAMS_CACHE: Dict[tuple, Dict[str, Any]] = {}
_PARAMS_CACHE_MAX = 1024


def validate_params(app_name: str, params: Dict[str, Any], path: str = "params") -> Dict[str, Any]:
    """Validate ``params`` against the app's schema; return defaults-applied dict."""
    return validate_params_cached(get_application(app_name), app_name, params, path,
                                  _PARAMS_CACHE, _PARAMS_CACHE_MAX)


def validate_params_cached(schema_cls: type, name: str, params: Dict[str, Any], path: str,
                           cache: Dict[tuple, Dict[str, Any]], cache_max: int) -> Dict[str, Any]:
    """Memoized schema walk shared by the application and workload registries.

    The key includes the schema class object itself, so re-registering a
    different class under the same name can never serve stale defaults;
    hits hand back a copy so callers may mutate their dict freely.
    """
    try:
        key = (schema_cls, tuple(sorted((pname, _kv(value)) for pname, value in params.items())))
    except TypeError:
        key = None  # unhashable value; the schema walk below will name it
    if key is not None:
        cached = cache.get(key)
        if cached is not None:
            return dict(cached)
    normalized = _validate_params_walk(schema_cls, name, params, path)
    if key is not None:
        if len(cache) >= cache_max:
            cache.clear()
        cache[key] = dict(normalized)
    return normalized


def _validate_params_walk(app_cls: type, app_name: str, params: Dict[str, Any],
                          path: str) -> Dict[str, Any]:
    """The full schema walk behind :func:`validate_params`."""
    schema = app_cls.PARAMS
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise SpecError(
            path,
            f"unknown parameter{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(repr, unknown))} for application {app_name!r}; "
            f"valid parameters: {', '.join(sorted(schema)) or '(none)'}",
        )
    normalized: Dict[str, Any] = {}
    for name, param in schema.items():
        if name not in params:
            if param.required:
                raise SpecError(f"{path}.{name}",
                                f"required parameter for application {app_name!r} "
                                f"({param.help or param.type.__name__})")
            normalized[name] = param.default
            continue
        value = _coerced(params[name], param)
        if value is None:
            if not param.nullable:
                raise SpecError(f"{path}.{name}", "may not be null")
        elif not isinstance(value, param.type) or (param.type is not bool and isinstance(value, bool)):
            raise SpecError(f"{path}.{name}",
                            f"expected {param.type.__name__}, got {type(value).__name__} ({value!r})")
        if param.choices is not None and value not in param.choices:
            raise SpecError(f"{path}.{name}",
                            f"must be one of {', '.join(map(repr, param.choices))}, got {value!r}")
        if (param.minimum is not None and value is not None
                and isinstance(value, (int, float)) and not isinstance(value, bool)):
            if param.exclusive_minimum:
                if value <= param.minimum:
                    raise SpecError(f"{path}.{name}",
                                    f"must be > {param.minimum}, got {value!r}")
            elif value < param.minimum:
                raise SpecError(f"{path}.{name}",
                                f"must be >= {param.minimum}, got {value!r}")
        normalized[name] = value
    return normalized


class Application:
    """Base class every registered scenario workload implements."""

    #: Registry name (set by subclasses, used in :class:`AppSpec.app`).
    name: ClassVar[str] = ""
    #: One-line description shown by ``python -m repro.scenario list``.
    description: ClassVar[str] = ""
    #: Typed parameter schema validated before build.
    PARAMS: ClassVar[Dict[str, Param]] = {}
    #: Whether :class:`AppSpec.peer` must name a remote host.
    needs_peer: ClassVar[bool] = False
    #: Whether the host must have a Congestion Manager attached.
    needs_cm: ClassVar[bool] = False
    #: Whether the constructor reaches *into* the live peer object (installs a
    #: listener on it, reads its CM, ...) rather than only using ``peer.addr``.
    #: The sharded engine keeps such host/peer pairs in the same shard; apps
    #: that only address the peer can talk to it across a shard boundary.
    colocate_peer: ClassVar[bool] = False

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        if self.needs_cm and host.cm is None:
            raise SpecError(
                f"apps[{spec.label or spec.app}]",
                f"application {self.name!r} requires a Congestion Manager on host "
                f"{spec.host!r}; set cm=true on the host spec (or cm_senders for a dumbbell)",
            )
        self.host = host
        self.peer = peer
        self.spec = spec
        self.params = params
        self.sim = host.sim
        self.label = spec.label or spec.app

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin the workload (called before the simulator runs)."""

    def done(self) -> Optional[bool]:
        """Completion state for early exit; ``None`` when not applicable."""
        return None

    def stop(self) -> None:
        """Tear the workload down after the horizon."""

    def detach(self) -> None:
        """Release every resource this instance holds (runtime detach).

        Workload generators call this when churning an application out of a
        *running* scenario.  The default is :meth:`stop`; applications whose
        ``stop`` deliberately leaves a socket or CM flow open (because the
        run is over anyway) override this to close it as well.
        """
        self.stop()

    def metrics(self) -> Dict[str, Any]:
        """Flat, JSON-able measurements for the scenario result."""
        return {}

    # ------------------------------------------------------------- telemetry
    def attach_telemetry(self, hub) -> None:
        """Bind this workload's probe slots to a telemetry hub (no-op by
        default; instrumented workloads override)."""

    def telemetry_sample(self) -> Optional[Dict[str, float]]:
        """Numeric state for the periodic ``apps`` sampler, or ``None``.

        Returning a dict opts the application into per-tick sampling; the
        keys become ``app.<label>.<key>`` series in the scenario result.
        Implementations must be pure reads — sampling may never perturb the
        workload.
        """
        return None


APPLICATIONS: Dict[str, Type[Application]] = {}


def register_application(cls: Type[Application]) -> Type[Application]:
    """Class decorator adding an Application to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a registry name")
    APPLICATIONS[cls.name] = cls
    return cls


def get_application(name: str) -> Type[Application]:
    """Look up an application class; raises KeyError for unknown names."""
    if name not in APPLICATIONS:
        raise KeyError(f"unknown application {name!r}; registered: {', '.join(known_applications())}")
    return APPLICATIONS[name]


def known_applications() -> List[str]:
    """Sorted registry names."""
    return sorted(APPLICATIONS)


def describe_applications() -> List[Tuple[str, str, List[str]]]:
    """(name, description, parameter summaries) rows for the CLI listing."""
    rows = []
    for name in known_applications():
        cls = APPLICATIONS[name]
        param_lines = []
        for pname, param in sorted(cls.PARAMS.items()):
            bits = [param.type.__name__]
            if param.required:
                bits.append("required")
            else:
                bits.append(f"default={param.default!r}")
            if param.choices:
                bits.append(f"one of {'/'.join(map(str, param.choices))}")
            summary = f"{pname} ({', '.join(bits)})"
            if param.help:
                summary += f": {param.help}"
            param_lines.append(summary)
        rows.append((name, cls.description, param_lines))
    return rows


# ====================================================================== #
# Transport endpoints                                                    #
# ====================================================================== #
@register_application
class TcpListenerApp(Application):
    """Passive TCP receiver on one port."""

    name = "tcp_listener"
    description = "Passive TCP endpoint accepting connections on a port"
    PARAMS = {
        "port": Param(int, required=True, help="listening port"),
        "delayed_acks": Param(bool, default=True, help="RFC1122 delayed acknowledgements"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        self.listener = TCPListener(host, params["port"], delayed_acks=params["delayed_acks"])

    def stop(self) -> None:
        self.listener.close()

    def metrics(self) -> Dict[str, Any]:
        return {
            "port": self.params["port"],
            "bytes_received": self.listener.total_bytes_received,
            "connections": len(self.listener.connections),
        }


@register_application
class TcpSenderApp(Application):
    """One TCP transfer (TCP/CM or the native Reno baseline) to the peer."""

    name = "tcp_sender"
    description = "Bulk TCP transfer to the peer host (variants: cm, reno)"
    needs_peer = True
    PARAMS = {
        "variant": Param(str, default="cm", choices=("cm", "reno"),
                         help="cm = TCP/CM (requires a CM on the host), reno = TCP/Linux"),
        "port": Param(int, required=True, help="destination port (a tcp_listener must be there)"),
        "transfer_bytes": Param(int, required=True, help="bytes to deliver"),
        "receive_window": Param(int, default=1 << 20, help="peer's advertised window"),
        "mss": Param(int, default=DEFAULT_MSS, help="maximum segment size"),
        "ecn": Param(bool, default=False, help="mark data segments ECN-capable"),
        "start_at": Param(float, default=0.0, help="simulated time the transfer starts"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        if params["variant"] == "cm":
            self.needs_cm = True
        super().__init__(host, peer, spec, params)
        sender_cls = CMTCPSender if params["variant"] == "cm" else RenoTCPSender
        assert peer is not None
        self.sender = sender_cls(
            host, peer.addr, params["port"],
            mss=params["mss"], receive_window=params["receive_window"], ecn=params["ecn"],
        )

    def start(self) -> None:
        if self.params["start_at"] > 0.0:
            self.sim.schedule(self.params["start_at"], self.sender.send, self.params["transfer_bytes"])
        else:
            self.sender.send(self.params["transfer_bytes"])

    def done(self) -> Optional[bool]:
        return self.sender.done

    def stop(self) -> None:
        self.sender.close()

    def attach_telemetry(self, hub) -> None:
        self.sender.attach_telemetry(hub)

    def telemetry_sample(self) -> Dict[str, float]:
        return {
            "bytes_acked": float(self.sender.bytes_acked),
            "goodput_Bps": self.sender.throughput(),
        }

    def metrics(self) -> Dict[str, Any]:
        sender = self.sender
        duration = None
        if sender.done and sender.complete_time is not None and sender.connect_time is not None:
            duration = sender.complete_time - sender.connect_time
        return {
            "variant": self.params["variant"],
            "bytes_acked": sender.bytes_acked,
            "throughput_Bps": sender.throughput(),
            "done": sender.done,
            "duration_s": duration,
            "retransmissions": sender.retransmissions,
            "timeouts": sender.timeouts,
        }


@register_application
class AckReflectorApp(Application):
    """UDP receiver echoing application-level acknowledgements."""

    name = "ack_reflector"
    description = "UDP receiver acknowledging datagrams (optionally batched)"
    PARAMS = {
        "port": Param(int, required=True, help="listening port"),
        "ack_every_packets": Param(int, default=1, help="acknowledge every N datagrams"),
        "ack_delay": Param(float, default=None, nullable=True,
                           help="max seconds feedback may be withheld (null = immediate)"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        self.reflector = AckReflector(
            host, port=params["port"],
            ack_every_packets=params["ack_every_packets"], ack_delay=params["ack_delay"],
        )

    def stop(self) -> None:
        self.reflector.close()

    def metrics(self) -> Dict[str, Any]:
        return {
            "port": self.params["port"],
            "packets_received": self.reflector.packets_received,
            "bytes_received": self.reflector.bytes_received,
            "acks_sent": self.reflector.acks_sent,
        }


# ====================================================================== #
# Paper application case studies                                         #
# ====================================================================== #
@register_application
class BulkApp(Application):
    """ttcp-style bulk transfer (Figures 4/5 workload) to the peer host."""

    name = "bulk"
    description = "ttcp-style buffered transfer incl. its own listener on the peer"
    needs_peer = True
    colocate_peer = True  # installs its own listener on the live peer host
    PARAMS = {
        "variant": Param(str, default="cm", choices=("cm", "linux"),
                         help="cm = TCP/CM, linux = native Reno"),
        "nbuffers": Param(int, required=True, help="number of buffers to write"),
        "buffer_size": Param(int, default=1448, help="bytes per buffer"),
        "port": Param(int, default=5001, help="destination port"),
        "receive_window": Param(int, default=64 * 1024, help="receiver's advertised window"),
        "delayed_acks": Param(bool, default=True, help="delayed ACKs at the receiver"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        if params["variant"] == "cm":
            self.needs_cm = True
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.app = BulkTransferApp(
            host, peer, variant=params["variant"], port=params["port"],
            buffer_size=params["buffer_size"], receive_window=params["receive_window"],
            delayed_acks=params["delayed_acks"],
        )

    def start(self) -> None:
        self.app.begin(self.sim, self.params["nbuffers"])

    def done(self) -> Optional[bool]:
        return self.app.sender.done

    def stop(self) -> None:
        self.app.close()

    def attach_telemetry(self, hub) -> None:
        self.app.sender.attach_telemetry(hub)

    def telemetry_sample(self) -> Dict[str, float]:
        return {"bytes_acked": float(self.app.sender.bytes_acked)}

    def metrics(self) -> Dict[str, Any]:
        from dataclasses import asdict

        return asdict(self.app.collect(self.sim))


@register_application
class WebServerApp(Application):
    """Web server opening a fresh TCP connection per request (Figure 7)."""

    name = "web_server"
    description = "File server answering requests over per-request TCP connections"
    PARAMS = {
        "port": Param(int, default=80, help="UDP request port"),
        "variant": Param(str, default="cm", choices=("cm", "linux"),
                         help="TCP sender variant used for responses"),
        "receive_window": Param(int, default=64 * 1024, help="client's advertised window"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        if params["variant"] == "cm":
            self.needs_cm = True
        super().__init__(host, peer, spec, params)
        self.server = FileServer(host, port=params["port"], variant=params["variant"],
                                 receive_window=params["receive_window"])

    def stop(self) -> None:
        self.server.close()

    def metrics(self) -> Dict[str, Any]:
        return {"requests_served": self.server.requests_served}


@register_application
class WebClientApp(Application):
    """Client issuing a train of fixed-size fetches to a web_server peer."""

    name = "web_client"
    description = "Fetch train against a web_server on the peer host"
    needs_peer = True
    PARAMS = {
        "server_port": Param(int, default=80, help="the web_server's request port"),
        "n_requests": Param(int, default=5, help="number of sequential fetches"),
        "spacing": Param(float, default=0.5, help="seconds between request starts"),
        "size": Param(int, default=128 * 1024, help="bytes per fetch"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.client = WebClient(host, peer.addr, params["server_port"])

    def start(self) -> None:
        for index in range(self.params["n_requests"]):
            self.sim.schedule(index * self.params["spacing"], self.client.fetch, self.params["size"])

    def done(self) -> Optional[bool]:
        fetches = self.client.fetches
        return len(fetches) == self.params["n_requests"] and all(f.done for f in fetches)

    def stop(self) -> None:
        self.client.close()

    def telemetry_sample(self) -> Dict[str, float]:
        return {
            "requests_completed": float(sum(1 for f in self.client.fetches if f.done)),
        }

    def metrics(self) -> Dict[str, Any]:
        # Undone fetches report null, not NaN: NaN would make the result's
        # canonical JSON unparseable by strict parsers.
        durations_ms = [
            fetch.duration * 1000.0 if fetch.done else None for fetch in self.client.fetches
        ]
        completed = [fetch.duration for fetch in self.client.fetches if fetch.done]
        return {
            "requests_issued": len(self.client.fetches),
            "requests_completed": len(completed),
            "durations_ms": durations_ms,
            "mean_duration_ms": (sum(completed) / len(completed) * 1000.0) if completed else None,
        }


@register_application
class VatApp(Application):
    """vat-style CBR interactive audio made adaptive through the CM (§3.6)."""

    name = "vat"
    description = "Adaptive 64 kbit/s audio: policer + app buffer over CM-paced UDP"
    needs_peer = True
    needs_cm = True
    PARAMS = {
        "port": Param(int, default=9001, help="the peer's ack_reflector port"),
        "buffer_frames": Param(int, default=8, help="application buffer capacity in frames"),
        "drop_policy": Param(str, default=AudioBuffer.DROP_FROM_HEAD,
                             choices=(AudioBuffer.DROP_FROM_HEAD, AudioBuffer.DROP_TAIL),
                             help="application buffer drop policy"),
        "kernel_queue_frames": Param(int, default=4, help="CM-UDP socket queue depth"),
        "thresh_down": Param(float, default=1.25, help="rate-callback down factor"),
        "thresh_up": Param(float, default=1.25, help="rate-callback up factor"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.app = VatApplication(
            host, peer.addr, params["port"],
            buffer_frames=params["buffer_frames"], drop_policy=params["drop_policy"],
            kernel_queue_frames=params["kernel_queue_frames"],
            thresh_down=params["thresh_down"], thresh_up=params["thresh_up"],
        )

    def start(self) -> None:
        self.app.start()

    def stop(self) -> None:
        self.app.stop()

    def detach(self) -> None:
        # stop() keeps the CM-UDP socket open (harmless after the horizon);
        # a runtime detach must close it so the CM flow actually leaves the
        # macroflow — that churn is the point of the vat_onoff workload.
        self.stop()
        self.app.socket.close()

    def telemetry_sample(self) -> Dict[str, float]:
        return {
            "frames_sent": float(self.app.frames_sent),
            "frames_acked": float(self.app.frames_acked),
        }

    def metrics(self) -> Dict[str, Any]:
        app = self.app
        return {
            "frames_generated": app.frames_generated,
            "frames_sent": app.frames_sent,
            "frames_acked": app.frames_acked,
            "dropped_by_policer": app.frames_dropped_by_policer,
            "dropped_by_buffer": app.frames_dropped_by_buffer,
            "mean_delivery_delay_s": app.mean_delivery_delay(),
            "rate_updates": len(app.rate_updates),
        }


@register_application
class LayeredStreamingApp(Application):
    """Layered audio/video server (§3.4) with a selectable libcm event-loop mode."""

    name = "layered_streaming"
    description = "Adaptive layered media server (ALF or rate-callback API) via libcm"
    needs_peer = True
    needs_cm = True
    PARAMS = {
        "port": Param(int, default=9001, help="the peer's ack_reflector port"),
        "mode": Param(str, default="alf", choices=("alf", "rate"),
                      help="adaptation API: ALF request/callback or rate callback"),
        "libcm_mode": Param(str, default="select", choices=("select", "sigio", "poll"),
                            help="libcm event-loop integration"),
        "poll_interval": Param(float, default=0.01,
                               help="libcm.poll() period when libcm_mode=poll"),
        "thresh": Param(float, default=1.5, help="cm_thresh factors (both directions)"),
        "rate_bin": Param(float, default=0.5, help="transmission-rate series bin width"),
        "packet_payload": Param(int, default=1000, help="payload bytes per packet"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.libcm = LibCM(host, mode=params["libcm_mode"])
        self.server = LayeredStreamingServer(
            host, peer.addr, params["port"],
            mode=params["mode"], libcm=self.libcm,
            thresh_down=params["thresh"], thresh_up=params["thresh"],
            rate_bin=params["rate_bin"], packet_payload=params["packet_payload"],
        )
        self._poll_event = None

    def start(self) -> None:
        self.server.start()
        if self.params["libcm_mode"] == "poll":
            self._schedule_poll()

    def _schedule_poll(self) -> None:
        self._poll_event = self.sim.schedule(self.params["poll_interval"], self._poll_tick)

    def _poll_tick(self) -> None:
        self.libcm.poll()
        self._schedule_poll()

    def stop(self) -> None:
        if self._poll_event is not None and self._poll_event.pending:
            self._poll_event.cancel()
        self._poll_event = None
        self.server.stop()

    def attach_telemetry(self, hub) -> None:
        self.server.attach_telemetry(hub)

    def telemetry_sample(self) -> Dict[str, float]:
        return {
            "bytes_sent": float(self.server.bytes_sent),
            "layer": float(self.server.current_layer),
        }

    def metrics(self) -> Dict[str, Any]:
        from ..analysis import oscillation_count

        server = self.server
        tx_series = server.transmission_series()
        mean_tx = sum(v for _t, v in tx_series) / len(tx_series) if tx_series else 0.0
        return {
            "mode": self.params["mode"],
            "libcm_mode": self.params["libcm_mode"],
            "packets_sent": server.packets_sent,
            "bytes_sent": server.bytes_sent,
            "mean_transmission_rate_Bps": mean_tx,
            "layer_switches": oscillation_count(server.layers_sent()),
            "rate_reports": len(server.reported_rates),
            "libcm_stats": dict(self.libcm.stats),
        }


@register_application
class UdpApiApp(Application):
    """API-overhead UDP sender (Figure 6 / Table 1 variants)."""

    name = "udp_api"
    description = "ALF / ALF-noconnect / buffered CM-UDP test sender"
    needs_peer = True
    needs_cm = True
    PARAMS = {
        "port": Param(int, default=7001, help="the peer's ack_reflector port"),
        "variant": Param(str, default="alf", choices=UDP_VARIANTS, help="send path under test"),
        "packet_size": Param(int, default=1000, help="payload bytes per packet"),
        "npackets": Param(int, default=1000, help="packets to send"),
        "pipeline": Param(int, default=8, help="outstanding requests kept in flight"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.app = UDPApiTestApp(
            host, peer.addr, params["port"], variant=params["variant"],
            packet_size=params["packet_size"], npackets=params["npackets"],
            pipeline=params["pipeline"],
        )

    def start(self) -> None:
        self.app.start()

    def done(self) -> Optional[bool]:
        return self.app.done

    def telemetry_sample(self) -> Dict[str, float]:
        return {"packets_acked": float(self.app.packets_acked)}

    def metrics(self) -> Dict[str, Any]:
        return {
            "variant": self.params["variant"],
            "packets_sent": self.app.packets_sent,
            "packets_acked": self.app.packets_acked,
            "done": self.app.done,
            "libcm_stats": dict(self.app.libcm.stats),
        }


@register_application
class TcpApiApp(Application):
    """API-overhead TCP baseline sender (Figure 6 / Table 1 variants)."""

    name = "tcp_api"
    description = "Webserver-like TCP sender baseline for the API-overhead study"
    needs_peer = True
    colocate_peer = True  # auto-creates its listener on the live peer host
    PARAMS = {
        "variant": Param(str, default="tcp_cm", choices=TCP_VARIANTS, help="send path under test"),
        "packet_size": Param(int, default=1000, help="payload bytes per send call"),
        "npackets": Param(int, default=1000, help="buffers to write"),
        "port": Param(int, default=6001, help="destination port (listener auto-created on peer)"),
        "receive_window": Param(int, default=64 * 1024, help="peer's advertised window"),
    }

    def __init__(self, host: Host, peer: Optional[Host], spec: AppSpec, params: Dict[str, Any]):
        if params["variant"] != "tcp_linux":
            self.needs_cm = True
        super().__init__(host, peer, spec, params)
        assert peer is not None
        self.app = TCPApiTestApp(
            host, peer, variant=params["variant"], packet_size=params["packet_size"],
            npackets=params["npackets"], port=params["port"],
            receive_window=params["receive_window"],
        )

    def start(self) -> None:
        costs = self.host.costs
        for _ in range(self.params["npackets"]):
            if costs is not None:
                costs.syscall("send_call", category="app")
                costs.charge_copy(self.params["packet_size"], category="app")
            self.app.sender.send(self.params["packet_size"])

    def done(self) -> Optional[bool]:
        return self.app.sender.done

    def stop(self) -> None:
        self.app.close()

    def attach_telemetry(self, hub) -> None:
        self.app.sender.attach_telemetry(hub)

    def telemetry_sample(self) -> Dict[str, float]:
        return {"bytes_acked": float(self.app.sender.bytes_acked)}

    def metrics(self) -> Dict[str, Any]:
        sender = self.app.sender
        return {
            "variant": self.params["variant"],
            "data_packets_sent": sender.data_packets_sent,
            "bytes_acked": sender.bytes_acked,
            "done": sender.done,
            "retransmissions": sender.retransmissions,
        }
