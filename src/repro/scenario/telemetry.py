"""Wire a spec's ``telemetry:`` block into a compiled scenario.

:class:`ScenarioTelemetry` is the bridge between the declarative
:class:`~repro.scenario.spec.TelemetrySpec` and the mechanisms in
:mod:`repro.telemetry`: it builds the hub, subscribes the bounded event
recorder (ring or seeded reservoir) and the optional JSON-lines trace sink,
binds the probe slots of every instrumented component (links, Congestion
Managers, TCP senders, the layered media server), registers the periodic
samplers the block asks for, and renders everything into the deterministic
``telemetry`` section of the :class:`~repro.scenario.runner.ScenarioResult`.

Two invariants the CI telemetry-determinism job relies on:

* a run with probes attached produces **byte-identical** app/link/host
  metrics to a detached run — probes and samplers only read state;
* the ``telemetry`` result section and the ``--trace`` JSONL file are
  byte-identical across repeat runs of the same ``(spec, seed)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..telemetry import (
    JsonlSink,
    PeriodicSampler,
    ReservoirRecorder,
    RingRecorder,
    TelemetryHub,
    app_goodput_source,
    cm_state_source,
    link_queue_source,
    scheduler_backlog_source,
)
from .spec import TelemetrySpec

__all__ = ["ScenarioTelemetry"]


class ScenarioTelemetry:
    """Telemetry wiring for one compiled scenario.

    Parameters
    ----------
    spec:
        The scenario's telemetry block, or ``None`` when only ``trace_path``
        asked for instrumentation (the CLI's ``--trace`` on a spec without a
        block).  In that case a default block drives the wiring but the
        scenario *result* carries no telemetry section, so the result JSON
        stays byte-identical to an un-instrumented run.
    seed:
        The run seed; it keys the reservoir recorder's RNG so sampled event
        logs are deterministic per ``(spec, seed)``.
    trace_path:
        Optional JSON-lines file streaming every event and sample.
    """

    def __init__(self, spec: Optional[TelemetrySpec], seed: int, sim,
                 trace_path: Optional[str] = None):
        self.spec = spec
        self.in_result = spec is not None
        effective = spec if spec is not None else TelemetrySpec()
        self._effective = effective
        self.hub = TelemetryHub()
        self.sink = JsonlSink(trace_path) if trace_path else None

        self._event_log = None
        if effective.events:
            if effective.event_recorder == "reservoir":
                self._event_log = ReservoirRecorder(effective.ring_capacity, seed=seed)
            else:
                self._event_log = RingRecorder(effective.ring_capacity)
            log = self._event_log

            def keep(event: str, time: float, fields: Dict[str, Any]) -> None:
                log.append((time, event, fields))

            for event in effective.events:
                self.hub.subscribe(event, keep)
        if self.sink is not None:
            # The trace file gets every event in the catalog, whether or not
            # the result keeps it.
            self.hub.subscribe_all(self.sink)

        self.sampler = PeriodicSampler(
            sim,
            interval=effective.sample_interval,
            max_samples=effective.max_samples,
            sink=self.sink,
        )

    # ------------------------------------------------------------------ wiring
    def attach(self, scenario) -> None:
        """Bind probes and register samplers across the compiled scenario.

        Must run after every sink subscription (the hub's dispatch table is
        read once per probe slot, at attach time) and after the builder
        created hosts, channels and apps.
        """
        hub = self.hub
        groups = set(self._effective.samplers)
        links: List = []
        for (a, b), channel in scenario.channels.items():
            links.append((f"{a}->{b}", channel.forward))
            links.append((f"{b}->{a}", channel.reverse))
        if scenario.dumbbell is not None:
            links.append(("bottleneck", scenario.dumbbell.bottleneck))
            links.append(("bottleneck-rev", scenario.dumbbell.bottleneck_reverse))
        if scenario.graph_net is not None:
            for (a, b), link in scenario.graph_net.links.items():
                links.append((f"{a}->{b}", link))
        for _label, link in links:
            link.attach_telemetry(hub)
        for name, host in scenario.hosts.items():
            if host.cm is not None:
                host.cm.attach_telemetry(hub)
                if "macroflows" in groups:
                    self.sampler.add_source(cm_state_source(name, host.cm))
                if "schedulers" in groups:
                    self.sampler.add_source(scheduler_backlog_source(name, host.cm))
        if "links" in groups:
            for label, link in links:
                self.sampler.add_source(link_queue_source(label, link))
        for app in scenario.apps:
            app.attach_telemetry(hub)
            if "apps" in groups:
                source = app_goodput_source(app.label, app)
                if source is not None:
                    self.sampler.add_source(source)

    # ----------------------------------------------------------------- control
    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        self.sampler.stop()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    # ------------------------------------------------------------------ output
    def payload(self) -> Dict[str, Any]:
        """The deterministic ``telemetry`` section of a scenario result."""
        spec = self._effective
        section: Dict[str, Any] = {
            "sample_interval": spec.sample_interval,
            "samplers": list(spec.samplers),
            "samples": {
                name: [[t, v] for t, v in points]
                for name, points in self.sampler.sampled_series().items()
            },
        }
        dropped = self.sampler.dropped_by_series()
        if dropped:
            section["dropped_samples"] = dropped
        if spec.events:
            log = self._event_log
            section["events"] = {
                event: {"count": self.hub.counts.get(event, 0)}
                for event in spec.events
            }
            section["event_log"] = [
                [t, event, dict(fields)] for t, event, fields in log.items()
            ]
            section["event_log_dropped"] = log.dropped
            section["event_recorder"] = spec.event_recorder
        return section
