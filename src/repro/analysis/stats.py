"""NumPy-free summary statistics for multi-seed experiment points.

The experiment harness averages every figure point over several seeds; this
module turns those per-seed samples into the mean / sample standard
deviation / 95 % confidence interval reported in the result tables.  It is
deliberately dependency-free and order-deterministic: given the same list of
samples it always produces bit-identical floats, which is what lets the
parallel runner promise byte-identical JSON artifacts regardless of worker
count (samples are summed in shard-key order, never in completion order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["PointStats", "mean", "sample_stddev", "t_critical_95", "ci95_halfwidth", "summarize"]

#: Two-tailed Student-t critical values at 95 % confidence, indexed by
#: degrees of freedom 1..30; beyond 30 the normal approximation is used.
_T_TABLE_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)

_Z_95 = 1.960


@dataclass(frozen=True)
class PointStats:
    """Summary of one figure point's per-seed samples."""

    n: int
    mean: float
    stddev: float
    ci95: float

    def as_row(self) -> List[float]:
        """The (mean, stddev, ci95) triple in table-column order."""
        return [self.mean, self.stddev, self.ci95]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean in the given order (0.0 for no samples)."""
    samples = list(samples)
    if not samples:
        return 0.0
    return math.fsum(samples) / len(samples)


def sample_stddev(samples: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 when fewer than two samples."""
    samples = list(samples)
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    variance = math.fsum((x - mu) ** 2 for x in samples) / (len(samples) - 1)
    # Guard against tiny negative round-off from fsum cancellation.
    return math.sqrt(variance) if variance > 0.0 else 0.0


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-tailed 95 % Student-t critical value (normal beyond df=30)."""
    if degrees_of_freedom < 1:
        return 0.0
    if degrees_of_freedom <= len(_T_TABLE_95):
        return _T_TABLE_95[degrees_of_freedom - 1]
    return _Z_95


def ci95_halfwidth(samples: Sequence[float]) -> float:
    """Half-width of the 95 % confidence interval on the mean."""
    samples = list(samples)
    if len(samples) < 2:
        return 0.0
    return t_critical_95(len(samples) - 1) * sample_stddev(samples) / math.sqrt(len(samples))


def summarize(samples: Sequence[float]) -> PointStats:
    """Mean, sample stddev and 95 % CI half-width for one point's samples."""
    samples = list(samples)
    return PointStats(
        n=len(samples),
        mean=mean(samples),
        stddev=sample_stddev(samples),
        ci95=ci95_halfwidth(samples),
    )
