"""Measurement and summary helpers for experiments and tests."""

from .metrics import (
    jain_fairness,
    mean,
    oscillation_count,
    relative_difference,
    series_max,
    series_mean,
    throughput_bytes_per_second,
)
from .stats import PointStats, ci95_halfwidth, sample_stddev, summarize, t_critical_95

__all__ = [
    "throughput_bytes_per_second",
    "jain_fairness",
    "mean",
    "relative_difference",
    "series_mean",
    "series_max",
    "oscillation_count",
    "PointStats",
    "sample_stddev",
    "ci95_halfwidth",
    "t_critical_95",
    "summarize",
]
