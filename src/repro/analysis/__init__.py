"""Measurement and summary helpers for experiments and tests."""

from .metrics import (
    jain_fairness,
    mean,
    oscillation_count,
    relative_difference,
    series_max,
    series_mean,
    throughput_bytes_per_second,
)

__all__ = [
    "throughput_bytes_per_second",
    "jain_fairness",
    "mean",
    "relative_difference",
    "series_mean",
    "series_max",
    "oscillation_count",
]
