"""Metrics used by the experiment harnesses and tests."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "throughput_bytes_per_second",
    "jain_fairness",
    "mean",
    "relative_difference",
    "series_mean",
    "series_max",
    "oscillation_count",
]


def throughput_bytes_per_second(nbytes: int, elapsed: float) -> float:
    """Goodput for ``nbytes`` delivered over ``elapsed`` seconds."""
    if elapsed <= 0:
        return 0.0
    return nbytes / elapsed


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n maximally unfair."""
    shares = [s for s in shares if s >= 0]
    if not shares:
        return 0.0
    total = sum(shares)
    if total == 0:
        return 1.0
    squares = sum(s * s for s in shares)
    if squares == 0.0:
        # All shares are so small that their squares underflow to zero;
        # they are indistinguishable, i.e. perfectly fair.
        return 1.0
    return (total * total) / (len(shares) * squares)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty iterable)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def relative_difference(a: float, b: float) -> float:
    """|a - b| relative to the larger magnitude (0 when both are 0)."""
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 0.0
    return abs(a - b) / denom


def series_mean(series: Sequence[Tuple[float, float]]) -> float:
    """Mean of the value column of a ``(time, value)`` series."""
    return mean(v for _t, v in series)


def series_max(series: Sequence[Tuple[float, float]]) -> float:
    """Maximum of the value column of a ``(time, value)`` series."""
    values = [v for _t, v in series]
    return max(values) if values else 0.0


def oscillation_count(values: Sequence[float]) -> int:
    """Number of times a discrete-valued series changes value.

    Used to compare how often the ALF-mode layered application switches
    layers versus the rate-callback mode (Figures 8 vs 9: the ALF sender is
    "more responsive to smaller changes", i.e. it oscillates more).
    """
    changes = 0
    previous = None
    for value in values:
        if previous is not None and value != previous:
            changes += 1
        previous = value
    return changes
