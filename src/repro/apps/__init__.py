"""Application case studies from the paper (§3) built on the CM API."""

from .alfapp import ApiOverheadResult, TCPApiTestApp, TCP_VARIANTS, UDPApiTestApp, UDP_VARIANTS
from .bulk import BulkResult, BulkTransferApp
from .layered import DEFAULT_LAYER_RATES, LayeredStreamingServer
from .vat import AudioBuffer, Policer, VatApplication
from .webserver import FetchRecord, FileServer, WebClient

__all__ = [
    "LayeredStreamingServer",
    "DEFAULT_LAYER_RATES",
    "VatApplication",
    "Policer",
    "AudioBuffer",
    "FileServer",
    "WebClient",
    "FetchRecord",
    "BulkTransferApp",
    "BulkResult",
    "UDPApiTestApp",
    "TCPApiTestApp",
    "ApiOverheadResult",
    "UDP_VARIANTS",
    "TCP_VARIANTS",
]
