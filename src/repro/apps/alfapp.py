"""API-overhead test applications (Figure 6 and Table 1).

The paper quantifies what the user-space adaptation API costs by running
small test programs that send packets of a given size and process the
acknowledgements for them, under each API:

* **ALF** — request/callback over a *connected* UDP socket: one
  ``cm_request`` ioctl per packet plus the extra control socket in the
  application's select set;
* **ALF/noconnect** — the same over an *unconnected* UDP socket, which adds
  an explicit ``cm_notify`` ioctl per packet because the kernel cannot match
  the transmission to the flow itself;
* **Buffered** — the congestion-controlled (CM-paced) UDP socket: the
  application just writes datagrams, but still processes its own
  acknowledgements in user space (a ``recv`` plus two ``gettimeofday`` calls
  per packet) and reports them with ``cm_update``;
* **TCP/CM** and **TCP/Linux** — webserver-like TCP senders (with and
  without delayed ACKs at the receiver) used as the baseline.

Each run reports per-packet CPU cost on the sending host, broken down by
ledger category, plus the wire time — which is what the experiment harness
turns into the Figure 6 curves and the Table 1 operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.libcm import LibCM
from ..netsim.engine import Simulator
from ..netsim.node import Host
from ..netsim.packet import IP_HEADER_BYTES, TCP_HEADER_BYTES, UDP_HEADER_BYTES, Packet
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from ..transport.udp.feedback import AppFeedbackTracker
from ..transport.udp.socket import UDPSocket
from ..transport.udp.udpcc import CMUDPSocket

__all__ = ["ApiOverheadResult", "UDPApiTestApp", "TCPApiTestApp", "UDP_VARIANTS", "TCP_VARIANTS"]

UDP_VARIANTS = ("alf", "alf_noconnect", "buffered")
TCP_VARIANTS = ("tcp_cm", "tcp_cm_nodelay", "tcp_linux")


@dataclass
class ApiOverheadResult:
    """Per-run measurements for one API variant and packet size."""

    variant: str
    packet_size: int
    packets_sent: int
    duration: float
    cpu_us_total: float
    operation_counts: Dict[str, int] = field(default_factory=dict)
    wire_us_per_packet: float = 0.0
    completed: bool = True

    @property
    def cpu_us_per_packet(self) -> float:
        """Sender-host CPU microseconds charged per data packet."""
        if self.packets_sent == 0:
            return 0.0
        return self.cpu_us_total / self.packets_sent

    @property
    def us_per_packet(self) -> float:
        """Per-packet cost combining CPU work and wire time.

        The paper's Figure 6 reports wall-clock microseconds per packet on an
        otherwise idle 100 Mbps path; in this reproduction the equivalent is
        the serialised cost of preparing, transmitting and accounting one
        packet.
        """
        return self.cpu_us_per_packet + self.wire_us_per_packet

    def ops_per_packet(self, operation: str) -> float:
        """Average count of a ledger operation per data packet (Table 1)."""
        if self.packets_sent == 0:
            return 0.0
        return self.operation_counts.get(operation, 0) / self.packets_sent


def _wire_us(payload: int, header: int, rate_bps: float) -> float:
    return (payload + header) * 8.0 / rate_bps * 1e6


class UDPApiTestApp:
    """Sender exercising one of the UDP-based CM APIs against an AckReflector."""

    def __init__(
        self,
        host: Host,
        server_addr: str,
        server_port: int,
        variant: str,
        packet_size: int,
        npackets: int,
        pipeline: int = 8,
    ):
        if variant not in UDP_VARIANTS:
            raise ValueError(f"unknown UDP API variant {variant!r}")
        if host.cm is None:
            raise RuntimeError("API test applications require a CM on the sending host")
        self.host = host
        self.sim = host.sim
        self.variant = variant
        self.packet_size = packet_size
        self.npackets = npackets
        self.pipeline = pipeline
        self.server_addr = server_addr
        self.server_port = server_port

        self.tracker = AppFeedbackTracker()
        self._seq = 0
        self.packets_acked = 0
        self._requests_outstanding = 0

        self.libcm = LibCM(host)
        if variant == "buffered":
            self.socket: UDPSocket = CMUDPSocket(host, max_queue_packets=pipeline * 4)
            self.socket.connect(server_addr, server_port)
            self.flow_id = self.socket.flow_id
        else:
            self.socket = UDPSocket(host)
            if variant == "alf":
                self.socket.connect(server_addr, server_port)
            self.flow_id = self.libcm.cm_open(
                host.addr,
                server_addr,
                self.socket.local_port,
                server_port,
                "udp",
            )
            self.libcm.cm_register_send(self.flow_id, self._cmapp_send)
        self.socket.on_receive = self._handle_ack

    # ------------------------------------------------------------------ drive
    def start(self) -> None:
        """Kick off the transfer."""
        if self.variant == "buffered":
            self._fill_buffered_pipeline()
        else:
            self._top_up_requests()

    @property
    def packets_sent(self) -> int:
        """Data packets handed to the socket so far."""
        return self._seq

    @property
    def done(self) -> bool:
        """True once every packet has been sent and acknowledged or resolved."""
        return self._seq >= self.npackets and self.tracker.in_flight_packets == 0

    # --------------------------------------------------------- ALF send paths
    def _top_up_requests(self) -> None:
        while (
            self._requests_outstanding < self.pipeline
            and self._seq + self._requests_outstanding < self.npackets
        ):
            self._requests_outstanding += 1
            self.libcm.cm_request(self.flow_id)

    def _cmapp_send(self, flow_id: int) -> None:
        self._requests_outstanding = max(0, self._requests_outstanding - 1)
        if self._seq >= self.npackets:
            self.libcm.cm_notify(flow_id, 0)
            return
        seq = self._seq
        self._seq += 1
        headers = {"seq": seq, "ts": self.sim.now}
        if self.variant == "alf":
            self.socket.send(self.packet_size, headers=headers)
        else:
            # Unconnected socket: the kernel cannot charge the flow itself,
            # so the application must notify explicitly (an extra ioctl).
            self.socket.sendto(self.packet_size, self.server_addr, self.server_port, headers=headers)
            self.libcm.cm_notify(self.flow_id, self.packet_size)
        self.tracker.on_sent(seq, self.packet_size)
        self._top_up_requests()

    # ----------------------------------------------------- buffered send path
    def _fill_buffered_pipeline(self) -> None:
        while self.tracker.in_flight_packets < self.pipeline and self._seq < self.npackets:
            seq = self._seq
            self._seq += 1
            self.socket.sendto(
                self.packet_size,
                self.server_addr,
                self.server_port,
                headers={"seq": seq, "ts": self.sim.now},
            )
            self.tracker.on_sent(seq, self.packet_size)

    # --------------------------------------------------------------- feedback
    def _handle_ack(self, packet: Packet) -> None:
        headers = packet.headers
        if self.host.costs is not None:
            # RTT computation on the application side: one gettimeofday at
            # send time and one when the acknowledgement is processed.
            self.host.costs.charge_operation("gettimeofday", count=2, category="app")
        report = self.tracker.on_ack(headers.get("ack_seq"), headers.get("ts_echo"), self.sim.now)
        if report is None:
            return
        self.packets_acked += 1
        self.libcm.cm_update(self.flow_id, report.nsent, report.nrecd, report.lossmode, report.rtt)
        if self.variant == "buffered":
            self._fill_buffered_pipeline()
        else:
            self._top_up_requests()

    # ------------------------------------------------------------------ runner
    def run(self, sim: Simulator, link_rate_bps: float, timeout: float = 300.0) -> ApiOverheadResult:
        """Drive the transfer to completion and collect the measurements."""
        costs = self.host.costs
        base_total = costs.total_us if costs is not None else 0.0
        base_ops = dict(costs.ledger.operation_counts) if costs is not None else {}
        start = sim.now
        self.start()
        deadline = start + timeout
        while sim.now < deadline and not self.done:
            if sim.peek() is None:
                break
            sim.run(until=min(deadline, sim.now + 1.0))
        duration = max(sim.now - start, 1e-9)
        ops = {}
        cpu = 0.0
        if costs is not None:
            cpu = costs.total_us - base_total
            for op, count in costs.ledger.operation_counts.items():
                delta = count - base_ops.get(op, 0)
                if delta:
                    ops[op] = delta
        return ApiOverheadResult(
            variant=self.variant,
            packet_size=self.packet_size,
            packets_sent=self._seq,
            duration=duration,
            cpu_us_total=cpu,
            operation_counts=ops,
            wire_us_per_packet=_wire_us(self.packet_size, IP_HEADER_BYTES + UDP_HEADER_BYTES, link_rate_bps),
            completed=self.done,
        )


class TCPApiTestApp:
    """Webserver-like TCP sender used as the Figure 6 baseline."""

    def __init__(
        self,
        sender_host: Host,
        receiver_host: Host,
        variant: str,
        packet_size: int,
        npackets: int,
        port: int = 6001,
        receive_window: int = 64 * 1024,
    ):
        if variant not in TCP_VARIANTS:
            raise ValueError(f"unknown TCP API variant {variant!r}")
        self.sender_host = sender_host
        self.variant = variant
        self.packet_size = packet_size
        self.npackets = npackets
        delayed_acks = variant != "tcp_cm_nodelay"
        self.listener = TCPListener(receiver_host, port, delayed_acks=delayed_acks)
        if variant == "tcp_linux":
            self.sender = RenoTCPSender(
                sender_host, receiver_host.addr, port, mss=packet_size, receive_window=receive_window
            )
        else:
            self.sender = CMTCPSender(
                sender_host, receiver_host.addr, port, mss=packet_size, receive_window=receive_window
            )
        # "performed a select() on its socket to determine if the server has
        # sent any data back": one select per acknowledgement processed.
        if sender_host.costs is not None:
            self.sender.on_progress = lambda _total: sender_host.costs.charge_operation(
                "select_call", category="app"
            )

    def run(self, sim: Simulator, link_rate_bps: float, timeout: float = 300.0) -> ApiOverheadResult:
        """Drive the transfer to completion and collect the measurements."""
        costs = self.sender_host.costs
        base_total = costs.total_us if costs is not None else 0.0
        base_ops = dict(costs.ledger.operation_counts) if costs is not None else {}
        start = sim.now
        # The application writes one packet-sized buffer per send call.
        for _ in range(self.npackets):
            if costs is not None:
                costs.syscall("send_call", category="app")
                costs.charge_copy(self.packet_size, category="app")
            self.sender.send(self.packet_size)
        sim.run(until=start + timeout)
        duration = max((self.sender.complete_time or sim.now) - start, 1e-9)
        ops = {}
        cpu = 0.0
        if costs is not None:
            cpu = costs.total_us - base_total
            for op, count in costs.ledger.operation_counts.items():
                delta = count - base_ops.get(op, 0)
                if delta:
                    ops[op] = delta
        return ApiOverheadResult(
            variant=self.variant,
            packet_size=self.packet_size,
            packets_sent=self.sender.data_packets_sent,
            duration=duration,
            cpu_us_total=cpu,
            operation_counts=ops,
            wire_us_per_packet=_wire_us(self.packet_size, IP_HEADER_BYTES + TCP_HEADER_BYTES, link_rate_bps),
            completed=self.sender.done,
        )

    def close(self) -> None:
        """Release both endpoints."""
        self.sender.close()
        self.listener.close()
