"""Streaming layered audio/video server (§3.4, Figures 8-10).

The server encodes its stream in a small number of discrete layers, each
with a nominal transmission rate, and adapts which layer it sends based on
what the CM tells it about the path.  Two adaptation styles from the paper
are implemented, selected with ``mode``:

``"alf"``
    The ALF / request-callback style (Figure 8).  The server never runs a
    timer of its own: it keeps a few ``cm_request`` calls outstanding and
    transmits a packet whenever the CM grants one, choosing the layer from
    ``cm_query`` at that moment.  This sends "packets as rapidly as possible
    to allow its client to buffer more data" and reacts to every small rate
    change.

``"rate"``
    The rate-callback style (Figure 9).  The server runs its own clocked
    send loop at the current layer's nominal rate and only changes layer
    when the CM's ``cmapp_update`` callback (armed with ``cm_thresh``) tells
    it that conditions changed by more than the configured factors.

Both styles are user-space applications: they talk to the CM through
:class:`~repro.core.libcm.LibCM` and provide their own feedback by
processing the receiver's application-level acknowledgements
(:class:`~repro.transport.udp.feedback.AckReflector`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.libcm import LibCM
from ..core.query import QueryResult
from ..netsim.node import Host
from ..netsim.packet import Packet
from ..netsim.trace import RateTracker
from ..transport.udp.feedback import AppFeedbackTracker
from ..transport.udp.socket import UDPSocket

__all__ = ["LayeredStreamingServer", "DEFAULT_LAYER_RATES"]

#: Default layer rates in bytes/second (doubling layers, topping out around
#: the 2 MB/s the paper's vBNS path sustained in Figures 8/9).
DEFAULT_LAYER_RATES = (125_000, 250_000, 500_000, 1_000_000, 2_000_000)


class LayeredStreamingServer:
    """Adaptive layered media server transmitting to a single client."""

    def __init__(
        self,
        host: Host,
        client_addr: str,
        client_port: int,
        mode: str = "alf",
        layer_rates: Sequence[float] = DEFAULT_LAYER_RATES,
        packet_payload: int = 1000,
        libcm: Optional[LibCM] = None,
        thresh_down: float = 1.5,
        thresh_up: float = 1.5,
        pipeline_requests: int = 4,
        headroom: float = 1.0,
        rate_bin: float = 0.5,
    ):
        if mode not in ("alf", "rate"):
            raise ValueError(f"unknown adaptation mode {mode!r}")
        if not layer_rates:
            raise ValueError("need at least one layer")
        self.host = host
        self.sim = host.sim
        self.mode = mode
        self.layer_rates = sorted(float(r) for r in layer_rates)
        self.packet_payload = packet_payload
        self.pipeline_requests = pipeline_requests
        self.headroom = headroom

        self.libcm = libcm or LibCM(host)
        self.socket = UDPSocket(host)
        self.socket.connect(client_addr, client_port)
        self.socket.on_receive = self._handle_ack

        self.flow_id = self.libcm.cm_open(
            host.addr, client_addr, self.socket.local_port, client_port, "udp"
        )
        self.libcm.cm_register_send(self.flow_id, self._cmapp_send)
        self.libcm.cm_register_update(self.flow_id, self._cmapp_update)
        self.libcm.cm_thresh(self.flow_id, thresh_down, thresh_up)

        self.tracker = AppFeedbackTracker()
        self.current_layer = 0
        self._seq = 0
        self._running = False
        self._send_event = None
        self._requests_outstanding = 0

        # Instrumentation for Figures 8-10.  The transmission-rate series is
        # a bounded fixed-bin recorder (RateTracker is a facade over
        # repro.telemetry.recorders.FixedBinAccumulator since PR 4).
        self.tx_rate = RateTracker(bin_width=rate_bin)
        self.reported_rates: List[Tuple[float, float]] = []
        self.layer_history: List[Tuple[float, int]] = []
        self.packets_sent = 0
        self.bytes_sent = 0
        # Telemetry probe slot (repro.telemetry); None = compiled no-op.
        self._probe_chunk = None

    def attach_telemetry(self, hub) -> None:
        """Bind the ``app.chunk`` probe to a telemetry hub."""
        self._probe_chunk = hub.probe("app.chunk")

    # ====================================================================== #
    # Control                                                                #
    # ====================================================================== #
    def start(self) -> None:
        """Begin streaming (idempotent)."""
        if self._running:
            return
        self._running = True
        self.layer_history.append((self.sim.now, self.current_layer))
        if self.mode == "alf":
            self._top_up_requests()
        else:
            self._schedule_next_clocked_send()

    def stop(self) -> None:
        """Stop streaming and close the CM flow."""
        if not self._running:
            return
        self._running = False
        if self._send_event is not None:
            if self._send_event.pending:
                self._send_event.cancel()
            self._send_event = None

    @property
    def current_rate(self) -> float:
        """Nominal rate (bytes/s) of the layer currently being sent."""
        return self.layer_rates[self.current_layer]

    def layer_for_rate(self, rate: float) -> int:
        """Highest layer whose nominal rate fits under ``rate`` (with headroom)."""
        usable = rate * self.headroom
        chosen = 0
        for index, layer_rate in enumerate(self.layer_rates):
            if layer_rate <= usable:
                chosen = index
        return chosen

    # ====================================================================== #
    # ALF (request/callback) mode                                            #
    # ====================================================================== #
    def _top_up_requests(self) -> None:
        if not self._running:
            return
        while self._requests_outstanding < self.pipeline_requests:
            self._requests_outstanding += 1
            self.libcm.cm_request(self.flow_id)

    def _cmapp_send(self, flow_id: int) -> None:
        self._requests_outstanding = max(0, self._requests_outstanding - 1)
        if not self._running:
            self.libcm.cm_notify(flow_id, 0)
            return
        # Last-minute adaptation: pick the layer from the CM's current view.
        status = self.libcm.cm_query(flow_id)
        self.reported_rates.append((self.sim.now, status.rate))
        self._select_layer(status.rate)
        self._transmit_packet()
        if self.mode == "alf":
            self._top_up_requests()

    # ====================================================================== #
    # Rate-callback (clocked) mode                                           #
    # ====================================================================== #
    def _schedule_next_clocked_send(self) -> None:
        if not self._running:
            return
        interval = self.packet_payload / self.current_rate
        self._send_event = self.sim.schedule(interval, self._clocked_send)

    def _clocked_send(self) -> None:
        if not self._running:
            return
        self._transmit_packet()
        self._schedule_next_clocked_send()

    def _cmapp_update(self, flow_id: int, status: QueryResult) -> None:
        """Rate callback: the CM says conditions changed past the thresholds."""
        self.reported_rates.append((self.sim.now, status.rate))
        if self.mode == "rate":
            self._select_layer(status.rate)

    # ====================================================================== #
    # Common transmit / feedback paths                                       #
    # ====================================================================== #
    def _select_layer(self, rate: float) -> None:
        layer = self.layer_for_rate(rate)
        if layer != self.current_layer:
            self.current_layer = layer
            self.layer_history.append((self.sim.now, layer))

    def _transmit_packet(self) -> None:
        seq = self._seq
        self._seq += 1
        self.socket.send(
            self.packet_payload,
            headers={"seq": seq, "ts": self.sim.now, "layer": self.current_layer},
        )
        self.tracker.on_sent(seq, self.packet_payload)
        self.tx_rate.record(self.sim.now, self.packet_payload)
        self.packets_sent += 1
        self.bytes_sent += self.packet_payload
        probe = self._probe_chunk
        if probe is not None:
            probe(self.sim.now, {"seq": seq, "layer": self.current_layer,
                                 "size": self.packet_payload})
        if self.mode == "rate":
            # The clocked sender's transmissions are not matched to explicit
            # grants, so report them so the CM can charge the macroflow (the
            # kernel hook already does this for connected sockets; an
            # explicit cm_notify is *not* needed here).
            pass

    def _handle_ack(self, packet: Packet) -> None:
        headers = packet.headers
        now = self.sim.now
        # Applications computing their own RTT pay two gettimeofday calls
        # (one at send, one at ACK processing) — Table 1.
        if self.host.costs is not None:
            self.host.costs.charge_operation("gettimeofday", count=2, category="app")
        if "acked_packets" in headers and headers.get("acked_packets", 0) > 1:
            report = self.tracker.on_cumulative_ack(
                headers["acked_packets"],
                headers["acked_bytes"],
                headers.get("ts_echo"),
                now,
                highest_seq=headers.get("ack_seq"),
            )
        else:
            report = self.tracker.on_ack(headers.get("ack_seq"), headers.get("ts_echo"), now)
        if report is None:
            return
        self.libcm.cm_update(self.flow_id, report.nsent, report.nrecd, report.lossmode, report.rtt)

    # ====================================================================== #
    # Results                                                                #
    # ====================================================================== #
    def transmission_series(self) -> List[Tuple[float, float]]:
        """(time, transmission rate in bytes/s) series for plotting."""
        return self.tx_rate.series()

    def reported_rate_series(self) -> List[Tuple[float, float]]:
        """(time, CM-reported rate in bytes/s) series for plotting."""
        return list(self.reported_rates)

    def layers_sent(self) -> List[int]:
        """Sequence of layer indices over time (one entry per switch)."""
        return [layer for _t, layer in self.layer_history]
