"""Web-server-style file retrievals (the Figure 7 workload).

A client issues HTTP-like requests; for every request the server opens a
**new TCP connection** back to the client and ships the file, which is the
pattern the paper studies: "a client that sequentially fetches files from a
webserver with a new TCP connection each time loses its prior congestion
information, but with concurrent connections with the CM, the server is able
to use this information to start subsequent connections with more accurate
congestion windows."

The server can run either sender variant:

* ``"linux"`` — each connection is an independent :class:`RenoTCPSender`
  that slow-starts from scratch;
* ``"cm"`` — each connection is a :class:`CMTCPSender`; all of them join the
  client's macroflow, so later connections inherit the congestion window and
  RTT estimate of earlier ones.

Request transport is a single small UDP datagram (the request fits in one
packet, as an HTTP GET does), so a fetch costs: ½ RTT for the request,
1 RTT for the TCP handshake, then the transfer itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..netsim.node import Host
from ..netsim.packet import Packet
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener
from ..transport.udp.socket import UDPSocket

__all__ = ["FileServer", "WebClient", "FetchRecord"]

#: Size of the HTTP-like request datagram.
REQUEST_BYTES = 300


class FetchRecord:
    """Timing record for one client request."""

    def __init__(self, request_id: int, size: int, started_at: float):
        self.request_id = request_id
        self.size = size
        self.started_at = started_at
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        """True once every byte of the response has arrived at the client."""
        return self.completed_at is not None

    @property
    def duration(self) -> float:
        """Seconds from issuing the request to receiving the last byte."""
        if self.completed_at is None:
            return float("nan")
        return self.completed_at - self.started_at


class FileServer:
    """Serves fixed-size responses over per-request TCP connections."""

    def __init__(
        self,
        host: Host,
        port: int,
        variant: str = "cm",
        receive_window: int = 64 * 1024,
    ):
        if variant not in ("cm", "linux"):
            raise ValueError(f"unknown server variant {variant!r}")
        if variant == "cm" and host.cm is None:
            raise RuntimeError("a CM-enabled FileServer needs a Congestion Manager on its host")
        self.host = host
        self.variant = variant
        self.receive_window = receive_window
        self.socket = UDPSocket(host, local_port=port, charge_costs=False)
        self.socket.on_receive = self._handle_request
        self.requests_served = 0
        self.active_senders: List = []

    def close(self) -> None:
        """Stop accepting requests and tear down any active transfers."""
        self.socket.close()
        for sender in self.active_senders:
            sender.close()
        self.active_senders.clear()

    # -------------------------------------------------------------- internals
    def _handle_request(self, packet: Packet) -> None:
        headers = packet.headers
        size = int(headers.get("size", 0))
        reply_port = int(headers.get("reply_port", 0))
        request_id = headers.get("request_id")
        if size <= 0 or reply_port <= 0:
            return
        self.requests_served += 1
        sender_cls = CMTCPSender if self.variant == "cm" else RenoTCPSender
        sender = sender_cls(
            self.host,
            dst=packet.src,
            dport=reply_port,
            receive_window=self.receive_window,
        )
        self.active_senders.append(sender)

        def _finished(_when: float, sender=sender) -> None:
            sender.close()
            if sender in self.active_senders:
                self.active_senders.remove(sender)

        sender.on_complete = _finished
        sender.send(size)
        # The request_id travels implicitly: the client matches the response
        # connection by the port it told the server to connect back to.
        del request_id


class WebClient:
    """Issues requests to a :class:`FileServer` and times the responses."""

    def __init__(self, host: Host, server_addr: str, server_port: int):
        self.host = host
        self.sim = host.sim
        self.server_addr = server_addr
        self.server_port = server_port
        self.socket = UDPSocket(host, charge_costs=False)
        self.fetches: List[FetchRecord] = []
        self._listeners: Dict[int, TCPListener] = {}
        self._next_request_id = 0

    def fetch(self, size: int, on_complete: Optional[Callable[[FetchRecord], None]] = None) -> FetchRecord:
        """Request ``size`` bytes from the server; returns the timing record."""
        request_id = self._next_request_id
        self._next_request_id += 1
        reply_port = self.host.allocate_port()
        record = FetchRecord(request_id, size, self.sim.now)
        self.fetches.append(record)

        def _on_data(_nbytes: int, now: float, record=record, reply_port=reply_port) -> None:
            listener = self._listeners[reply_port]
            if listener.total_bytes_received >= record.size and record.completed_at is None:
                record.completed_at = now
                if on_complete is not None:
                    on_complete(record)

        listener = TCPListener(self.host, reply_port, on_data=_on_data)
        self._listeners[reply_port] = listener
        self.socket.sendto(
            REQUEST_BYTES,
            self.server_addr,
            self.server_port,
            headers={"size": size, "reply_port": reply_port, "request_id": request_id},
        )
        return record

    def close(self) -> None:
        """Release the request socket and all response listeners."""
        self.socket.close()
        for listener in self._listeners.values():
            listener.close()
        self._listeners.clear()

    def completed_fetches(self) -> List[FetchRecord]:
        """All fetches whose responses have fully arrived."""
        return [f for f in self.fetches if f.done]
