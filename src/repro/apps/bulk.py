"""ttcp-style bulk transfer driver (Figures 4 and 5).

The paper used long ``ttcp`` transfers (megabytes to gigabytes) to measure
(1) the long-term throughput of TCP/CM versus native TCP and (2) the CPU
overhead the CM adds.  :class:`BulkTransferApp` reproduces that: the
application writes ``nbuffers`` buffers of ``buffer_size`` bytes into a TCP
sender (paying the per-write system-call and copy costs on the sending
host), and the result records throughput and the sender-side CPU
utilisation split by category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..netsim.engine import Simulator
from ..netsim.node import Host
from ..transport.tcp import CMTCPSender, RenoTCPSender, TCPListener

__all__ = ["BulkTransferApp", "BulkResult"]


@dataclass
class BulkResult:
    """Outcome of one bulk transfer."""

    variant: str
    nbuffers: int
    buffer_size: int
    total_bytes: int
    duration: float
    throughput: float            # bytes per second (goodput)
    cpu_utilization: float       # fraction of the transfer the sender CPU was busy
    cpu_by_category: Dict[str, float] = field(default_factory=dict)
    retransmissions: int = 0
    timeouts: int = 0
    completed: bool = True

    @property
    def throughput_kbytes(self) -> float:
        """Throughput in kilobytes/second (the unit of the paper's Figure 4)."""
        return self.throughput / 1000.0


class BulkTransferApp:
    """Send a fixed number of fixed-size buffers over one TCP connection."""

    def __init__(
        self,
        sender_host: Host,
        receiver_host: Host,
        variant: str = "cm",
        port: int = 5001,
        buffer_size: int = 1448,
        receive_window: int = 64 * 1024,
        delayed_acks: bool = True,
    ):
        if variant not in ("cm", "linux"):
            raise ValueError(f"unknown bulk variant {variant!r}")
        self.sender_host = sender_host
        self.receiver_host = receiver_host
        self.variant = variant
        self.buffer_size = buffer_size
        self.listener = TCPListener(receiver_host, port, delayed_acks=delayed_acks)
        sender_cls = CMTCPSender if variant == "cm" else RenoTCPSender
        self.sender = sender_cls(
            sender_host, receiver_host.addr, port, receive_window=receive_window
        )
        # Per-transfer bookkeeping filled in by begin().
        self._baseline: Dict[str, float] = {}
        self._baseline_total = 0.0
        self._start = 0.0
        self._nbuffers = 0

    def begin(self, sim: Simulator, nbuffers: int) -> None:
        """Queue the whole transfer without running the simulator.

        Records the CPU-ledger baseline and writes the ``nbuffers`` buffers
        into the sender; :meth:`collect` computes the measurements once the
        caller has driven the simulator (the scenario runner owns the clock,
        so the write-then-run split lives here instead of :meth:`run`).
        """
        if nbuffers <= 0:
            raise ValueError("nbuffers must be positive")
        costs = self.sender_host.costs
        self._baseline = costs.ledger.snapshot() if costs is not None else {}
        self._baseline_total = costs.total_us if costs is not None else 0.0
        self._start = sim.now
        self._nbuffers = nbuffers
        # The application writes one buffer at a time; each write is a system
        # call plus a copy into the kernel (ttcp's inner loop).
        for _ in range(nbuffers):
            if costs is not None:
                costs.syscall("send_call", category="app")
                costs.charge_copy(self.buffer_size, category="app")
            self.sender.send(self.buffer_size)

    def collect(self, sim: Simulator) -> BulkResult:
        """Measurements for a transfer started with :meth:`begin`."""
        costs = self.sender_host.costs
        completed = self.sender.done
        end = self.sender.complete_time if completed else sim.now
        duration = max(end - self._start, 1e-9)
        cpu_total = (costs.total_us - self._baseline_total) if costs is not None else 0.0
        by_category: Dict[str, float] = {}
        if costs is not None:
            for category, value in costs.ledger.snapshot().items():
                delta = value - self._baseline.get(category, 0.0)
                if delta > 0:
                    by_category[category] = delta
        return BulkResult(
            variant=self.variant,
            nbuffers=self._nbuffers,
            buffer_size=self.buffer_size,
            total_bytes=self._nbuffers * self.buffer_size,
            duration=duration,
            throughput=self.sender.bytes_acked / duration,
            cpu_utilization=min(1.0, (cpu_total / 1e6) / duration),
            cpu_by_category=by_category,
            retransmissions=self.sender.retransmissions,
            timeouts=self.sender.timeouts,
            completed=completed,
        )

    def run(self, sim: Simulator, nbuffers: int, timeout: float = 3600.0) -> BulkResult:
        """Execute the transfer and return its measurements.

        The simulator is run until the transfer completes or ``timeout``
        simulated seconds elapse.
        """
        self.begin(sim, nbuffers)
        sim.run(until=self._start + timeout)
        return self.collect(sim)

    def close(self) -> None:
        """Release both endpoints."""
        self.sender.close()
        self.listener.close()
