"""Adaptive interactive audio (the paper's vat case study, §3.6 / Figure 2).

vat produces a constant-bit-rate audio stream (64 kbit/s) and cannot
down-sample, so the only way to make it network-friendly is to *preemptively
drop* packets so the offered load matches what the CM says the path can
carry.  The paper's architecture (Figure 2) is reproduced here:

    audio source (64 kbit/s) -> policer -> application buffer -> kernel
    (CM-paced UDP socket) -> network

* the **policer** performs long-term adaptation: it admits frames at no more
  than the CM-reported rate (a token bucket refilled at that rate) and
  drops the rest;
* the **application buffer** absorbs short-term variation caused by the
  congestion controller's probing; it is small and can be configured for
  drop-from-head (keep the freshest audio, the behaviour vat needs) or
  drop-tail;
* the **kernel buffer** is the CM-UDP socket's packet queue, drained by CM
  grants.

The receiver is a plain :class:`~repro.transport.udp.feedback.AckReflector`;
vat feeds its acknowledgements back to the CM with ``cm_update``, and learns
about rate changes through the CM rate callback.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.query import QueryResult
from ..netsim.node import Host
from ..netsim.packet import Packet
from ..transport.udp.feedback import AppFeedbackTracker
from ..transport.udp.udpcc import CMUDPSocket

__all__ = ["VatApplication", "Policer", "AudioBuffer"]

#: vat's PCM audio rate: 64 kbit/s.
AUDIO_RATE_BPS = 64_000
#: One audio frame every 20 ms -> 160 payload bytes, plus a 12-byte RTP header.
FRAME_INTERVAL = 0.020
FRAME_PAYLOAD = 172


class Policer:
    """Token-bucket admission control refilled at the CM-reported rate."""

    def __init__(
        self,
        initial_rate: float = FRAME_PAYLOAD / FRAME_INTERVAL,
        bucket_depth: float = 2 * FRAME_PAYLOAD,
    ):
        self.rate = float(initial_rate)
        self.bucket_depth = float(bucket_depth)
        self._tokens = float(bucket_depth)
        self._last_refill = 0.0
        self.admitted = 0
        self.dropped = 0

    def set_rate(self, rate: float) -> None:
        """Update the admission rate (bytes/second)."""
        self.rate = max(0.0, float(rate))

    def admit(self, nbytes: int, now: float) -> bool:
        """Return True if a frame of ``nbytes`` may pass at time ``now``."""
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self.bucket_depth, self._tokens + elapsed * self.rate)
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            self.admitted += 1
            return True
        self.dropped += 1
        return False


class AudioBuffer:
    """Small application-level frame buffer with a configurable drop policy."""

    DROP_FROM_HEAD = "drop-from-head"
    DROP_TAIL = "drop-tail"

    def __init__(self, capacity_frames: int = 8, policy: str = DROP_FROM_HEAD):
        if policy not in (self.DROP_FROM_HEAD, self.DROP_TAIL):
            raise ValueError(f"unknown drop policy {policy!r}")
        if capacity_frames < 1:
            raise ValueError("buffer capacity must be at least one frame")
        self.capacity = capacity_frames
        self.policy = policy
        self._frames: List[Tuple[int, float]] = []  # (seq, generated_at)
        self.drops = 0

    def __len__(self) -> int:
        return len(self._frames)

    def push(self, seq: int, generated_at: float) -> None:
        """Insert a frame, applying the drop policy when full."""
        if len(self._frames) >= self.capacity:
            self.drops += 1
            if self.policy == self.DROP_FROM_HEAD:
                self._frames.pop(0)
            else:
                return
        self._frames.append((seq, generated_at))

    def pop(self) -> Optional[Tuple[int, float]]:
        """Remove and return the oldest buffered frame."""
        if not self._frames:
            return None
        return self._frames.pop(0)


class VatApplication:
    """CBR interactive audio sender made adaptive through the CM."""

    def __init__(
        self,
        host: Host,
        client_addr: str,
        client_port: int,
        buffer_frames: int = 8,
        drop_policy: str = AudioBuffer.DROP_FROM_HEAD,
        kernel_queue_frames: int = 4,
        thresh_down: float = 1.25,
        thresh_up: float = 1.25,
    ):
        if host.cm is None:
            raise RuntimeError("VatApplication requires a Congestion Manager on the host")
        self.host = host
        self.sim = host.sim
        self.cm = host.cm

        self.socket = CMUDPSocket(host, charge_costs=True, max_queue_packets=kernel_queue_frames)
        self.socket.connect(client_addr, client_port)
        self.socket.on_receive = self._handle_ack
        self.flow_id = self.socket.flow_id

        # vat needed fewer than a hundred changed lines; the key ones are
        # registering for rate callbacks and reporting feedback.
        self.cm.cm_register_update(self.flow_id, self._cmapp_update)
        self.cm.cm_thresh(self.flow_id, thresh_down, thresh_up)

        self.policer = Policer()
        self.buffer = AudioBuffer(capacity_frames=buffer_frames, policy=drop_policy)
        self.tracker = AppFeedbackTracker()

        self._running = False
        self._frame_event = None
        self._drain_event = None
        self._seq = 0

        self.frames_generated = 0
        self.frames_sent = 0
        self.frames_acked = 0
        self.delivery_delays: List[float] = []
        self.rate_updates: List[Tuple[float, float]] = []

    # ====================================================================== #
    # Control                                                                #
    # ====================================================================== #
    def start(self) -> None:
        """Start generating audio frames."""
        if self._running:
            return
        self._running = True
        self._frame_event = self.sim.schedule(FRAME_INTERVAL, self._generate_frame)

    def stop(self) -> None:
        """Stop the audio source (pending buffered frames are abandoned)."""
        self._running = False
        if self._frame_event is not None:
            if self._frame_event.pending:
                self._frame_event.cancel()
            self._frame_event = None
        if self._drain_event is not None:
            # The drain handler does not clear this reference when it fires,
            # so the stored event may already have been dispatched.
            if self._drain_event.pending:
                self._drain_event.cancel()
            self._drain_event = None

    # ====================================================================== #
    # Audio pipeline                                                         #
    # ====================================================================== #
    def _generate_frame(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        self.frames_generated += 1
        seq = self._seq
        self._seq += 1
        if self.policer.admit(FRAME_PAYLOAD, now):
            self.buffer.push(seq, now)
            self._drain_buffer()
        self._frame_event = self.sim.schedule(FRAME_INTERVAL, self._generate_frame)

    def _drain_buffer(self) -> None:
        """Move frames from the application buffer into the kernel queue."""
        while len(self.buffer) and self.socket.queued_packets < self.socket.max_queue_packets:
            frame = self.buffer.pop()
            if frame is None:
                break
            seq, generated_at = frame
            self.socket.send(
                FRAME_PAYLOAD,
                headers={"seq": seq, "ts": self.sim.now, "generated_at": generated_at},
            )
            self.tracker.on_sent(seq, FRAME_PAYLOAD)
            self.frames_sent += 1
        drain_idle = self._drain_event is None or not self._drain_event.pending
        if len(self.buffer) and self._running and drain_idle:
            # The kernel queue is full; try again shortly (on-demand refill).
            self._drain_event = self.sim.schedule(FRAME_INTERVAL / 2.0, self._drain_buffer)

    # ====================================================================== #
    # Feedback and adaptation                                                #
    # ====================================================================== #
    def _handle_ack(self, packet: Packet) -> None:
        headers = packet.headers
        now = self.sim.now
        if self.host.costs is not None:
            self.host.costs.charge_operation("gettimeofday", count=2, category="app")
        report = self.tracker.on_ack(headers.get("ack_seq"), headers.get("ts_echo"), now)
        if report is None:
            return
        self.frames_acked += headers.get("acked_packets", 1)
        if report.rtt > 0:
            self.delivery_delays.append(report.rtt / 2.0)
        self.cm.cm_update(self.flow_id, report.nsent, report.nrecd, report.lossmode, report.rtt)

    def _cmapp_update(self, flow_id: int, status: QueryResult) -> None:
        """Rate callback: retune the policer to the newly reported rate."""
        self.rate_updates.append((self.sim.now, status.rate))
        self.policer.set_rate(status.rate)

    # ====================================================================== #
    # Results                                                                #
    # ====================================================================== #
    @property
    def frames_dropped_by_policer(self) -> int:
        """Frames preemptively dropped to match the available bandwidth."""
        return self.policer.dropped

    @property
    def frames_dropped_by_buffer(self) -> int:
        """Frames displaced from the application buffer (short-term variation)."""
        return self.buffer.drops

    def mean_delivery_delay(self) -> float:
        """Average one-way delay estimate of acknowledged frames."""
        if not self.delivery_delays:
            return 0.0
        return sum(self.delivery_delays) / len(self.delivery_delays)
