"""Microbenchmark harness for the engine / CM hot paths.

Each benchmark measures the optimised implementation and (where one exists)
the seed implementation from :mod:`repro.perf.legacy` on an identical
workload, reporting ops/sec, wall-clock and the speedup ratio.  Timings are
best-of-N wall clock via :func:`time.perf_counter` — "best of" because the
minimum is the least noisy estimator of the achievable time on a shared
machine.

The harness has two sizes: the default calibrated for a developer machine
and ``quick`` for CI smoke runs (same benchmarks, smaller workloads).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.manager import CongestionManager
from ..hostmodel.ledger import HostCosts
from ..netsim.engine import Simulator, Timer
from ..netsim.node import Host
from .legacy import LegacySimulator, LegacyTimer, legacy_dummynet_pair, unbatched_maybe_grant

__all__ = ["BenchResult", "run_benchmarks", "write_report", "bench_telemetry_overhead"]


@dataclass
class BenchResult:
    """Outcome of one benchmark (optimised vs. optional seed baseline)."""

    name: str
    ops: int
    wall_s: float
    baseline_wall_s: Optional[float] = None
    notes: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def baseline_ops_per_sec(self) -> Optional[float]:
        if self.baseline_wall_s is None or self.baseline_wall_s <= 0:
            return None
        return self.ops / self.baseline_wall_s

    @property
    def speedup(self) -> Optional[float]:
        """How many times faster than the seed implementation (>1 is faster)."""
        if self.baseline_wall_s is None or self.wall_s <= 0:
            return None
        return self.baseline_wall_s / self.wall_s

    def to_dict(self) -> dict:
        payload = {
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_sec": self.ops_per_sec,
        }
        if self.baseline_wall_s is not None:
            payload["baseline_wall_s"] = self.baseline_wall_s
            payload["baseline_ops_per_sec"] = self.baseline_ops_per_sec
            payload["speedup"] = self.speedup
        if self.notes:
            payload["notes"] = self.notes
        payload.update(self.extra)
        return payload


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return min(fn() for _ in range(max(1, repeats)))
    finally:
        if gc_was_enabled:
            gc.enable()


def _best_of_pair(fn: Callable[[], float], baseline_fn: Callable[[], float], repeats: int):
    """Best-of timing for an optimised/baseline pair, interleaving the runs.

    Alternating the two implementations repeat-by-repeat spreads warmup,
    allocator and frequency-scaling drift over both sides instead of
    crediting whichever ran second; GC is paused so collection pauses from
    one side's garbage don't land in the other side's timed region.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        walls = []
        baseline_walls = []
        for _ in range(max(1, repeats)):
            walls.append(fn())
            baseline_walls.append(baseline_fn())
            gc.collect()
        return min(walls), min(baseline_walls)
    finally:
        if gc_was_enabled:
            gc.enable()


def _noop(*_args) -> None:
    return None


# ====================================================================== #
# Event churn: schedule / cancel / dispatch                              #
# ====================================================================== #
#: Concurrent event chains in the churn benchmark — the steady-state heap
#: depth, comparable to the packets+timers a busy simulated host keeps in
#: flight.
_CHURN_CHAINS = 128


def _event_churn_workload(sim_cls, n: int) -> float:
    """Steady-state schedule/dispatch/cancel churn.

    ``_CHURN_CHAINS`` self-rescheduling callbacks model in-flight packets:
    every dispatch schedules its successor, and every fourth dispatch also
    schedules-then-cancels a decoy (the retracted-timeout pattern).  This is
    the shape of the real simulation load — a small rolling heap with heavy
    schedule/dispatch traffic — rather than one giant pre-built heap.
    """
    sim = sim_cls()
    schedule = sim.schedule
    count = [0]

    def chain() -> None:
        count[0] += 1
        if count[0] <= n:
            schedule(1e-4, chain)
            if not count[0] & 3:
                schedule(5e-4, _noop).cancel()

    for i in range(_CHURN_CHAINS):
        schedule(i * 1e-6, chain)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def bench_event_churn(n: int, repeats: int) -> BenchResult:
    wall, base = _best_of_pair(
        lambda: _event_churn_workload(Simulator, n),
        lambda: _event_churn_workload(LegacySimulator, n),
        repeats,
    )
    return BenchResult(
        name="event_churn",
        ops=n,
        wall_s=wall,
        baseline_wall_s=base,
        notes="steady-state dispatch+reschedule with 25% cancelled decoys; ops = chained dispatches",
    )


# ====================================================================== #
# Timer restart: the per-ACK RTO refresh pattern                         #
# ====================================================================== #
def _timer_restart_workload(sim_cls, timer_cls, n: int) -> float:
    sim = sim_cls()
    timer = timer_cls(sim, _noop)
    restart = timer.restart
    at = sim.at
    start = time.perf_counter()
    # One restart per simulated "ACK", arriving every 100us with an RTO of
    # 50ms: the deadline always moves later, which is what TCP does on every
    # ACK that advances the window.
    for i in range(n):
        at(i * 1e-4, restart, 0.05)
    sim.run()
    timer.cancel()
    return time.perf_counter() - start


def bench_timer_restart(n: int, repeats: int) -> BenchResult:
    wall, base = _best_of_pair(
        lambda: _timer_restart_workload(Simulator, Timer, n),
        lambda: _timer_restart_workload(LegacySimulator, LegacyTimer, n),
        repeats,
    )
    return BenchResult(
        name="timer_restart",
        ops=n,
        wall_s=wall,
        baseline_wall_s=base,
        notes="per-ACK RTO refresh; ops = timer restarts",
    )


# ====================================================================== #
# Grant dispatch: scheduler pop + window bookkeeping per MTU             #
# ====================================================================== #
def _build_grant_testbed(flows: int):
    sim = Simulator()
    host = Host(sim, "bench", "10.0.0.1", costs=HostCosts())
    cm = CongestionManager(host, feedback_watchdog=False)
    flow_ids: List[int] = []
    for i in range(flows):
        fid = cm.cm_open("10.0.0.1", "10.0.0.2", 10_000 + i, 80, "tcp")
        cm.cm_register_send(fid, _noop)
        flow_ids.append(fid)
    return sim, cm, flow_ids


def _grant_dispatch_workload(grant_fn, sim, cm, flow_ids, requests_per_flow: int) -> float:
    macroflow = cm.macroflow_of(flow_ids[0])
    scheduler = macroflow.scheduler
    enqueue = scheduler.enqueue
    for fid in flow_ids:
        for _ in range(requests_per_flow):
            enqueue(fid)
    total = len(flow_ids) * requests_per_flow
    # A window big enough for every request, so the measured region is pure
    # dispatch (no window stalls).
    macroflow.controller._cwnd = float((total + 8) * macroflow.mtu)
    start = time.perf_counter()
    grant_fn(macroflow)
    elapsed = time.perf_counter() - start
    # Drain the deferred cmapp_send callbacks and reset the grant state so
    # the next repetition starts identically.
    sim.run()
    macroflow.reserved_bytes = 0.0
    for flow in macroflow.flows.values():
        flow.granted_unnotified = 0
    return elapsed


def bench_grant_dispatch(flows: int, requests_per_flow: int, repeats: int) -> BenchResult:
    sim, cm, flow_ids = _build_grant_testbed(flows)
    wall, base = _best_of_pair(
        lambda: _grant_dispatch_workload(cm._maybe_grant, sim, cm, flow_ids, requests_per_flow),
        lambda: _grant_dispatch_workload(
            lambda mf: unbatched_maybe_grant(cm, mf), sim, cm, flow_ids, requests_per_flow
        ),
        repeats,
    )
    return BenchResult(
        name="grant_dispatch",
        ops=flows * requests_per_flow,
        wall_s=wall,
        baseline_wall_s=base,
        notes=f"{flows} flows x {requests_per_flow} pending requests; ops = grants issued",
    )


# ====================================================================== #
# End-to-end: one Figure-3 transfer                                      #
# ====================================================================== #
def bench_figure3_scenario(transfer_bytes: int, repeats: int) -> BenchResult:
    from ..experiments import figure3
    from ..experiments.topology import dummynet_pair
    from ..transport.tcp import CMTCPSender, TCPListener

    def once() -> float:
        testbed = dummynet_pair(loss_rate=0.01, seed=1)
        TCPListener(testbed.receiver, 5001)
        CongestionManager(testbed.sender)
        sender = CMTCPSender(
            testbed.sender, testbed.receiver.addr, 5001, receive_window=figure3.RECEIVE_WINDOW
        )
        sender.send(transfer_bytes)
        start = time.perf_counter()
        testbed.sim.run(until=900.0)
        elapsed = time.perf_counter() - start
        once.events = testbed.sim.events_dispatched
        return elapsed

    once.events = 0
    wall = _best_of(once, repeats)
    return BenchResult(
        name="figure3_scenario",
        ops=once.events,
        wall_s=wall,
        notes="TCP/CM transfer, 10 Mbps / 60 ms / 1% loss; ops = events dispatched",
    )


# ====================================================================== #
# Packet pool: segment construction via recycle vs seed allocation       #
# ====================================================================== #
def bench_packet_pool(n: int, repeats: int) -> BenchResult:
    """Cost of building one TCP data segment, pooled vs seed-allocated.

    The optimised side is the real ``data_segment`` builder handed a
    :class:`~repro.netsim.packet.PacketPool` — after warmup every build is
    a free-list pop plus slot assignments on the recycled
    :class:`TCPHeader`.  The baseline is the seed's builder preserved in
    :mod:`repro.perf.legacy`: a fresh dataclass instance plus a fresh
    4-entry header dict per segment.  This is the per-packet fixed cost
    every simulated transmission pays.
    """
    from ..netsim.packet import PacketPool
    from ..transport.tcp.segments import data_segment

    from .legacy import legacy_data_segment

    pool = PacketPool()

    def pooled_side() -> float:
        release = pool.release
        start = time.perf_counter()
        for index in range(n):
            packet = data_segment(
                "10.0.0.1", "10.0.0.2", 10_000, 80, index * 1448, 1448,
                index * 1e-4, pool=pool,
            )
            release(packet)
        return time.perf_counter() - start

    def legacy_side() -> float:
        start = time.perf_counter()
        for index in range(n):
            legacy_data_segment(
                "10.0.0.1", "10.0.0.2", 10_000, 80, index * 1448, 1448,
                index * 1e-4,
            )
        return time.perf_counter() - start

    wall, base = _best_of_pair(pooled_side, legacy_side, repeats)
    return BenchResult(
        name="packet_pool",
        ops=n,
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            "TCP data_segment via pool acquire/release vs the seed's "
            "dataclass + per-packet header dict; ops = segments built"
        ),
        extra={"pool_created": float(pool.created)},
    )


# ====================================================================== #
# Packet churn: end-to-end per-packet cost through link + IP + TCP       #
# ====================================================================== #
def bench_packet_churn(transfer_bytes: int, repeats: int) -> BenchResult:
    """Wall clock per simulated packet on a clean bulk TCP transfer.

    One Reno transfer over a fast, loss-free channel: nearly every
    dispatched event is packet machinery (serialise, propagate, deliver,
    demux, ACK), so the ``wall_us_per_packet`` extra is the end-to-end
    price of moving one packet through link + IP + transport.  The CI job
    summary prints it as the per-packet budget; ops = packets delivered
    across both directions.
    """
    from ..netsim import Channel, Host, Simulator
    from ..transport.tcp import RenoTCPSender, TCPListener

    delivered = [0]
    pool_created = [0]

    def once() -> float:
        sim = Simulator()
        sender_host = Host(sim, "snd", "10.0.0.1")
        receiver_host = Host(sim, "rcv", "10.0.0.2")
        channel = Channel(sim, sender_host, receiver_host, rate_bps=50e6,
                          one_way_delay=0.005, queue_limit=200, seed=1)
        TCPListener(receiver_host, 80)
        sender = RenoTCPSender(sender_host, receiver_host.addr, 80)
        sender.send(transfer_bytes)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        assert sender.done
        delivered[0] = (channel.forward.stats.delivered_packets
                        + channel.reverse.stats.delivered_packets)
        pool_created[0] = sim.packet_pool.created if sim.packet_pool else 0
        return elapsed

    wall = _best_of(once, repeats)
    per_packet_us = wall / delivered[0] * 1e6 if delivered[0] else 0.0
    return BenchResult(
        name="packet_churn",
        ops=delivered[0],
        wall_s=wall,
        notes=(
            "bulk Reno transfer, 50 Mbps / 10 ms RTT / no loss; ops = packets "
            "delivered in both directions; the whole run recycles "
            "pool_created pooled segments"
        ),
        extra={
            "wall_us_per_packet": per_packet_us,
            "pool_created": float(pool_created[0]),
        },
    )


# ====================================================================== #
# Scenario compile: declarative spec -> wired simulation                 #
# ====================================================================== #
def bench_scenario_build(builds: int, repeats: int) -> BenchResult:
    """Spec-compile + wiring cost versus the seed's hand-wired construction.

    The optimised side is what every experiment now does per trial
    (``build_testbed(dummynet_pair_spec(...))`` — validation, registry
    checks, host/channel wiring through the scenario compiler); the
    baseline is the pre-scenario hand-wired ``dummynet_pair`` preserved in
    :mod:`repro.perf.legacy`.  The ratio is the price of the declarative
    layer on the construction path, which trial caching and the actual
    simulation work are expected to dwarf.
    """
    from ..experiments.topology import build_testbed, dummynet_pair_spec

    def spec_side() -> float:
        start = time.perf_counter()
        for index in range(builds):
            build_testbed(dummynet_pair_spec(loss_rate=0.01), seed=index)
        return time.perf_counter() - start

    def legacy_side() -> float:
        start = time.perf_counter()
        for index in range(builds):
            legacy_dummynet_pair(loss_rate=0.01, seed=index)
        return time.perf_counter() - start

    wall, base = _best_of_pair(spec_side, legacy_side, repeats)
    return BenchResult(
        name="scenario_build",
        ops=builds,
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            "dummynet_pair testbed: declarative ScenarioSpec compile (memoized sealed "
            "pair specs + content-keyed validation cache + wiring) vs the seed's "
            "hand-wired construction; ops = testbeds built"
        ),
    )


# ====================================================================== #
# Graph compile: arbitrary topology -> routed simulation                 #
# ====================================================================== #
def bench_graph_build(builds: int, repeats: int) -> BenchResult:
    """Cost of compiling a mesh GraphSpec: validation + routing + wiring.

    The workload is a 6x4 grid (24 routers, 12 hosts hanging off the edge,
    46 links) — bigger than any bundled preset, so the all-pairs
    shortest-path computation and the route installation dominate.  There
    is no seed baseline (the seed repository could not express graphs);
    the row exists to catch regressions in the spec->simulation path that
    every scale sweep now pays per trial.
    """
    from ..scenario.builder import build
    from ..scenario.spec import GraphLinkSpec, GraphNodeSpec, GraphSpec, ScenarioSpec

    rows, cols = 4, 6
    nodes = [GraphNodeSpec(name=f"r{r}_{c}", kind="router")
             for r in range(rows) for c in range(cols)]
    links = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                links.append(GraphLinkSpec(a=f"r{r}_{c}", b=f"r{r}_{c + 1}",
                                           rate_bps=10e6, delay=0.005))
            if r + 1 < rows:
                links.append(GraphLinkSpec(a=f"r{r}_{c}", b=f"r{r + 1}_{c}",
                                           rate_bps=10e6, delay=0.005))
    for r in range(rows):
        nodes.append(GraphNodeSpec(name=f"h{r}_w"))
        nodes.append(GraphNodeSpec(name=f"h{r}_e"))
        links.append(GraphLinkSpec(a=f"h{r}_w", b=f"r{r}_0", rate_bps=100e6, delay=0.001))
        links.append(GraphLinkSpec(a=f"h{r}_e", b=f"r{r}_{cols - 1}", rate_bps=100e6, delay=0.001))
    for c in range(cols):
        nodes.append(GraphNodeSpec(name=f"h{c}_n"))
        links.append(GraphLinkSpec(a=f"h{c}_n", b=f"r0_{c}", rate_bps=100e6, delay=0.001))
    spec = ScenarioSpec(name="bench_graph", graph=GraphSpec(nodes=nodes, links=links),
                        metrics=("links",))
    n_nodes, n_links = len(nodes), len(links)

    def side() -> float:
        start = time.perf_counter()
        for index in range(builds):
            build(spec, seed=index)
        return time.perf_counter() - start

    wall = _best_of(side, repeats)
    return BenchResult(
        name="graph_build",
        ops=builds,
        wall_s=wall,
        notes=(
            f"{n_nodes}-node / {n_links}-link grid mesh: GraphSpec validation + "
            "all-pairs shortest-path routing + host/link wiring; ops = graphs built"
        ),
        extra={"nodes": float(n_nodes), "links": float(n_links)},
    )


# ====================================================================== #
# Workload churn: runtime app attach/detach through the event engine     #
# ====================================================================== #
def bench_workload_churn(duration: float, repeats: int) -> BenchResult:
    """Throughput of the stochastic-workload attach/detach machinery.

    A high-rate ``tcp_flows`` generator churns small TCP/CM transfers over
    a fast two-host path: every arrival validates app params, constructs a
    listener + sender, opens a CM flow into the shared macroflow; every
    reap closes them again.  ops = attach/detach cycles completed (started
    flows), so the row tracks the fixed per-flow machinery cost rather
    than raw packet throughput.
    """
    from ..scenario.runner import run as run_scenario
    from ..scenario.spec import HostSpec, LinkSpec, ScenarioSpec, StopSpec, WorkloadSpec

    spec = ScenarioSpec(
        name="bench_workload_churn",
        hosts=[HostSpec(name="src", cm=True), HostSpec(name="dst")],
        links=[LinkSpec(a="src", b="dst", rate_bps=50e6, delay=0.002, queue_limit=200)],
        workloads=[WorkloadSpec(
            kind="tcp_flows", host="src", peer="dst", label="churn",
            params={"rate": 40.0, "min_bytes": 4_000, "pareto_alpha": 2.0,
                    "max_bytes": 40_000, "max_active": 64, "reap_interval": 0.05},
        )],
        stop=StopSpec(until=duration),
        metrics=("links",),
        seed=3,
    )
    flows = [0]

    def once() -> float:
        start = time.perf_counter()
        result = run_scenario(spec, seed=3)
        elapsed = time.perf_counter() - start
        metrics = result.workload("churn")["metrics"]
        flows[0] = metrics["flows_started"]
        return elapsed

    wall = _best_of(once, repeats)
    return BenchResult(
        name="workload_churn",
        ops=flows[0],
        wall_s=wall,
        notes=(
            f"tcp_flows generator at 40 flows/s over a 50 Mbps path for {duration:.0f}s "
            "simulated; ops = flows attached+detached through the event engine"
        ),
    )


# ====================================================================== #
# Link realism: RED gate and Gilbert-Elliott loss on the packet path     #
# ====================================================================== #
def _red_queue_workload(n: int, aqm) -> float:
    """Offer ``n`` packets through one Link at 2x its drain rate.

    The overload keeps the queue occupancy inside the RED threshold band
    for most of the run, so the timed region exercises the EWMA update and
    the mark-or-drop gate on (nearly) every arrival rather than the
    below-``min_th`` fast accept.
    """
    from ..netsim.link import Link
    from ..netsim.packet import PROTO_UDP, Packet

    sim = Simulator()
    link = Link(sim, rate_bps=8e6, delay=0.001, queue_limit=1000, seed=7,
                aqm=aqm)
    link.attach(_noop)
    offered = [0]
    gap = 0.0005  # 1000-byte packets drain in 1 ms: 2x overload

    def offer() -> None:
        if offered[0] < n:
            offered[0] += 1
            link.send(Packet(src="a", dst="b", sport=1, dport=2,
                             protocol=PROTO_UDP, payload_bytes=1000))
            sim.schedule(gap, offer)

    offer()
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def bench_red_queue(n: int, repeats: int) -> BenchResult:
    """Per-arrival cost of the RED gate versus plain drop-tail.

    Same link, same 2x-overload arrival pattern; the only difference is the
    ``aqm`` block, so ``speedup`` reads as the *overhead factor* of the
    EWMA + gate logic per packet (>1 = RED costs that much over drop-tail).
    """
    # Drop-tail is the timed side, RED the "baseline", so speedup follows
    # the telemetry_overhead convention: RED wall over drop-tail wall.
    wall, base = _best_of_pair(
        lambda: _red_queue_workload(n, None),
        lambda: _red_queue_workload(
            n, {"kind": "red", "min_th": 5, "max_th": 50, "max_p": 0.1}),
        repeats,
    )
    return BenchResult(
        name="red_queue",
        ops=n,
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            "RED (EWMA + count-corrected gate) vs drop-tail on a 2x-overloaded "
            "link; ops = packets offered, speedup = overhead factor of the gate"
        ),
    )


def bench_gilbert_elliott_churn(duration: float, repeats: int) -> BenchResult:
    """End-to-end cost of the stateful burst-loss model under flow churn.

    A ``tcp_flows`` generator churns TCP/CM transfers across a hop whose
    losses come from the two-state Markov model; the baseline is the same
    scenario with Bernoulli loss at the model's long-run rate.  The per-
    arrival state advance rides the same private-RNG draw path as Bernoulli
    loss, so ``speedup`` (GE over Bernoulli) should sit near 1.0 — the row
    exists to catch a regression that makes correlated loss expensive.
    """
    from ..scenario.runner import run as run_scenario
    from ..scenario.spec import HostSpec, LinkSpec, ScenarioSpec, StopSpec, WorkloadSpec

    def spec_for(loss_kwargs: dict) -> ScenarioSpec:
        return ScenarioSpec(
            name="bench_ge_churn",
            hosts=[HostSpec(name="src", cm=True), HostSpec(name="dst")],
            links=[LinkSpec(a="src", b="dst", rate_bps=20e6, delay=0.003,
                            queue_limit=100, **loss_kwargs)],
            workloads=[WorkloadSpec(
                kind="tcp_flows", host="src", peer="dst", label="churn",
                params={"rate": 20.0, "min_bytes": 4_000, "pareto_alpha": 2.0,
                        "max_bytes": 40_000, "max_active": 32},
            )],
            stop=StopSpec(until=duration),
            metrics=("links",),
            seed=5,
        )

    # 2% long-run loss either way: p_gb/(p_gb+p_bg) = 0.01/0.5 with the
    # 0/1 state loss defaults.
    ge_spec = spec_for({"loss": {"kind": "gilbert_elliott",
                                 "p_good_bad": 0.0102, "p_bad_good": 0.5}})
    bernoulli_spec = spec_for({"loss_rate": 0.02})
    packets = [0]

    def run_spec(spec: ScenarioSpec) -> float:
        start = time.perf_counter()
        result = run_scenario(spec, seed=5)
        elapsed = time.perf_counter() - start
        hop = result.links[0]
        packets[0] = (hop["delivered_packets"] + hop["dropped_random"]
                      + hop["dropped_overflow"])
        return elapsed

    wall, base = _best_of_pair(
        lambda: run_spec(bernoulli_spec),
        lambda: run_spec(ge_spec),
        repeats,
    )
    return BenchResult(
        name="gilbert_elliott_churn",
        ops=packets[0],
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            f"tcp_flows churn across a 2% GE burst-lossy hop for {duration:.0f}s "
            "simulated vs Bernoulli at the same long-run rate; ops = packets "
            "through the lossy hop, speedup = overhead factor of the Markov state"
        ),
    )


# ====================================================================== #
# Telemetry overhead: probes-off vs probes-on on one scenario            #
# ====================================================================== #
def bench_telemetry_overhead(duration: float, repeats: int) -> BenchResult:
    """The unified telemetry layer's cost on a dumbbell bulk-transfer run.

    The probes-off side runs the scenario with no telemetry block — every
    probe slot stays ``None`` (the compiled no-op), which is the default
    state of every experiment in the repository; its wall clock should sit
    within noise of the pre-telemetry code (cross-check the unchanged
    ``figure3_scenario`` row against BENCH_PR3.json for the regression
    story).  The probes-on side attaches the full catalog: all event probes
    recorded into a bounded ring plus every periodic sampler at 100 ms.
    The ``speedup`` column therefore reads as the *overhead factor* of
    probes-on over probes-off (>1 = instrumentation costs that much).
    """
    from ..scenario.runner import run as run_scenario
    from ..scenario.spec import (
        AppSpec,
        DumbbellSpec,
        ScenarioSpec,
        StopSpec,
        TelemetrySpec,
    )
    from ..telemetry.probes import EVENT_NAMES

    def spec_for(telemetry) -> ScenarioSpec:
        apps = []
        for index in range(2):
            apps.append(AppSpec(app="tcp_listener", host=f"receiver{index}",
                                label=f"listener{index}", params={"port": 5001}))
            apps.append(AppSpec(
                app="tcp_sender", host=f"sender{index}", peer=f"receiver{index}",
                label=f"flow{index}",
                params={"variant": "cm", "port": 5001, "transfer_bytes": 50_000_000,
                        "receive_window": 128 * 1024},
            ))
        return ScenarioSpec(
            name="bench_telemetry",
            dumbbell=DumbbellSpec(n_pairs=2, bottleneck_bps=8e6, bottleneck_delay=0.010,
                                  queue_limit=40, cm_senders=(0, 1)),
            apps=apps,
            stop=StopSpec(until=duration),
            telemetry=telemetry,
            metrics=("links",),
            seed=3,
        )

    probes_on_spec = spec_for(TelemetrySpec(
        sample_interval=0.1,
        samplers=("macroflows", "schedulers", "links", "apps"),
        events=EVENT_NAMES,
    ))
    probes_off_spec = spec_for(None)
    delivered = [0]

    def one_run(spec) -> float:
        start = time.perf_counter()
        result = run_scenario(spec, seed=3)
        elapsed = time.perf_counter() - start
        delivered[0] = sum(entry["delivered_packets"] for entry in result.links)
        return elapsed

    wall, base = _best_of_pair(
        lambda: one_run(probes_off_spec),
        lambda: one_run(probes_on_spec),
        repeats,
    )
    return BenchResult(
        name="telemetry_overhead",
        ops=delivered[0],
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            f"dumbbell bulk scenario, {duration:.0f}s simulated: probes-off (no telemetry "
            "block, every probe slot a compiled no-op) vs probes-on (all event probes + "
            "all samplers at 100 ms); 'speedup' = probes-on wall / probes-off wall, i.e. "
            "the instrumentation overhead factor; ops = packets delivered"
        ),
        extra={
            "probes_off_wall_s": wall,
            "probes_on_wall_s": base,
            "overhead_ratio": base / wall if wall > 0 else 0.0,
        },
    )


# ====================================================================== #
# Result store: BENCH-report ingestion throughput                        #
# ====================================================================== #
def bench_result_store(reports: int, repeats: int) -> BenchResult:
    """Ingestion cost of the sqlite result store (PR 6's fleet backbone).

    Each iteration ingests ``reports`` synthetic BENCH-shaped reports (9
    rows each, mirroring the real harness output) into a fresh in-memory
    store — the fixed per-artifact cost the CI perf-regression job and
    every ``--store`` flag pay.  ops = benchmark rows landed.
    """
    from ..results.store import ResultStore

    row_names = [f"bench_{index}" for index in range(9)]

    def report_for(index: int) -> dict:
        return {
            "meta": {"label": f"BENCH_PR{index + 1}", "quick": False, "python": "3.11.7",
                     "implementation": "CPython", "platform": "bench", "timestamp": ""},
            "benchmarks": {
                name: {"ops": 1000 + index, "wall_s": 0.5, "ops_per_sec": 2000.0 + index,
                       "baseline_wall_s": 1.0, "baseline_ops_per_sec": 1000.0,
                       "speedup": 2.0, "notes": "synthetic"}
                for name in row_names
            },
        }

    payloads = [report_for(index) for index in range(reports)]
    total_rows = reports * len(row_names)

    def once() -> float:
        store = ResultStore(":memory:")
        start = time.perf_counter()
        for payload in payloads:
            store.ingest_bench_report(payload)
        elapsed = time.perf_counter() - start
        store.close()
        return elapsed

    wall = _best_of(once, repeats)
    return BenchResult(
        name="result_store_ingest",
        ops=total_rows,
        wall_s=wall,
        notes=(
            f"{reports} synthetic BENCH reports x {len(row_names)} rows into an in-memory "
            "sqlite store; ops = benchmark rows ingested"
        ),
    )


# ====================================================================== #
# Parallel experiment runner: trial sharding across a process pool       #
# ====================================================================== #
def bench_experiments_parallel(
    n_seeds: int, transfer_bytes: int, jobs: int, repeats: int
) -> BenchResult:
    """Figure-3 trial shards at ``jobs`` workers vs. the serial (jobs=1) path.

    The baseline is the exact same trial list executed serially in-process,
    so the speedup column reads as the pool's scaling factor; on a single
    core it hovers around (or slightly below) 1.0 — the fork/IPC overhead —
    and approaches the worker count on multi-core machines.
    """
    from ..experiments import figure3
    from ..experiments.parallel import time_trials

    specs = figure3.trials(
        loss_rates=(0.01,), transfer_bytes=transfer_bytes, seeds=tuple(range(1, n_seeds + 1))
    )
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        # More workers than cores: the pool cannot scale, it can only add
        # fork/IPC overhead, and a "speedup" column would read as a parallel
        # scaling number it is not.  Measure the pool wall honestly, skip
        # the serial comparison, and say why in the row itself.
        wall = _best_of(lambda: time_trials(specs, jobs=jobs), repeats)
        base = None
        comparison = (f"jobs={jobs} > cpu_count={cpus}: serial baseline skipped — "
                      "a ratio here would measure pool overhead, not scaling")
    else:
        wall, base = _best_of_pair(
            lambda: time_trials(specs, jobs=jobs),
            lambda: time_trials(specs, jobs=1),
            repeats,
        )
        comparison = f"jobs={jobs} pool vs jobs=1 serial on cpu_count={cpus}"
    return BenchResult(
        name="experiments_parallel",
        ops=len(specs),
        wall_s=wall,
        baseline_wall_s=base,
        notes=f"{len(specs)} figure3 trials, {comparison}; ops = trials",
        extra={"jobs": float(jobs), "cpu_count": float(cpus)},
    )


# ====================================================================== #
# Sharded engine: conservative-lookahead multi-process graph runs        #
# ====================================================================== #
def _barbell_spec(hosts_per_cluster: int, flows_per_cluster: int,
                  transfer_bytes: int, horizon: float):
    """Two host clusters joined by one high-delay trunk (the natural cut).

    Traffic is intra-cluster TCP/CM transfers (each cluster's flows stay on
    its own shard) plus one cross-trunk flow so the boundary path is
    exercised; the idle hosts are deliberate — the sharded engine exists
    for big graphs, so the row should pay big-graph build and routing
    costs, not just flow work.
    """
    from ..scenario.spec import (AppSpec, GraphLinkSpec, GraphNodeSpec, GraphSpec,
                                 ScenarioSpec, StopSpec)

    nodes = [GraphNodeSpec(name="r0", kind="router"), GraphNodeSpec(name="r1", kind="router")]
    links = [GraphLinkSpec(a="r0", b="r1", rate_bps=100e6, delay=0.01, queue_limit=200)]
    for cluster in range(2):
        for i in range(hosts_per_cluster):
            name = f"c{cluster}h{i}"
            sender = i < flows_per_cluster or i == 2 * flows_per_cluster
            nodes.append(GraphNodeSpec(name=name, cm=sender, costs=False))
            links.append(GraphLinkSpec(a=name, b=f"r{cluster}", rate_bps=50e6,
                                       delay=0.002, queue_limit=100))
    apps = []
    for cluster in range(2):
        for i in range(flows_per_cluster):
            receiver = f"c{cluster}h{flows_per_cluster + i}"
            apps.append(AppSpec(
                app="tcp_listener", host=receiver,
                label=f"c{cluster}listener{i}", params={"port": 5001 + i}))
            apps.append(AppSpec(
                app="tcp_sender", host=f"c{cluster}h{i}", peer=receiver,
                label=f"c{cluster}flow{i}",
                params={"variant": "cm", "port": 5001 + i,
                        "transfer_bytes": transfer_bytes},
            ))
    trunk_receiver = f"c1h{2 * flows_per_cluster}"
    apps.append(AppSpec(app="tcp_listener", host=trunk_receiver,
                        label="trunk_listener", params={"port": 5999}))
    apps.append(AppSpec(
        app="tcp_sender", host=f"c0h{2 * flows_per_cluster}",
        peer=trunk_receiver, label="trunk_flow",
        params={"variant": "cm", "port": 5999, "transfer_bytes": transfer_bytes},
    ))
    return ScenarioSpec(
        name="shard_barbell",
        graph=GraphSpec(nodes=nodes, links=links),
        apps=apps,
        stop=StopSpec(until=horizon),
        metrics=("apps",),
        seed=7,
    )


def _sharded_vs_single(spec, shards: int, repeats: int):
    """(wall, baseline_wall_or_None, note) for a shards=N vs shards=1 pair.

    On a machine with fewer cores than shards the single-process comparison
    is skipped — N workers time-slicing one core measure barrier/IPC
    overhead, and reporting that as a scaling factor would be exactly the
    misleading row this harness refuses to produce.
    """
    from ..scenario.runner import run

    def timed(shard_count: int) -> float:
        start = time.perf_counter()
        run(spec, seed=spec.seed, shards=shard_count)
        return time.perf_counter() - start

    cpus = os.cpu_count() or 1
    if shards > cpus:
        wall = _best_of(lambda: timed(shards), repeats)
        return wall, None, (
            f"shards={shards} > cpu_count={cpus}: single-process baseline "
            "skipped — a ratio here would measure barrier/IPC overhead, not scaling")
    wall, base = _best_of_pair(lambda: timed(shards), lambda: timed(1), repeats)
    return wall, base, f"shards={shards} workers vs single-process on cpu_count={cpus}"


def bench_shard_scaling(shards: int, repeats: int) -> BenchResult:
    """Sharded vs single-process wall clock on the mesh preset.

    Byte-identical output is pinned elsewhere (goldens + shard-smoke CI);
    this row tracks what the determinism costs or buys in wall-clock on a
    *small* graph, where barrier overhead is at its most visible.
    """
    from ..scenario.presets import get_preset

    spec = get_preset("mesh_macroflow_sharing")
    wall, base, comparison = _sharded_vs_single(spec, shards, repeats)
    return BenchResult(
        name="shard_scaling",
        ops=1,
        wall_s=wall,
        baseline_wall_s=base,
        notes=f"mesh_macroflow_sharing preset, {comparison}; ops = runs",
        extra={"shards": float(shards), "cpu_count": float(os.cpu_count() or 1)},
    )


def bench_scale_sharded(hosts_per_cluster: int, flows_per_cluster: int,
                        transfer_bytes: int, horizon: float, shards: int,
                        repeats: int) -> BenchResult:
    """Sharded vs single-process on a big two-cluster barbell graph.

    The workload the sharded engine was built for: a graph large enough
    that one process is the bottleneck.  On a multi-core runner the speedup
    column is the real scaling factor at ``shards=2``; single-core runners
    record the sharded wall only (see :func:`_sharded_vs_single`).
    """
    spec = _barbell_spec(hosts_per_cluster, flows_per_cluster, transfer_bytes, horizon)
    total_hosts = 2 * hosts_per_cluster
    wall, base, comparison = _sharded_vs_single(spec, shards, repeats)
    return BenchResult(
        name="scale_sharded",
        ops=total_hosts,
        wall_s=wall,
        baseline_wall_s=base,
        notes=(f"{total_hosts}-host barbell, {2 * flows_per_cluster + 1} TCP/CM "
               f"flows, {comparison}; ops = hosts simulated"),
        extra={"shards": float(shards), "cpu_count": float(os.cpu_count() or 1),
               "hosts": float(total_hosts)},
    )


# ====================================================================== #
# Service control plane: job throughput through the in-process router    #
# ====================================================================== #
def bench_service_submit(jobs: int, repeats: int) -> BenchResult:
    """Jobs/s through the service stack vs. direct ``scenario.run`` calls.

    The service side submits ``jobs`` short scenarios through the JSON
    router (``POST /v1/jobs``) into a 4-slot :class:`JobManager` and waits
    for the fleet to drain — dispatch, validation, worker hand-off, the
    per-job control tick and result collection all included.  The baseline
    runs the identical (spec, seed) list as plain in-process ``run()``
    calls, so the speedup column reads as the control plane's overhead
    (expected near, and with multiple cores idle-waiting below, 1.0 — the
    simulations themselves dominate).  ops = jobs completed.
    """
    import json as _json

    from ..scenario.presets import get_preset
    from ..scenario.runner import run
    from ..service.api import ServiceApi
    from ..service.jobs import JobManager

    spec = get_preset("web_vat_mix")
    spec.stop.until = 1.0  # short horizon: measure the control plane, not the sim
    spec.validate()
    seeds = list(range(1, jobs + 1))
    body = _json.dumps({"spec": spec.to_dict(), "seeds": seeds}).encode()

    def service_side() -> float:
        manager = JobManager(slots=4)
        api = ServiceApi(manager)
        start = time.perf_counter()
        response = api.dispatch("POST", "/v1/jobs", body)
        if response.status != 201:
            raise RuntimeError(f"bench submit failed: {response.payload}")
        for entry in response.json()["jobs"]:
            manager.wait(entry["id"], timeout=300.0)
        elapsed = time.perf_counter() - start
        manager.shutdown()
        return elapsed

    def baseline_side() -> float:
        start = time.perf_counter()
        for seed in seeds:
            run(spec, seed=seed)
        return time.perf_counter() - start

    wall, base = _best_of_pair(service_side, baseline_side, repeats)
    return BenchResult(
        name="service_submit",
        ops=jobs,
        wall_s=wall,
        baseline_wall_s=base,
        notes=(
            f"{jobs} web_vat_mix jobs via POST /v1/jobs into a 4-slot JobManager vs "
            "the same (spec, seed) list as direct scenario.run calls; ops = jobs"
        ),
        extra={"slots": 4.0},
    )


# ====================================================================== #
# Driver                                                                 #
# ====================================================================== #
#: Workload sizes: (event_churn_n, timer_restart_n, grant_flows,
#: grant_requests_per_flow, figure3_bytes, parallel_seeds,
#: parallel_transfer_bytes, scenario_builds, telemetry_duration,
#: graph_builds, churn_duration, store_reports, packet_pool_n,
#: packet_churn_bytes, service_jobs, shard_hosts_per_cluster,
#: shard_flows_per_cluster, shard_transfer_bytes, shard_horizon,
#: red_queue_n, ge_churn_duration, repeats)
_FULL = (200_000, 200_000, 64, 256, 500_000, 8, 200_000, 2_000, 10.0, 300, 5.0, 200,
         500_000, 5_000_000, 8, 512, 8, 400_000, 3.0, 20_000, 5.0, 5)
_QUICK = (30_000, 30_000, 32, 64, 100_000, 4, 60_000, 400, 4.0, 60, 2.0, 40,
          100_000, 1_000_000, 4, 64, 4, 150_000, 2.0, 4_000, 2.0, 3)


def run_benchmarks(quick: bool = False, label: Optional[str] = None) -> dict:
    """Run every benchmark and return the JSON-ready report dict.

    ``label`` defaults to :func:`repro.results.labels.derive_bench_label`
    (``REPRO_BENCH_LABEL`` env var, else the next PR number after the
    checked-in ``BENCH_PR<k>.json`` history) so neither callers nor the CI
    workflow hard-code a PR number.
    """
    from ..results.labels import derive_bench_label

    if label is None:
        label = derive_bench_label()
    sizes = _QUICK if quick else _FULL
    (churn_n, timer_n, grant_flows, grant_reqs, fig3_bytes, par_seeds, par_bytes,
     scenario_builds, telemetry_duration, graph_builds, churn_duration, store_reports,
     packet_pool_n, packet_churn_bytes, service_jobs, shard_hosts, shard_flows,
     shard_bytes, shard_horizon, red_queue_n, ge_duration, repeats) = sizes
    pool_jobs = max(2, min(4, os.cpu_count() or 1))
    results = [
        bench_event_churn(churn_n, repeats),
        bench_timer_restart(timer_n, repeats),
        bench_grant_dispatch(grant_flows, grant_reqs, repeats),
        bench_figure3_scenario(fig3_bytes, repeats),
        bench_packet_pool(packet_pool_n, repeats),
        bench_packet_churn(packet_churn_bytes, repeats),
        bench_scenario_build(scenario_builds, repeats),
        bench_graph_build(graph_builds, repeats),
        bench_workload_churn(churn_duration, repeats),
        bench_red_queue(red_queue_n, repeats),
        bench_gilbert_elliott_churn(ge_duration, repeats),
        bench_telemetry_overhead(telemetry_duration, repeats),
        bench_result_store(store_reports, repeats),
        bench_service_submit(service_jobs, min(repeats, 2)),
        bench_experiments_parallel(par_seeds, par_bytes, pool_jobs, min(repeats, 2)),
        bench_shard_scaling(2, min(repeats, 2)),
        bench_scale_sharded(shard_hosts, shard_flows, shard_bytes, shard_horizon,
                            2, min(repeats, 2)),
    ]
    from ..experiments.artifacts import git_revision

    return {
        "meta": {
            "label": label,
            "quick": quick,
            "git_revision": git_revision(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "benchmarks": {result.name: result.to_dict() for result in results},
    }


def write_report(report: dict, path: str) -> None:
    """Write the report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict) -> str:
    """Human-readable one-line-per-benchmark summary."""
    lines = [f"perf report {report['meta']['label']} (quick={report['meta']['quick']})"]
    for name, payload in sorted(report["benchmarks"].items()):
        line = f"  {name:<18} {payload['ops_per_sec']:>14,.0f} ops/s  wall {payload['wall_s'] * 1e3:8.2f} ms"
        speedup = payload.get("speedup")
        if speedup is not None:
            line += f"  x{speedup:.2f} vs seed"
        lines.append(line)
    return "\n".join(lines)
