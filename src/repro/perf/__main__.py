"""Command-line entry point: ``PYTHONPATH=src python -m repro.perf``.

CI runs ``--quick`` and uploads the JSON artifact; developers run the full
size before/after touching a hot path.  The report label is derived
(``REPRO_BENCH_LABEL`` env var, else the next PR number after the
checked-in ``BENCH_PR<k>.json`` history) so neither this module nor the CI
workflow needs editing every PR; ``--store`` additionally ingests the
report into a :class:`repro.results.ResultStore` database.
"""

from __future__ import annotations

import argparse
import sys

from ..results.labels import derive_bench_label
from .harness import format_report, run_benchmarks, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulation engine and CM grant hot paths.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for CI smoke runs"
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the JSON report (default: <label>.json)",
    )
    parser.add_argument(
        "--label", default=None,
        help="label recorded in the report metadata (default: derived from the "
             "REPRO_BENCH_LABEL env var or the checked-in BENCH_PR<k>.json history)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DB",
        help="also ingest the report into this sqlite result store",
    )
    args = parser.parse_args(argv)

    label = args.label if args.label is not None else derive_bench_label()
    output = args.output if args.output is not None else f"{label}.json"

    # Fail before spending minutes benchmarking if the report can't be written.
    try:
        with open(output, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        parser.error(f"cannot write --output {output}: {exc}")

    report = run_benchmarks(quick=args.quick, label=label)
    write_report(report, output)
    print(format_report(report))
    print(f"wrote {output}")
    if args.store:
        from ..results.store import ResultStore

        with ResultStore(args.store) as store:
            outcome = store.ingest_bench_report(report, source=output)
        print(f"result store {args.store}: {outcome.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
