"""Command-line entry point: ``PYTHONPATH=src python -m repro.perf``.

CI runs ``--quick`` and uploads the JSON artifact; developers run the full
size before/after touching a hot path.
"""

from __future__ import annotations

import argparse
import sys

from .harness import format_report, run_benchmarks, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the simulation engine and CM grant hot paths.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_PR5.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--label", default="BENCH_PR5", help="label recorded in the report metadata"
    )
    args = parser.parse_args(argv)

    # Fail before spending minutes benchmarking if the report can't be written.
    try:
        with open(args.output, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        parser.error(f"cannot write --output {args.output}: {exc}")

    report = run_benchmarks(quick=args.quick, label=args.label)
    write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
