"""Performance harness for the simulation hot path.

This package keeps the repository honest about speed.  The reproduction's
entire output — every figure, every table — is produced by the discrete
event engine driving ``cm_request`` grants through the manager and
scheduler, so simulator throughput is the ceiling on how many scenarios we
can afford to run.  The harness here measures that ceiling:

* :mod:`repro.perf.legacy` preserves the seed (pre-PR-1) implementations of
  the event engine and of the one-grant-at-a-time dispatch loop, so every
  optimised hot path can be benchmarked against the exact code it replaced;
* :mod:`repro.perf.harness` runs the microbenchmarks (event churn, timer
  restart, grant dispatch) and an end-to-end Figure-3 scenario, and emits a
  JSON report (``BENCH_PR1.json`` for this PR) with ops/sec, wall-clock and
  the speedup over the seed implementation;
* ``python -m repro.perf`` is the command-line entry point (CI runs it in
  ``--quick`` mode and uploads the JSON as an artifact).

Every future performance PR gets a trajectory to beat by re-running::

    PYTHONPATH=src python -m repro.perf --quick --output BENCH_PR1.json
"""

from .harness import BenchResult, run_benchmarks, write_report

__all__ = ["BenchResult", "run_benchmarks", "write_report"]
