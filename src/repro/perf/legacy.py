"""Seed (pre-PR-1) implementations of the hot paths, kept for benchmarking.

The classes and functions here are verbatim-in-behaviour copies of the code
the PR-1 rewrite replaced: the per-``Event``-object heap engine and the
one-grant-at-a-time dispatch loop.  They exist so the perf harness can
report *measured* speedups against the exact seed implementation rather
than against folklore, and so regressions ("the new engine got slower than
the seed") stay detectable forever.

Do not use these in production code; they are benchmark baselines.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "LegacyEvent",
    "LegacySimulator",
    "LegacyTimer",
    "LegacyPacket",
    "legacy_data_segment",
    "unbatched_maybe_grant",
    "legacy_dummynet_pair",
]


class LegacyEvent:
    """Seed event record: one 7-slot object per scheduled callback."""

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "dispatched")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple, kwargs: dict):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.dispatched = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.dispatched


class LegacySimulator:
    """Seed engine: peek()/step() pair per dispatch, Event attribute juggling."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any, **kwargs: Any) -> LegacyEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule event {delay} seconds in the past")
        return self.at(self._now + delay, callback, *args, **kwargs)

    def at(self, time: float, callback: Callable, *args: Any, **kwargs: Any) -> LegacyEvent:
        if time < self._now:
            raise ValueError(f"cannot schedule event at {time:.6f}, now {self._now:.6f}")
        event = LegacyEvent(time, next(self._counter), callback, args, kwargs)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def call_soon(self, callback: Callable, *args: Any, **kwargs: Any) -> LegacyEvent:
        return self.at(self._now, callback, *args, **kwargs)

    def stop(self) -> None:
        self._stopped = True

    def peek(self) -> Optional[float]:
        while self._heap:
            time, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def step(self) -> bool:
        while self._heap:
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.dispatched = True
            self.events_dispatched += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if until is not None and until < self._now:
            raise ValueError(f"horizon {until} is before current time {self._now}")
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
            if until is not None and not self._stopped and self.peek() is None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now


class LegacyTimer:
    """Seed timer: cancel-and-repush on every restart."""

    def __init__(self, sim: LegacySimulator, callback: Callable, *args: Any, **kwargs: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        self._event: Optional[LegacyEvent] = None

    @property
    def pending(self) -> bool:
        return self._event is not None and self._event.pending

    @property
    def expires_at(self) -> Optional[float]:
        if self.pending:
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    restart = start

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args, **self._kwargs)


_legacy_packet_ids = itertools.count(1)

#: Fixed header sizes (mirrors the live packet module's constants; copied so
#: the baseline stays frozen even if the live values ever change).
_IP_HEADER_BYTES = 20
_TCP_HEADER_BYTES = 32


@dataclass
class LegacyPacket:
    """Seed packet record: a dataclass with a per-packet ``headers`` dict.

    Every segment the seed built allocated a fresh dataclass instance *and*
    a fresh dict for its transport headers; this copy is the baseline the
    ``packet_pool`` benchmark measures the slotted/pooled path against.
    """

    src: str
    dst: str
    sport: int
    dport: int
    protocol: str
    payload_bytes: int = 0
    headers: Dict[str, Any] = field(default_factory=dict)
    ecn_capable: bool = False
    ecn_marked: bool = False
    flow_id: Optional[int] = None
    cm_matchable: bool = True
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_legacy_packet_ids))

    @property
    def size(self) -> int:
        return _IP_HEADER_BYTES + _TCP_HEADER_BYTES + self.payload_bytes


def legacy_data_segment(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    seq: int,
    length: int,
    timestamp: float,
    retransmission: bool = False,
    ecn_capable: bool = False,
) -> LegacyPacket:
    """The seed's ``data_segment``: new dataclass + new 4-entry header dict."""
    return LegacyPacket(
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        protocol="tcp",
        payload_bytes=length,
        ecn_capable=ecn_capable,
        headers={
            "seq": seq,
            "len": length,
            "ts": timestamp,
            "retransmission": retransmission,
        },
    )


def unbatched_maybe_grant(manager, macroflow) -> None:
    """The seed grant loop: one scheduler pop and window check per MTU.

    Operates on the live :class:`~repro.core.manager.CongestionManager`
    data structures, so benchmarks can compare it directly against the
    batched ``_maybe_grant`` on identical state.
    """
    while macroflow.scheduler.has_pending() and macroflow.window_open():
        flow_id = macroflow.scheduler.next_flow()
        if flow_id is None:
            break
        flow = manager._flows.get(flow_id)
        if flow is None or not flow.is_open or flow.macroflow is not macroflow:
            continue
        macroflow.reserved_bytes += macroflow.mtu
        flow.granted_unnotified += 1
        flow.stats.grants += 1
        flow.channel.post_send_grant(flow)


def legacy_dummynet_pair(loss_rate: float, seed: int = 0):
    """The seed's hand-wired Figure-3 testbed construction (pre-scenario API).

    A verbatim copy of the original ``experiments.topology._pair`` wiring
    with the ``dummynet_pair`` parameters, kept as the baseline for the
    ``scenario_build`` benchmark: it measures what the declarative
    spec-compile + validation layer costs over direct object construction.
    """
    from ..hostmodel import HostCosts
    from ..netsim import Channel, Host, Simulator

    sim = Simulator()
    sender = Host(sim, "sender", "10.1.0.1", costs=HostCosts())
    receiver = Host(sim, "receiver", "10.2.0.1", costs=HostCosts())
    channel = Channel(
        sim,
        sender,
        receiver,
        rate_bps=10e6,
        one_way_delay=0.030,
        queue_limit=50,
        loss_rate=loss_rate,
        reverse_loss_rate=0.0,
        ecn_threshold=None,
        seed=seed,
    )
    return sim, sender, receiver, channel
