"""Packet model shared by the IP layer, transports, links and traces.

A :class:`Packet` is deliberately protocol-agnostic: transport protocols put
their header fields in :attr:`Packet.headers` and the simulator only cares
about sizes, addressing and ECN bits.  This mirrors the way the paper's CM
treats transmissions: it charges bytes to macroflows without interpreting
transport headers.

The representation is tuned for the per-packet hot path (see
``docs/packet_path.md``):

* ``Packet`` is a plain ``__slots__`` class — no dataclass machinery, no
  per-instance ``__dict__``.
* TCP segments carry a :class:`TCPHeader` record (one slotted object with a
  fixed field set) instead of a per-packet dict; UDP datagrams carry a
  :class:`UDPHeader`, a dict subclass that names the feedback vocabulary
  the CM applications use.
* TCP segments are recycled through a per-:class:`~repro.netsim.engine.Simulator`
  :class:`PacketPool`: the segment builders acquire, the IP input path and
  the link drop paths release, and a free packet keeps its ``TCPHeader``
  record, so a pooled transmission allocates no objects at all.

Packets compare by identity (the dataclass value-``__eq__`` was never used
on distinct instances) — a pooled object's field values are transient.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

__all__ = [
    "Packet",
    "TCPHeader",
    "UDPHeader",
    "PacketPool",
    "pool_for",
    "PROTO_TCP",
    "PROTO_UDP",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "DEFAULT_MTU",
    "DEFAULT_MSS",
]

#: Protocol identifiers used for IP demultiplexing.
PROTO_TCP = "tcp"
PROTO_UDP = "udp"

#: Fixed header sizes, matching the classic IPv4/TCP/UDP wire sizes the
#: paper's 1448-byte Ethernet payloads imply (1500 MTU - 20 IP - 32 TCP+opts).
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 32  # 20 bytes base + 12 bytes of RFC 1323 timestamp options
UDP_HEADER_BYTES = 8

#: Default link MTU (Ethernet) and the TCP MSS it yields.
DEFAULT_MTU = 1500
DEFAULT_MSS = DEFAULT_MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES

_packet_ids = itertools.count(1)

#: Pool membership states (:attr:`Packet._pool_state`).  Packets built
#: directly (tests, UDP datagrams an application may retain) are unmanaged
#: and ignored by :meth:`PacketPool.release`.
_POOL_UNMANAGED = 0
_POOL_LIVE = 1
_POOL_FREE = 2


class TCPHeader:
    """The TCP header fields this reproduction models, as one slotted record.

    One record per (pooled) segment, reused across the packet's lifetimes:
    replacing the per-segment header dict removes an allocation and a hash
    lookup per field from the busiest path in the simulator.  Readers use
    plain attributes; flag-ness is encoded in the defaults (``ack is None``
    means "no acknowledgement field", matching the old ``"ack" in headers``
    test — a SYN-ACK carries ``ack == 0``, which is present-but-zero).

    The segment builders in :mod:`repro.transport.tcp.segments` must assign
    **every** field: a pooled header still holds the previous segment's
    values when it is re-acquired.
    """

    __slots__ = ("seq", "len", "ts", "retransmission", "ack", "ts_echo",
                 "ecn_echo", "syn", "fin")

    def __init__(self):
        self.seq: Optional[int] = None
        self.len = 0
        self.ts: Optional[float] = None
        self.retransmission = False
        self.ack: Optional[int] = None
        self.ts_echo: Optional[float] = None
        self.ecn_echo = False
        self.syn = False
        self.fin = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ((name, getattr(self, name)) for name in self.__slots__)
        shown = ", ".join(f"{name}={value!r}" for name, value in fields
                          if value not in (None, False))
        return f"<TCPHeader {shown}>"


class UDPHeader(dict):
    """Typed view of the application-level UDP header vocabulary.

    UDP "headers" in this model are application payload fields (the CM makes
    no changes at the receiver, so feedback rides in application data).  The
    record stays a dict — applications attach free-form fields like
    ``layer`` or ``request_id`` — but the fields the CM feedback machinery
    (:mod:`repro.transport.udp.feedback`) depends on are declared here as
    named accessors, so readers on the feedback path don't do string-keyed
    lookups and the vocabulary is documented in one place.
    """

    __slots__ = ()

    #: Data direction: per-datagram sequence number and send timestamp.
    seq = property(lambda self: self.get("seq"))
    ts = property(lambda self: self.get("ts"))
    #: Feedback direction: the echoed acknowledgement fields.
    ack_seq = property(lambda self: self.get("ack_seq"))
    ts_echo = property(lambda self: self.get("ts_echo"))
    acked_packets = property(lambda self: self.get("acked_packets"))
    acked_bytes = property(lambda self: self.get("acked_bytes"))
    total_received = property(lambda self: self.get("total_received"))


class Packet:
    """A simulated datagram.

    Attributes
    ----------
    src, dst:
        End-host addresses (opaque strings, e.g. ``"10.0.0.1"``).
    sport, dport:
        Transport port numbers.
    protocol:
        ``"tcp"`` or ``"udp"``; used by the IP layer for demultiplexing.
    payload_bytes:
        Number of application bytes carried (may be zero for pure ACKs).
    headers:
        Transport- and application-level header fields: a :class:`TCPHeader`
        record on TCP segments, a :class:`UDPHeader` (or plain dict) on UDP
        datagrams.
    ecn_capable / ecn_marked:
        Explicit Congestion Notification support and congestion-experienced
        marking applied by a router/link.
    flow_id:
        Annotation filled in by the sending host's IP layer so that the
        Congestion Manager can be notified (``cm_notify``) of transmissions
        belonging to CM-managed flows.
    """

    __slots__ = ("src", "dst", "sport", "dport", "protocol", "payload_bytes",
                 "headers", "ecn_capable", "ecn_marked", "flow_id",
                 "cm_matchable", "created_at", "packet_id", "_pool_state")

    def __init__(
        self,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        protocol: str,
        payload_bytes: int = 0,
        headers: Optional[Dict[str, Any]] = None,
        ecn_capable: bool = False,
        ecn_marked: bool = False,
        flow_id: Optional[int] = None,
        cm_matchable: bool = True,
        created_at: float = 0.0,
        packet_id: Optional[int] = None,
    ):
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.protocol = protocol
        self.payload_bytes = payload_bytes
        #: A fresh dict per packet when none is supplied (pinned by tests:
        #: mutating one packet's default headers must not leak to another).
        self.headers = headers if headers is not None else {}
        self.ecn_capable = ecn_capable
        self.ecn_marked = ecn_marked
        self.flow_id = flow_id
        #: Whether the sending kernel can match this packet to a CM flow on
        #: its own.  True for TCP and for connected UDP sockets; False for
        #: unconnected UDP sockets, whose applications must call
        #: ``cm_notify`` explicitly (the paper's "ALF/noconnect" case).
        self.cm_matchable = cm_matchable
        self.created_at = created_at
        #: Unique id.  At construction this comes from a process-global
        #: counter (cheap uniqueness for standalone packets); the IP output
        #: path re-stamps it from the owning simulator's counter so traces
        #: are independent of how many simulations ran earlier in the
        #: process.
        self.packet_id = packet_id if packet_id is not None else next(_packet_ids)
        self._pool_state = _POOL_UNMANAGED

    @property
    def header_bytes(self) -> int:
        """Total network + transport header bytes for this packet."""
        if self.protocol == PROTO_TCP:
            return IP_HEADER_BYTES + TCP_HEADER_BYTES
        return IP_HEADER_BYTES + UDP_HEADER_BYTES

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes (headers plus payload)."""
        return self.header_bytes + self.payload_bytes

    @property
    def flow_key(self) -> tuple:
        """5-tuple identifying the flow this packet belongs to."""
        return (self.src, self.dst, self.sport, self.dport, self.protocol)

    def reply_template(self) -> "Packet":
        """Build an empty packet addressed back to this packet's sender.

        Used by receivers (TCP ACKs, UDP application-level acknowledgements)
        so that the reverse-path addressing is always consistent.
        """
        return Packet(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            protocol=self.protocol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.protocol} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.payload_bytes}B {self.headers}>"
        )


class PacketPool:
    """Free-list recycler for the TCP segments a simulation churns through.

    The contract (enforced by :attr:`Packet._pool_state`, a tiny int state
    machine):

    * :meth:`acquire` hands out a **live** packet — either recycled from the
      free list (keeping its :class:`TCPHeader` record: zero allocations) or
      freshly created on first use.
    * :meth:`release` returns a live packet to the free list.  Releasing an
      *unmanaged* packet (anything built directly via :class:`Packet`) is a
      deliberate no-op, so the IP input path can release unconditionally;
      releasing the same pooled packet twice raises, because the second
      releaser is about to alias whoever re-acquired it.
    * A released packet must never be touched again by the releaser — its
      fields are overwritten by the next acquire.

    Only TCP segments are pooled: their lifecycle ends inside the stack (the
    IP input path or a link drop), whereas ``UDPSocket.sendto`` returns the
    datagram to the application, which may retain it indefinitely.

    Pools are per-:class:`~repro.netsim.engine.Simulator` (see
    :func:`pool_for`) so recycling order — and therefore every field of
    every reused packet — is a function of the simulation alone, preserving
    run-to-run byte identity.
    """

    __slots__ = ("_free", "created", "reused", "released")

    def __init__(self):
        self._free: List[Packet] = []
        #: Packets ever created by this pool (the pool's footprint).
        self.created = 0
        #: Acquires served from the free list.
        self.reused = 0
        #: Successful releases (unmanaged no-ops are not counted).
        self.released = 0

    @property
    def free_count(self) -> int:
        """Packets currently parked on the free list."""
        return len(self._free)

    @property
    def live_count(self) -> int:
        """Pool-created packets currently out in the simulation.

        Zero after a simulation drains: every acquired segment must have
        been delivered (released by the IP input path) or dropped (released
        by the link/forwarding drop paths).  The leak test pins this.
        """
        return self.created - len(self._free)

    def acquire(
        self,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        payload_bytes: int = 0,
        ecn_capable: bool = False,
    ) -> Packet:
        """Check a TCP segment out of the pool, resetting its packet fields.

        Header fields are **not** reset — the segment builders assign every
        :class:`TCPHeader` field themselves, so clearing here would be
        duplicated work.
        """
        free = self._free
        if free:
            packet = free.pop()
            self.reused += 1
            packet._pool_state = _POOL_LIVE
            packet.src = src
            packet.dst = dst
            packet.sport = sport
            packet.dport = dport
            packet.payload_bytes = payload_bytes
            packet.ecn_capable = ecn_capable
            packet.ecn_marked = False
            packet.flow_id = None
            packet.cm_matchable = True
            packet.created_at = 0.0
            return packet
        self.created += 1
        packet = Packet(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            protocol=PROTO_TCP,
            payload_bytes=payload_bytes,
            headers=TCPHeader(),
            ecn_capable=ecn_capable,
        )
        packet._pool_state = _POOL_LIVE
        return packet

    def release(self, packet: Packet) -> None:
        """Return a packet to the free list (no-op for unmanaged packets)."""
        state = packet._pool_state
        if state == _POOL_UNMANAGED:
            return
        if state == _POOL_FREE:
            raise RuntimeError(
                f"packet #{packet.packet_id} released twice: a second release "
                "would alias the next acquirer's live packet"
            )
        packet._pool_state = _POOL_FREE
        self.released += 1
        self._free.append(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PacketPool created={self.created} free={self.free_count} "
                f"live={self.live_count}>")


def pool_for(sim) -> PacketPool:
    """Return ``sim``'s packet pool, attaching one on first use.

    The pool hangs off the simulator (not a process global) so that
    back-to-back simulations recycle packets in identical order.
    """
    pool = sim.packet_pool
    if pool is None:
        pool = sim.packet_pool = PacketPool()
    return pool
