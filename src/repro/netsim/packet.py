"""Packet model shared by the IP layer, transports, links and traces.

A :class:`Packet` is deliberately protocol-agnostic: transport protocols put
their header fields in :attr:`Packet.headers` (a plain dict) and the
simulator only cares about sizes, addressing and ECN bits.  This mirrors the
way the paper's CM treats transmissions: it charges bytes to macroflows
without interpreting transport headers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "DEFAULT_MTU",
    "DEFAULT_MSS",
]

#: Protocol identifiers used for IP demultiplexing.
PROTO_TCP = "tcp"
PROTO_UDP = "udp"

#: Fixed header sizes, matching the classic IPv4/TCP/UDP wire sizes the
#: paper's 1448-byte Ethernet payloads imply (1500 MTU - 20 IP - 32 TCP+opts).
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 32  # 20 bytes base + 12 bytes of RFC 1323 timestamp options
UDP_HEADER_BYTES = 8

#: Default link MTU (Ethernet) and the TCP MSS it yields.
DEFAULT_MTU = 1500
DEFAULT_MSS = DEFAULT_MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated datagram.

    Attributes
    ----------
    src, dst:
        End-host addresses (opaque strings, e.g. ``"10.0.0.1"``).
    sport, dport:
        Transport port numbers.
    protocol:
        ``"tcp"`` or ``"udp"``; used by the IP layer for demultiplexing.
    payload_bytes:
        Number of application bytes carried (may be zero for pure ACKs).
    headers:
        Transport- and application-level header fields (sequence numbers,
        ACK numbers, timestamps, layer identifiers, ...).
    ecn_capable / ecn_marked:
        Explicit Congestion Notification support and congestion-experienced
        marking applied by a router/link.
    flow_id:
        Annotation filled in by the sending host's IP layer so that the
        Congestion Manager can be notified (``cm_notify``) of transmissions
        belonging to CM-managed flows.
    """

    src: str
    dst: str
    sport: int
    dport: int
    protocol: str
    payload_bytes: int = 0
    headers: Dict[str, Any] = field(default_factory=dict)
    ecn_capable: bool = False
    ecn_marked: bool = False
    flow_id: Optional[int] = None
    #: Whether the sending kernel can match this packet to a CM flow on its
    #: own.  True for TCP and for connected UDP sockets; False for
    #: unconnected UDP sockets, whose applications must call ``cm_notify``
    #: explicitly (the paper's "ALF/noconnect" case).
    cm_matchable: bool = True
    created_at: float = 0.0
    #: Unique id.  At construction this comes from a process-global counter
    #: (cheap uniqueness for standalone packets); the IP output path
    #: re-stamps it from the owning simulator's counter so traces are
    #: independent of how many simulations ran earlier in the process.
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def header_bytes(self) -> int:
        """Total network + transport header bytes for this packet."""
        if self.protocol == PROTO_TCP:
            return IP_HEADER_BYTES + TCP_HEADER_BYTES
        return IP_HEADER_BYTES + UDP_HEADER_BYTES

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes (headers plus payload)."""
        return self.header_bytes + self.payload_bytes

    @property
    def flow_key(self) -> tuple:
        """5-tuple identifying the flow this packet belongs to."""
        return (self.src, self.dst, self.sport, self.dport, self.protocol)

    def reply_template(self) -> "Packet":
        """Build an empty packet addressed back to this packet's sender.

        Used by receivers (TCP ACKs, UDP application-level acknowledgements)
        so that the reverse-path addressing is always consistent.
        """
        return Packet(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            protocol=self.protocol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.protocol} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.payload_bytes}B {self.headers}>"
        )
