"""Dummynet-style channels and small topology builders.

The paper shaped its testbed paths with Dummynet: a configurable bandwidth,
round-trip time and random loss rate between two otherwise fast hosts.
:class:`Channel` reproduces that as a pair of :class:`~repro.netsim.link.Link`
objects (one per direction) plus the routing entries on both hosts.

:func:`build_dumbbell` wires the classic shared-bottleneck topology used for
fairness and bandwidth-sharing checks: several sender hosts and receiver
hosts on fast access links around a single constrained router-to-router
link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .engine import Simulator
from .link import Link
from .node import Host, Router

__all__ = ["Channel", "Dumbbell", "build_dumbbell"]


class Channel:
    """A bidirectional, symmetric path between two hosts.

    Parameters mirror a Dummynet pipe: ``rate_bps`` and ``one_way_delay``
    apply in both directions, ``loss_rate`` is applied independently per
    direction (pass ``reverse_loss_rate`` to make the ACK path clean, as the
    paper's loss experiments effectively did), and ``queue_limit`` bounds
    the bottleneck buffer.
    """

    def __init__(
        self,
        sim: Simulator,
        host_a: Host,
        host_b: Host,
        rate_bps: float,
        one_way_delay: float,
        queue_limit: Optional[int] = 100,
        loss_rate: float = 0.0,
        reverse_loss_rate: Optional[float] = None,
        ecn_threshold: Optional[int] = None,
        seed: int = 0,
        loss_model=None,
        aqm=None,
        install_default_route: bool = False,
    ):
        self.sim = sim
        self.host_a = host_a
        self.host_b = host_b
        if reverse_loss_rate is None:
            reverse_loss_rate = loss_rate
        # ``loss_model``/``aqm`` are passed as config mappings; each Link
        # normalizes its own fresh instance, so the two directions never
        # share burst-fade or queue-average state.
        self.forward = Link(
            sim,
            rate_bps=rate_bps,
            delay=one_way_delay,
            queue_limit=queue_limit,
            loss_rate=loss_rate,
            ecn_threshold=ecn_threshold,
            seed=seed,
            loss_model=loss_model,
            aqm=aqm,
            name=f"{host_a.name}->{host_b.name}",
        )
        self.reverse = Link(
            sim,
            rate_bps=rate_bps,
            delay=one_way_delay,
            queue_limit=queue_limit,
            loss_rate=reverse_loss_rate,
            ecn_threshold=ecn_threshold,
            seed=seed + 1,
            loss_model=loss_model,
            aqm=aqm,
            name=f"{host_b.name}->{host_a.name}",
        )
        # Links hand packets straight to the IP input routine; the
        # ``receive_from_link`` wrapper stays for ad-hoc callers, but a
        # per-packet pass-through call is overhead the delivery path skips.
        self.forward.attach(host_b.ip.receive)
        self.reverse.attach(host_a.ip.receive)
        host_a.add_route(host_b.addr, self.forward)
        host_b.add_route(host_a.addr, self.reverse)
        if install_default_route:
            host_a.set_default_route(self.forward)
            host_b.set_default_route(self.reverse)

    @property
    def rtt(self) -> float:
        """Propagation round-trip time (excluding serialisation and queueing)."""
        return self.forward.delay + self.reverse.delay

    @property
    def rate_bps(self) -> float:
        """Forward-direction bottleneck rate."""
        return self.forward.rate_bps

    def set_loss_rate(self, loss_rate: float, reverse: bool = False) -> None:
        """Change the random loss rate mid-experiment (both paths if ``reverse``)."""
        self.forward.loss_rate = loss_rate
        if reverse:
            self.reverse.loss_rate = loss_rate

    def set_rate(self, rate_bps: float, reverse: bool = True) -> None:
        """Change the channel bandwidth mid-experiment (used by Figures 8/9).

        Symmetric by default, deliberately: a Channel models one Dummynet
        pipe, and reconfiguring a pipe rescales both directions.
        ``LinkSpec.rate_schedule`` inherits this — each step rescales the
        reverse (ACK) path along with the forward path, and the pinned
        goldens encode that behaviour.  Pass ``reverse=False`` to scope a
        change to the forward direction only.
        """
        self.forward.rate_bps = float(rate_bps)
        if reverse:
            self.reverse.rate_bps = float(rate_bps)


@dataclass
class Dumbbell:
    """The node and link handles returned by :func:`build_dumbbell`."""

    senders: List[Host]
    receivers: List[Host]
    left_router: Router
    right_router: Router
    bottleneck: Link
    bottleneck_reverse: Link


def build_dumbbell(
    sim: Simulator,
    n_pairs: int,
    bottleneck_bps: float,
    bottleneck_delay: float,
    access_bps: float = 1e9,
    access_delay: float = 0.1e-3,
    queue_limit: int = 64,
    loss_rate: float = 0.0,
    ecn_threshold: Optional[int] = None,
    host_costs_factory=None,
    seed: int = 0,
) -> Dumbbell:
    """Build ``n_pairs`` sender/receiver hosts sharing one bottleneck link.

    Sender *i* gets address ``10.0.1.(i+1)`` and its receiver
    ``10.0.2.(i+1)``; routes are installed so that any sender can reach any
    receiver (all traffic crosses the bottleneck), which is what macroflow
    experiments with multiple destinations need.
    """
    if n_pairs < 1:
        raise ValueError("need at least one sender/receiver pair")
    left = Router(sim, "left-router")
    right = Router(sim, "right-router")

    bottleneck = Link(
        sim,
        rate_bps=bottleneck_bps,
        delay=bottleneck_delay,
        queue_limit=queue_limit,
        loss_rate=loss_rate,
        ecn_threshold=ecn_threshold,
        seed=seed,
        name="bottleneck",
    )
    bottleneck_reverse = Link(
        sim,
        rate_bps=bottleneck_bps,
        delay=bottleneck_delay,
        queue_limit=queue_limit,
        loss_rate=0.0,
        ecn_threshold=ecn_threshold,
        seed=seed + 1,
        name="bottleneck-rev",
    )
    bottleneck.attach(right.ip.receive)
    bottleneck_reverse.attach(left.ip.receive)
    left.set_default_route(bottleneck)
    right.set_default_route(bottleneck_reverse)

    senders: List[Host] = []
    receivers: List[Host] = []
    for index in range(n_pairs):
        costs_s = host_costs_factory() if host_costs_factory else None
        costs_r = host_costs_factory() if host_costs_factory else None
        sender = Host(sim, f"sender{index}", f"10.0.1.{index + 1}", costs=costs_s)
        receiver = Host(sim, f"receiver{index}", f"10.0.2.{index + 1}", costs=costs_r)

        up = Link(sim, access_bps, access_delay, queue_limit=1000, seed=seed + 10 + index,
                  name=f"{sender.name}->left")
        down = Link(sim, access_bps, access_delay, queue_limit=1000, seed=seed + 20 + index,
                    name=f"left->{sender.name}")
        up.attach(left.ip.receive)
        down.attach(sender.ip.receive)
        sender.set_default_route(up)
        left.add_route(sender.addr, down)

        rup = Link(sim, access_bps, access_delay, queue_limit=1000, seed=seed + 30 + index,
                   name=f"right->{receiver.name}")
        rdown = Link(sim, access_bps, access_delay, queue_limit=1000, seed=seed + 40 + index,
                     name=f"{receiver.name}->right")
        rup.attach(receiver.ip.receive)
        rdown.attach(right.ip.receive)
        right.add_route(receiver.addr, rup)
        receiver.set_default_route(rdown)

        senders.append(sender)
        receivers.append(receiver)

    return Dumbbell(
        senders=senders,
        receivers=receivers,
        left_router=left,
        right_router=right,
        bottleneck=bottleneck,
        bottleneck_reverse=bottleneck_reverse,
    )
