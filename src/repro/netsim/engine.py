"""Discrete-event simulation engine.

Every component in this reproduction (links, TCP timers, the Congestion
Manager's rate callbacks, application send loops) takes its notion of time
from a :class:`Simulator` instance rather than the wall clock.  This keeps
the congestion-control dynamics deterministic and reproducible, which is the
substitution this repository makes for the paper's physical testbed (see
DESIGN.md).

The engine is a classic event-heap simulator:

* :meth:`Simulator.schedule` / :meth:`Simulator.at` push events onto a heap
  and return an :class:`Event` handle that can be cancelled.
* :meth:`Simulator.run` pops events in time order and invokes their
  callbacks until the horizon, an event budget, or :meth:`Simulator.stop`.
* :class:`Timer` wraps the common "restartable timeout" pattern used by TCP
  retransmission timers and the CM's background tick.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently.

    Examples include scheduling an event in the past or running a simulator
    that has already been told to stop and then asked to resume with a
    horizon earlier than the current time.
    """


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    interacts with them to :meth:`cancel` a pending event or to inspect
    :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "dispatched")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple, kwargs: dict):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.dispatched = False

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and has not fired or been cancelled."""
        return not self.cancelled and not self.dispatched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("done" if self.dispatched else "pending")
        return f"<Event t={self.time:.6f} {getattr(self.callback, '__name__', self.callback)} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self.events_dispatched = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} seconds in the past")
        return self.at(self._now + delay, callback, *args, **kwargs)

    def at(self, time: float, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, simulator already at {self._now:.6f}"
            )
        event = Event(time, next(self._counter), callback, args, kwargs)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def call_soon(self, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at the current time (after already-queued same-time events)."""
        return self.at(self._now, callback, *args, **kwargs)

    # ---------------------------------------------------------------- running
    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap:
            time, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap was empty.
        """
        while self._heap:
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.dispatched = True
            self.events_dispatched += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` is reached, or ``stop()`` is called.

        Parameters
        ----------
        until:
            Horizon in simulated seconds.  Events scheduled later than the
            horizon are left on the heap; the clock is advanced to the
            horizon when it is reached.
        max_events:
            Safety valve for tests; abort after this many dispatches.

        Returns
        -------
        float
            The simulated time at which the run ended.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"horizon {until} is before current time {self._now}")
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
            else:
                # stop() was requested; advance no further.
                pass
            if until is not None and not self._stopped and self.peek() is None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (convenience wrapper over :meth:`run`)."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"


class Timer:
    """A restartable one-shot timer bound to a simulator.

    This mirrors how kernel code uses timers: the owner calls
    :meth:`restart` whenever the timeout should be pushed back (for example
    when a TCP ACK advances the window), :meth:`cancel` when the timer is no
    longer needed, and the ``callback`` fires if the timeout expires first.
    """

    def __init__(self, sim: Simulator, callback: Callable, *args: Any, **kwargs: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._event is not None and self._event.pending

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when the timer is not armed."""
        if self.pending:
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; restarts if already armed."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    # ``restart`` reads better at call sites that are refreshing a timeout.
    restart = start

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args, **self._kwargs)
