"""Discrete-event simulation engine.

Every component in this reproduction (links, TCP timers, the Congestion
Manager's rate callbacks, application send loops) takes its notion of time
from a :class:`Simulator` instance rather than the wall clock.  This keeps
the congestion-control dynamics deterministic and reproducible, which is the
substitution this repository makes for the paper's physical testbed (see
DESIGN.md).

The engine is an event-heap simulator tuned for the request/grant/ACK churn
the Congestion Manager generates:

* :meth:`Simulator.schedule` / :meth:`Simulator.at` push events onto the
  queue and return an :class:`Event` handle that can be cancelled.
* The pending set is split into **two lanes**: an append-only *tail* (a
  deque that stays sorted because entries are only appended when they are
  not earlier than its last element) and a binary *heap* for the rare
  out-of-order pushes.  Simulated hardware schedules overwhelmingly in
  non-decreasing time order — links chain serialisations forward, timers
  re-arm ahead of now — so in steady state nearly every push is an O(1)
  ``append`` and nearly every pop an O(1) ``popleft`` plus one list
  comparison against the heap head, instead of paying O(log n) sift work
  per event.  Dispatch order is still *exactly* global ``(time, seq)``
  order: the two lanes are merged head-to-head on every pop.
* Queue entries are plain mutable lists, not the :class:`Event` handles
  themselves; cancellation is *lazy* — it flips a state slot in O(1) and the
  dead entry is discarded when it surfaces at the front of a lane (with a
  periodic compaction so a cancel-heavy workload cannot bloat the queue).
* :meth:`Simulator.run` pops events in time order and invokes their
  callbacks until the horizon, an event budget, or :meth:`Simulator.stop`,
  with the dispatch loop working on local bindings of the heap machinery.
* :class:`Timer` wraps the common "restartable timeout" pattern used by TCP
  retransmission timers and the CM's background tick.  Restarts that push
  the deadline *back* (the per-ACK case) are coalesced: the timer just
  records the new deadline and re-arms lazily when the old entry fires,
  costing zero heap operations per restart.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional

# Bound once at import: the hot paths call these thousands of times per
# simulated second and a plain global lookup beats module attribute access.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]

# Queue entries are ``[time, seq, state, callback, args]`` lists (plus a
# trailing ``sim`` slot on :class:`Event` entries, which need it for
# ``cancel``).  Ordering only ever compares ``time`` then the unique
# ``seq``, so the trailing slots never participate in comparisons and the
# two layouts can share a heap.  Callback keyword arguments are deliberately
# unsupported on the scheduling fast path — a per-call kwargs dict is an
# allocation the packet hot path cannot afford; use ``functools.partial``.
_TIME = 0
_SEQ = 1
_STATE = 2
_CALLBACK = 3
_ARGS = 4
_SIM = 5

_PENDING = 0
_CANCELLED = 1
_DISPATCHED = 2

#: Compact the queue when at least this many dead entries accumulate *and*
#: they outnumber the live ones (amortised O(1) per cancellation).
_COMPACT_MIN_DEAD = 512

#: Sequence floor for :meth:`Simulator.push_late` entries.  Normal sequence
#: numbers count up from zero one per event, so they can never reach this
#: (2**62 events is thousands of simulated years); a late entry therefore
#: sorts after every normally-scheduled event at the same timestamp, and
#: same-time late entries order by their caller-supplied rank.
_LATE_SEQ_BASE = 1 << 62


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently.

    Examples include scheduling an event in the past, cancelling an event
    that has already been dispatched, or resuming a stopped simulator with a
    horizon earlier than the current time.
    """


class Event(list):
    """Handle for a scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    interacts with them to :meth:`cancel` a pending event or to inspect
    :attr:`time`.  The handle *is* the simulator's internal queue entry (a
    list subclass), so scheduling allocates exactly one object — there is no
    separate wrapper to build or collect on the hot path.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute simulated time the event fires (or fired) at."""
        return self[_TIME]

    @property
    def seq(self) -> int:
        """Schedule-order tiebreaker (unique per simulator)."""
        return self[_SEQ]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self[_STATE] == _CANCELLED

    @property
    def dispatched(self) -> bool:
        """True once the callback has been invoked."""
        return self[_STATE] == _DISPATCHED

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and has not fired or been cancelled."""
        return self[_STATE] == _PENDING

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call more than once on a pending or already-cancelled event;
        cancelling an event whose callback has already run is a bug in the
        caller's bookkeeping and raises :class:`SimulationError`.
        """
        state = self[_STATE]
        if state == _DISPATCHED:
            raise SimulationError(
                f"cannot cancel event at t={self[_TIME]:.6f}: it has already been dispatched"
            )
        if state == _PENDING:
            self[_STATE] = _CANCELLED
            sim = self[_SIM]
            tail = sim._tail
            if tail and tail[-1] is self:
                # Retracted-timeout fast path: an entry cancelled while it is
                # still the newest thing scheduled is removed outright, so it
                # neither rots in the lane nor forces later in-order pushes
                # through the slow path.
                tail.pop()
                return
            dead = sim._dead + 1
            sim._dead = dead
            if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(sim._heap) + len(tail):
                sim._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "cancelled", "done")[self[_STATE]]
        callback = self[_CALLBACK]
        name = getattr(callback, "__name__", callback)
        return f"<Event t={self[_TIME]:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.
    """

    #: Slotted: the dispatch loop and the packet pool touch these attributes
    #: millions of times per simulated run, and the per-instance dict would
    #: be pure overhead (nothing in the repo monkey-patches simulators).
    __slots__ = (
        "_now",
        "_heap",
        "_tail",
        "_seq",
        "_dead",
        "_running",
        "_stopped",
        "_packet_seq",
        "_control_cb",
        "_control_interval",
        "_control_entry",
        "events_dispatched",
        "packet_pool",
    )

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[list] = []
        #: Sorted fast lane: only ever appended to when the new entry is not
        #: earlier than its last element, so it stays sorted by (time, seq).
        self._tail: deque = deque()
        self._seq = 0
        self._dead = 0
        self._running = False
        self._stopped = False
        self._packet_seq = 0
        # Control-tick chain (see start_control): a background callback the
        # service layer uses to drain cross-thread mailboxes from *inside*
        # the event loop.  None means no chain is armed.
        self._control_cb: Optional[Callable] = None
        self._control_interval = 0.0
        self._control_entry: Optional[list] = None
        self.events_dispatched = 0
        #: Lazily-attached per-simulator :class:`~repro.netsim.packet.PacketPool`
        #: (see :func:`repro.netsim.packet.pool_for`); ``None`` until the
        #: first transport asks for it.
        self.packet_pool = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ identifiers
    def next_packet_id(self) -> int:
        """Allocate the next per-simulator packet id (1, 2, 3, ...).

        Packet ids are stamped by the IP output path so that traces and
        telemetry payloads are a function of the simulation alone, never of
        how many other simulations ran earlier in the process.
        """
        pid = self._packet_seq + 1
        self._packet_seq = pid
        return pid

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Callback arguments are positional-only: a per-call kwargs dict is an
        allocation the hot path cannot afford, so bind keyword arguments
        with :func:`functools.partial` at the call site instead.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} seconds in the past")
        seq = self._seq
        self._seq = seq + 1
        entry = Event((self._now + delay, seq, _PENDING, callback, args, self))
        # Two-lane push: in-order entries (the overwhelming common case for
        # link serialisation chains and re-armed timers) go on the sorted
        # tail for O(1); out-of-order ones reclaim the tail's right end or
        # fall back to the heap (see _enqueue_slow).
        tail = self._tail
        if not tail or entry[0] >= tail[-1][0]:
            tail.append(entry)
        else:
            self._enqueue_slow(entry)
        return entry

    def at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, simulator already at {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = Event((time, seq, _PENDING, callback, args, self))
        tail = self._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            self._enqueue_slow(entry)
        return entry

    def call_soon(self, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback`` at the current time (after already-queued same-time events)."""
        seq = self._seq
        self._seq = seq + 1
        entry = Event((self._now, seq, _PENDING, callback, args, self))
        tail = self._tail
        if not tail or self._now >= tail[-1][0]:
            tail.append(entry)
        else:
            self._enqueue_slow(entry)
        return entry

    # ------------------------------------------------------- entry management
    def _push(self, time: float, callback: Callable, args: tuple) -> list:
        """Create and enqueue a raw queue entry (no :class:`Event` handle)."""
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, _PENDING, callback, args]
        tail = self._tail
        if not tail or time >= tail[-1][0]:
            tail.append(entry)
        else:
            self._enqueue_slow(entry)
        return entry

    def push_late(self, time: float, rank: int, callback: Callable, args: tuple = ()) -> list:
        """Enqueue an entry that sorts *after* every normal event at ``time``.

        ``rank`` breaks ties between same-time late entries (callers must
        keep it unique per timestamp — list comparison would otherwise fall
        through to the callback slot).  Used by the graph builds' ingress
        sequencers to run per-node end-of-timestamp drains in a
        content-defined order, independent of event-scheduling history —
        the hook that lets sharded runs reproduce single-process bytes.

        Late entries always go to the heap lane: the tail's append fast
        path checks time only, so a huge-seq entry sitting at the tail's
        right end would let a subsequent same-time normal append break the
        (time, seq) sortedness the pop-side merge relies on.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, simulator already at {self._now:.6f}"
            )
        entry = [time, _LATE_SEQ_BASE + rank, _PENDING, callback, args]
        _heappush(self._heap, entry)
        return entry

    def _enqueue_slow(self, entry: list) -> None:
        """Place an out-of-order entry (earlier than the tail's last element).

        The tail's right end often holds just-cancelled far-future entries
        (a retracted timeout scheduled past everything else) — those are
        dropped outright, which is cheaper than letting them rot in the
        heap.  Up to a few *live* entries are demoted tail→heap to make
        room; each entry can be demoted at most once, so the amortised cost
        stays O(1) and a long sorted tail can never be dismantled wholesale
        by one early push (past the budget the new entry itself takes the
        heap).
        """
        tail = self._tail
        heap = self._heap
        time = entry[_TIME]
        budget = 8
        while tail:
            last = tail[-1]
            if time >= last[_TIME]:
                break
            if last[_STATE] == _CANCELLED:
                tail.pop()
                self._dead -= 1
                continue
            if budget == 0:
                _heappush(heap, entry)
                return
            budget -= 1
            _heappush(heap, tail.pop())
        tail.append(entry)

    def _kill_entry(self, entry: list) -> None:
        """Lazily cancel a pending entry.

        The payload slots are left in place — the dead entry surfaces and is
        dropped soon enough (or is swept by :meth:`_compact`), exactly as the
        heap-resident references behaved before the rewrite.
        """
        entry[_STATE] = _CANCELLED
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap) + len(self._tail):
            self._compact()

    def _compact(self) -> None:
        """Rebuild both lanes without dead entries (amortised by the threshold).

        In place, never rebinding ``self._heap`` or ``self._tail``: the
        dispatch loop in :meth:`run` works on local aliases of the lane
        containers, and compaction can trigger from a callback in the middle
        of that loop.  Filtering the tail preserves its order, so its
        sortedness invariant survives.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[_STATE] == _PENDING]
        heapq.heapify(heap)
        tail = self._tail
        live = [entry for entry in tail if entry[_STATE] == _PENDING]
        tail.clear()
        tail.extend(live)
        self._dead = 0

    # ---------------------------------------------------------------- running
    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ----------------------------------------------------------- control tick
    def start_control(self, interval: float, callback: Callable[[], None]) -> None:
        """Arm a periodic *control tick*: ``callback()`` every ``interval``.

        The tick is a first-class background event: it fires from inside the
        dispatch loop (so the callback may safely touch any engine-owned
        object — this is the thread boundary the service layer's per-job
        mailbox relies on), and it re-arms itself until :meth:`stop_control`.
        Because the chain keeps the queue non-empty, consumers that used
        "no pending events" as an idle signal must ask
        :meth:`idle_except_control` instead of :meth:`peek`.

        An exception raised by the callback propagates out of :meth:`run`
        and breaks the chain — that is how a cooperative cancel aborts a
        simulation without touching engine state from another thread.
        """
        if interval <= 0:
            raise SimulationError(f"control interval must be positive, got {interval}")
        if self._control_cb is not None:
            raise SimulationError("a control tick is already armed; stop_control() it first")
        self._control_cb = callback
        self._control_interval = float(interval)
        self._control_entry = self._push(self._now + self._control_interval, self._control_fire, ())

    def stop_control(self) -> None:
        """Disarm the control tick (idempotent)."""
        self._control_cb = None
        entry = self._control_entry
        self._control_entry = None
        if entry is not None and entry[_STATE] == _PENDING:
            self._kill_entry(entry)

    def _control_fire(self) -> None:
        callback = self._control_cb
        if callback is None:
            self._control_entry = None
            return
        callback()
        if self._control_cb is not None:
            self._control_entry = self._push(
                self._now + self._control_interval, self._control_fire, ()
            )

    def idle_except_control(self) -> bool:
        """True when nothing is pending besides the control-tick chain.

        With no control tick armed this is exactly ``peek() is None``; with
        one armed it answers the question ``peek`` can no longer ask ("has
        the simulation itself drained?"), which keeps horizon/early-exit
        decisions byte-identical between hooked and batch runs.
        """
        control = self._control_entry
        for entry in self._heap:
            if entry[_STATE] == _PENDING and entry is not control:
                return False
        for entry in self._tail:
            if entry[_STATE] == _PENDING and entry is not control:
                return False
        return True

    def _pop_next(self) -> Optional[list]:
        """Pop the earliest live entry across both lanes (``None`` if drained)."""
        heap = self._heap
        tail = self._tail
        while True:
            if tail:
                if heap and heap[0] < tail[0]:
                    entry = _heappop(heap)
                else:
                    entry = tail.popleft()
            elif heap:
                entry = _heappop(heap)
            else:
                return None
            if entry[_STATE] != _PENDING:
                self._dead -= 1
                continue
            return entry

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        tail = self._tail
        while heap and heap[0][_STATE] != _PENDING:
            _heappop(heap)
            self._dead -= 1
        while tail and tail[0][_STATE] != _PENDING:
            tail.popleft()
            self._dead -= 1
        if tail:
            if heap and heap[0] < tail[0]:
                return heap[0][_TIME]
            return tail[0][_TIME]
        if heap:
            return heap[0][_TIME]
        return None

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        entry = self._pop_next()
        if entry is None:
            return False
        self._now = entry[_TIME]
        entry[_STATE] = _DISPATCHED
        self.events_dispatched += 1
        entry[_CALLBACK](*entry[_ARGS])
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` is reached, or :meth:`stop`.

        Parameters
        ----------
        until:
            Horizon in simulated seconds.  Events scheduled later than the
            horizon are left on the heap; the clock is advanced to the
            horizon when it is reached.  Resuming with a horizon earlier
            than the current time (for example after a :meth:`stop`) raises
            :class:`SimulationError`.
        max_events:
            Safety valve for tests; abort after this many dispatches.

        Returns
        -------
        float
            The simulated time at which the run ended.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"horizon {until} is before current time {self._now}")
        self._running = True
        self._stopped = False
        # The dispatch loops work on local bindings (the two lanes, heappop,
        # the budget) and unpack entries by index instead of going through
        # Event attribute lookups.  Entries are popped straight off the
        # lanes, merged head-to-head by one C-level list comparison; the one
        # that overshoots the horizon is pushed back onto the tail's front
        # (it was the global minimum, so sortedness is preserved), which
        # trades a rare extra push for never peeking before every pop.
        heap = self._heap
        tail = self._tail
        popleft = tail.popleft
        heappop = _heappop
        dispatched = 0
        try:
            if until is None and max_events is None:
                # Dominant case (drain, no horizon, no budget): tightest loop.
                # Literal entry indices (see the slot layout at module top):
                # global constant lookups are measurable at this call rate.
                while not self._stopped:
                    if tail:
                        if heap and heap[0] < tail[0]:
                            entry = heappop(heap)
                        else:
                            entry = popleft()
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                    if entry[2]:
                        self._dead -= 1
                        continue
                    self._now = entry[0]
                    entry[2] = 2
                    dispatched += 1
                    args = entry[4]
                    if args:
                        entry[3](*args)
                    else:
                        # Plain call: the arg-free case (self-rescheduling
                        # chains, timer ticks) skips the star-unpack path.
                        entry[3]()
            else:
                remaining = -1 if max_events is None else max_events
                while not self._stopped and remaining != 0:
                    if tail:
                        if heap and heap[0] < tail[0]:
                            entry = heappop(heap)
                        else:
                            entry = popleft()
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                    if entry[2]:
                        self._dead -= 1
                        continue
                    event_time = entry[0]
                    if until is not None and event_time > until:
                        # Late entries (push_late) must never sit in the
                        # tail — a same-time normal append behind one would
                        # break the tail's (time, seq) sortedness.
                        if entry[1] >= _LATE_SEQ_BASE:
                            _heappush(heap, entry)
                        else:
                            tail.appendleft(entry)
                        self._now = until
                        break
                    self._now = event_time
                    entry[2] = 2
                    dispatched += 1
                    remaining -= 1
                    args = entry[4]
                    if args:
                        entry[3](*args)
                    else:
                        entry[3]()
                # Drained, stopped, or out of budget without hitting the
                # horizon: a drained run still reports the horizon time.
                # (After a horizon overshoot ``_now`` already equals
                # ``until``, so this is a no-op on that exit path.)
                if until is not None and not self._stopped and self._now < until and self.peek() is None:
                    self._now = until
        finally:
            self.events_dispatched += dispatched
            self._running = False
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (convenience wrapper over :meth:`run`)."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._heap) + len(self._tail) - self._dead
        return f"<Simulator t={self._now:.6f} pending={pending}>"


class Timer:
    """A restartable one-shot timer bound to a simulator.

    This mirrors how kernel code uses timers: the owner calls
    :meth:`restart` whenever the timeout should be pushed back (for example
    when a TCP ACK advances the window), :meth:`cancel` when the timer is no
    longer needed, and the ``callback`` fires if the timeout expires first.

    Restarts are *coalesced*.  Kernel timer wheels survive a restart per
    packet because modifying a wheel entry is O(1); a binary heap is not so
    lucky, so instead of re-pushing on every restart the timer keeps at most
    one heap entry armed and simply records the latest deadline.  When the
    entry fires early it re-arms itself for the remaining interval.  A
    restart that *shortens* the deadline still has to requeue immediately —
    that is the rare case (TCP only shortens the RTO when the estimator
    collapses, and the CM's background tick never does).
    """

    __slots__ = ("_sim", "_callback", "_args", "_kwargs", "_deadline", "_entry")

    def __init__(self, sim: Simulator, callback: Callable, *args: Any, **kwargs: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        #: Absolute expiry time while armed, ``None`` otherwise.
        self._deadline: Optional[float] = None
        #: The heap entry currently scheduled to call :meth:`_fire`.
        self._entry: Optional[list] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._deadline is not None

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when the timer is not armed."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; restarts if already armed."""
        if delay < 0:
            raise SimulationError(f"cannot arm timer {delay} seconds in the past")
        sim = self._sim
        deadline = sim._now + delay
        self._deadline = deadline
        entry = self._entry
        if entry is not None and entry[_STATE] == _PENDING:
            if entry[_TIME] <= deadline:
                # Deadline moved later (or stayed put): keep the armed entry
                # and let _fire re-arm for the remainder.  Zero heap ops.
                return
            # Deadline moved earlier: the armed entry is useless, requeue.
            sim._kill_entry(entry)
        self._entry = sim._push(deadline, self._fire, ())

    # ``restart`` reads better at call sites that are refreshing a timeout.
    restart = start

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        self._deadline = None
        entry = self._entry
        if entry is not None:
            if entry[_STATE] == _PENDING:
                self._sim._kill_entry(entry)
            self._entry = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:
            # Cancelled after this entry was already dispatched; nothing to do.
            self._entry = None
            return
        sim = self._sim
        if deadline > sim._now:
            # A coalesced restart moved the deadline past this entry's time;
            # re-arm once for the remaining interval.
            self._entry = sim._push(deadline, self._fire, ())
            return
        self._deadline = None
        self._entry = None
        self._callback(*self._args, **self._kwargs)
