"""Discrete-event simulation engine.

Every component in this reproduction (links, TCP timers, the Congestion
Manager's rate callbacks, application send loops) takes its notion of time
from a :class:`Simulator` instance rather than the wall clock.  This keeps
the congestion-control dynamics deterministic and reproducible, which is the
substitution this repository makes for the paper's physical testbed (see
DESIGN.md).

The engine is an event-heap simulator tuned for the request/grant/ACK churn
the Congestion Manager generates:

* :meth:`Simulator.schedule` / :meth:`Simulator.at` push events onto a heap
  and return an :class:`Event` handle that can be cancelled.
* Heap entries are plain mutable lists, not the :class:`Event` handles
  themselves; cancellation is *lazy* — it flips a state slot in O(1) and the
  dead entry is discarded when it surfaces at the top of the heap (with a
  periodic compaction so a cancel-heavy workload cannot bloat the heap).
* :meth:`Simulator.run` pops events in time order and invokes their
  callbacks until the horizon, an event budget, or :meth:`Simulator.stop`,
  with the dispatch loop working on local bindings of the heap machinery.
* :class:`Timer` wraps the common "restartable timeout" pattern used by TCP
  retransmission timers and the CM's background tick.  Restarts that push
  the deadline *back* (the per-ACK case) are coalesced: the timer just
  records the new deadline and re-arms lazily when the old entry fires,
  costing zero heap operations per restart.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

# Bound once at import: the hot paths call these thousands of times per
# simulated second and a plain global lookup beats module attribute access.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]

# Heap entries are ``[time, seq, state, callback, args, kwargs]`` lists.
# Ordering only ever compares ``time`` then the unique ``seq``, so the
# trailing slots never participate in heap comparisons.  ``kwargs`` is
# ``None`` (not an empty dict) for the overwhelmingly common kwarg-free case.
_TIME = 0
_SEQ = 1
_STATE = 2
_CALLBACK = 3
_ARGS = 4
_KWARGS = 5

_PENDING = 0
_CANCELLED = 1
_DISPATCHED = 2

#: Compact the heap when at least this many dead entries accumulate *and*
#: they outnumber the live ones (amortised O(1) per cancellation).
_COMPACT_MIN_DEAD = 512

# C-level allocator for Event handles; the scheduling fast paths fill the
# two slots inline instead of paying an ``__init__`` frame per event.
_new_event = object.__new__


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently.

    Examples include scheduling an event in the past, cancelling an event
    that has already been dispatched, or resuming a stopped simulator with a
    horizon earlier than the current time.
    """


class Event:
    """Handle for a scheduled callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    interacts with them to :meth:`cancel` a pending event or to inspect
    :attr:`time`.  The handle is a thin view over the simulator's internal
    heap entry, so keeping or dropping it costs nothing on the hot path.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list):
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute simulated time the event fires (or fired) at."""
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        """Schedule-order tiebreaker (unique per simulator)."""
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._entry[_STATE] == _CANCELLED

    @property
    def dispatched(self) -> bool:
        """True once the callback has been invoked."""
        return self._entry[_STATE] == _DISPATCHED

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and has not fired or been cancelled."""
        return self._entry[_STATE] == _PENDING

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call more than once on a pending or already-cancelled event;
        cancelling an event whose callback has already run is a bug in the
        caller's bookkeeping and raises :class:`SimulationError`.
        """
        entry = self._entry
        state = entry[_STATE]
        if state == _DISPATCHED:
            raise SimulationError(
                f"cannot cancel event at t={entry[_TIME]:.6f}: it has already been dispatched"
            )
        if state == _PENDING:
            # Inlined _kill_entry: cancellation is on the hot path (retracted
            # timeouts), a method call per cancel is measurable.
            entry[_STATE] = _CANCELLED
            sim = self._sim
            dead = sim._dead + 1
            sim._dead = dead
            if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(sim._heap):
                sim._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entry = self._entry
        state = ("pending", "cancelled", "done")[entry[_STATE]]
        callback = entry[_CALLBACK]
        name = getattr(callback, "__name__", callback)
        return f"<Event t={entry[_TIME]:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start:
        Initial simulated time in seconds.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[list] = []
        self._seq = 0
        self._dead = 0
        self._running = False
        self._stopped = False
        self._packet_seq = 0
        self.events_dispatched = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ identifiers
    def next_packet_id(self) -> int:
        """Allocate the next per-simulator packet id (1, 2, 3, ...).

        Packet ids are stamped by the IP output path so that traces and
        telemetry payloads are a function of the simulation alone, never of
        how many other simulations ran earlier in the process.
        """
        pid = self._packet_seq + 1
        self._packet_seq = pid
        return pid

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} seconds in the past")
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay, seq, _PENDING, callback, args, kwargs or None]
        _heappush(self._heap, entry)
        event = _new_event(Event)
        event._sim = self
        event._entry = entry
        return event

    def at(self, time: float, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, simulator already at {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, _PENDING, callback, args, kwargs or None]
        _heappush(self._heap, entry)
        event = _new_event(Event)
        event._sim = self
        event._entry = entry
        return event

    def call_soon(self, callback: Callable, *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at the current time (after already-queued same-time events)."""
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now, seq, _PENDING, callback, args, kwargs or None]
        _heappush(self._heap, entry)
        event = _new_event(Event)
        event._sim = self
        event._entry = entry
        return event

    # ------------------------------------------------------- entry management
    def _push(self, time: float, callback: Callable, args: tuple, kwargs: Optional[dict]) -> list:
        """Create and enqueue a raw heap entry (no :class:`Event` wrapper)."""
        seq = self._seq
        self._seq = seq + 1
        entry = [time, seq, _PENDING, callback, args, kwargs]
        _heappush(self._heap, entry)
        return entry

    def _kill_entry(self, entry: list) -> None:
        """Lazily cancel a pending entry.

        The payload slots are left in place — the dead entry surfaces and is
        dropped soon enough (or is swept by :meth:`_compact`), exactly as the
        heap-resident references behaved before the rewrite.
        """
        entry[_STATE] = _CANCELLED
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead entries (amortised by the threshold).

        In place, never rebinding ``self._heap``: the dispatch loop in
        :meth:`run` works on a local alias of the heap list, and compaction
        can trigger from a callback in the middle of that loop.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[_STATE] == _PENDING]
        heapq.heapify(heap)
        self._dead = 0

    # ---------------------------------------------------------------- running
    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[_STATE] != _PENDING:
                _heappop(heap)
                self._dead -= 1
                continue
            return entry[_TIME]
        return None

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the heap was empty.
        """
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            if entry[_STATE] != _PENDING:
                self._dead -= 1
                continue
            self._now = entry[_TIME]
            entry[_STATE] = _DISPATCHED
            self.events_dispatched += 1
            kwargs = entry[_KWARGS]
            if kwargs is None:
                entry[_CALLBACK](*entry[_ARGS])
            else:
                entry[_CALLBACK](*entry[_ARGS], **kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` is reached, or :meth:`stop`.

        Parameters
        ----------
        until:
            Horizon in simulated seconds.  Events scheduled later than the
            horizon are left on the heap; the clock is advanced to the
            horizon when it is reached.  Resuming with a horizon earlier
            than the current time (for example after a :meth:`stop`) raises
            :class:`SimulationError`.
        max_events:
            Safety valve for tests; abort after this many dispatches.

        Returns
        -------
        float
            The simulated time at which the run ended.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"horizon {until} is before current time {self._now}")
        self._running = True
        self._stopped = False
        # The dispatch loops work on local bindings (heap, heappop, the
        # budget) and unpack entries by index instead of going through Event
        # attribute lookups.  Entries are popped straight off the heap; the
        # one that overshoots the horizon is pushed back, which trades a
        # rare extra push for never peeking before every pop.
        heap = self._heap
        heappop = _heappop
        dispatched = 0
        try:
            if until is None and max_events is None:
                # Dominant case (drain, no horizon, no budget): tightest loop.
                # Literal entry indices (see the slot layout at module top):
                # global constant lookups are measurable at this call rate.
                while heap and not self._stopped:
                    entry = heappop(heap)
                    if entry[2]:
                        self._dead -= 1
                        continue
                    self._now = entry[0]
                    entry[2] = 2
                    dispatched += 1
                    kwargs = entry[5]
                    if kwargs is None:
                        entry[3](*entry[4])
                    else:
                        entry[3](*entry[4], **kwargs)
            else:
                remaining = -1 if max_events is None else max_events
                while heap and not self._stopped and remaining != 0:
                    entry = heappop(heap)
                    if entry[2]:
                        self._dead -= 1
                        continue
                    event_time = entry[0]
                    if until is not None and event_time > until:
                        _heappush(heap, entry)
                        self._now = until
                        break
                    self._now = event_time
                    entry[2] = 2
                    dispatched += 1
                    remaining -= 1
                    kwargs = entry[5]
                    if kwargs is None:
                        entry[3](*entry[4])
                    else:
                        entry[3](*entry[4], **kwargs)
                else:
                    # Drained, stopped, or out of budget without hitting the
                    # horizon: a drained run still reports the horizon time.
                    if until is not None and not self._stopped and self._now < until and self.peek() is None:
                        self._now = until
        finally:
            self.events_dispatched += dispatched
            self._running = False
        return self._now

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain (convenience wrapper over :meth:`run`)."""
        return self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._heap) - self._dead
        return f"<Simulator t={self._now:.6f} pending={pending}>"


class Timer:
    """A restartable one-shot timer bound to a simulator.

    This mirrors how kernel code uses timers: the owner calls
    :meth:`restart` whenever the timeout should be pushed back (for example
    when a TCP ACK advances the window), :meth:`cancel` when the timer is no
    longer needed, and the ``callback`` fires if the timeout expires first.

    Restarts are *coalesced*.  Kernel timer wheels survive a restart per
    packet because modifying a wheel entry is O(1); a binary heap is not so
    lucky, so instead of re-pushing on every restart the timer keeps at most
    one heap entry armed and simply records the latest deadline.  When the
    entry fires early it re-arms itself for the remaining interval.  A
    restart that *shortens* the deadline still has to requeue immediately —
    that is the rare case (TCP only shortens the RTO when the estimator
    collapses, and the CM's background tick never does).
    """

    __slots__ = ("_sim", "_callback", "_args", "_kwargs", "_deadline", "_entry")

    def __init__(self, sim: Simulator, callback: Callable, *args: Any, **kwargs: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        #: Absolute expiry time while armed, ``None`` otherwise.
        self._deadline: Optional[float] = None
        #: The heap entry currently scheduled to call :meth:`_fire`.
        self._entry: Optional[list] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._deadline is not None

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when the timer is not armed."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; restarts if already armed."""
        if delay < 0:
            raise SimulationError(f"cannot arm timer {delay} seconds in the past")
        sim = self._sim
        deadline = sim._now + delay
        self._deadline = deadline
        entry = self._entry
        if entry is not None and entry[_STATE] == _PENDING:
            if entry[_TIME] <= deadline:
                # Deadline moved later (or stayed put): keep the armed entry
                # and let _fire re-arm for the remainder.  Zero heap ops.
                return
            # Deadline moved earlier: the armed entry is useless, requeue.
            sim._kill_entry(entry)
        self._entry = sim._push(deadline, self._fire, (), None)

    # ``restart`` reads better at call sites that are refreshing a timeout.
    restart = start

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        self._deadline = None
        entry = self._entry
        if entry is not None:
            if entry[_STATE] == _PENDING:
                self._sim._kill_entry(entry)
            self._entry = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:
            # Cancelled after this entry was already dispatched; nothing to do.
            self._entry = None
            return
        sim = self._sim
        if deadline > sim._now:
            # A coalesced restart moved the deadline past this entry's time;
            # re-arm once for the remaining interval.
            self._entry = sim._push(deadline, self._fire, (), None)
            return
        self._deadline = None
        self._entry = None
        self._callback(*self._args, **self._kwargs)
