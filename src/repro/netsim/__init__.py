"""Discrete-event network simulation substrate.

This package replaces the paper's physical testbed (hosts, switched
Ethernet, Dummynet shaping) with a deterministic simulator; see DESIGN.md
for the substitution rationale.
"""

from .channel import Channel, Dumbbell, build_dumbbell
from .engine import Event, SimulationError, Simulator, Timer
from .graph import GraphNet, build_graph, shortest_path_next_hops
from .link import (GilbertElliottLoss, Link, LinkStats, RedQueue, make_aqm,
                   make_loss_model)
from .node import Host, Router
from .packet import (
    DEFAULT_MSS,
    DEFAULT_MTU,
    IP_HEADER_BYTES,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
)
from .trace import PacketTrace, RateTracker, TraceRecord

__all__ = [
    "Channel",
    "Dumbbell",
    "build_dumbbell",
    "GraphNet",
    "build_graph",
    "shortest_path_next_hops",
    "Event",
    "SimulationError",
    "Simulator",
    "Timer",
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "RedQueue",
    "make_aqm",
    "make_loss_model",
    "Host",
    "Router",
    "Packet",
    "PacketTrace",
    "RateTracker",
    "TraceRecord",
    "DEFAULT_MSS",
    "DEFAULT_MTU",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "PROTO_TCP",
    "PROTO_UDP",
]
