"""Packet and rate tracing helpers (thin facades over ``repro.telemetry``).

Experiments in the paper's evaluation (Figures 8-10) plot transmission rate
over time; :class:`RateTracker` produces exactly that kind of binned
time-series from per-packet events, and :class:`PacketTrace` keeps a raw
event log useful in tests.

Since PR 4 both classes are facades over the bounded recorders in
:mod:`repro.telemetry.recorders`:

* :class:`RateTracker` *is a* :class:`~repro.telemetry.recorders.FixedBinAccumulator`
  — same binning semantics as before, but with a hard cap on distinct bins
  (overflow is folded into the edge bins and counted, never silently
  dropped, never unbounded).
* :class:`PacketTrace` keeps its records in a
  :class:`~repro.telemetry.recorders.RingRecorder` instead of an unbounded
  Python list.  **Deprecation note:** the old unbounded-list behaviour is
  gone; a trace longer than ``capacity`` keeps only the newest records and
  counts the rest in :attr:`PacketTrace.dropped_records`.  New code should
  subscribe a recorder to the link probes (``packet.enqueue`` /
  ``packet.drop`` / ``packet.deliver``) through the telemetry layer instead
  — see ``docs/telemetry.md`` for the migration path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..telemetry.recorders import FixedBinAccumulator, RingRecorder

__all__ = ["TraceRecord", "PacketTrace", "RateTracker"]

#: Default bound on a PacketTrace (records kept before the ring recycles).
DEFAULT_TRACE_CAPACITY = 65_536

#: Default bound on RateTracker bins; at the default 0.5 s bin width this
#: covers over nine simulated hours, far past any experiment's horizon, so
#: existing series are bit-identical to the unbounded implementation.
DEFAULT_RATE_BINS = 65_536


@dataclass
class TraceRecord:
    """One logged packet event."""

    time: float
    event: str  # "send", "recv", "drop", "ack"
    src: str
    dst: str
    size: int
    info: dict = field(default_factory=dict)


class PacketTrace:
    """Bounded log of packet events (facade over :class:`RingRecorder`).

    The trace is intentionally simple: experiments filter it with Python
    list comprehensions rather than a query language.  Memory is bounded by
    ``capacity``; once full, the oldest records are recycled and counted in
    :attr:`dropped_records`.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self._ring = RingRecorder(capacity)

    @property
    def capacity(self) -> int:
        """Maximum records retained."""
        return self._ring.capacity

    @property
    def dropped_records(self) -> int:
        """Records recycled because the trace was full."""
        return self._ring.dropped

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first."""
        return self._ring.items()

    def log(self, time: float, event: str, src: str, dst: str, size: int, **info) -> None:
        """Append one event to the trace."""
        self._ring.append(TraceRecord(time, event, src, dst, size, dict(info)))

    def events(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Return all retained records, optionally restricted to one event kind."""
        if kind is None:
            return self._ring.items()
        return [r for r in self._ring.items() if r.event == kind]

    def bytes_between(self, start: float, end: float, kind: str = "recv") -> int:
        """Total bytes for ``kind`` events with ``start <= time < end``."""
        return sum(
            r.size for r in self._ring.items() if r.event == kind and start <= r.time < end
        )

    def __len__(self) -> int:
        return len(self._ring)


class RateTracker(FixedBinAccumulator):
    """Bin byte counts into fixed-width intervals and report rates.

    Used to reproduce the "Transmission Rate" and "Rate reported by CM"
    series in Figures 8-10.  A thin facade over
    :class:`~repro.telemetry.recorders.FixedBinAccumulator`: same sparse
    binning as the original implementation, but bounded at ``max_bins``
    distinct bins.
    """

    def __init__(self, bin_width: float = 0.5, max_bins: int = DEFAULT_RATE_BINS):
        super().__init__(bin_width=bin_width, max_bins=max_bins)

    def record(self, time: float, nbytes: int) -> None:
        """Account ``nbytes`` transmitted/observed at simulated ``time``."""
        self.add(time, nbytes)

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(bin_start_time, rate_bytes_per_second)`` points, sorted by time.

        Empty bins between the first and last observation are reported as
        zero so plots show stalls rather than interpolating over them.
        """
        width = self.bin_width
        return [(start, total / width) for start, total in self.bin_series()]

    def mean_rate(self) -> float:
        """Average rate in bytes/second over the observed span."""
        points = self.series()
        if not points:
            return 0.0
        return sum(rate for _t, rate in points) / len(points)
