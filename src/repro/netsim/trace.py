"""Packet and rate tracing helpers.

Experiments in the paper's evaluation (Figures 8-10) plot transmission rate
over time; :class:`RateTracker` produces exactly that kind of binned
time-series from per-packet events, and :class:`PacketTrace` keeps a raw
event log useful in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceRecord", "PacketTrace", "RateTracker"]


@dataclass
class TraceRecord:
    """One logged packet event."""

    time: float
    event: str  # "send", "recv", "drop", "ack"
    src: str
    dst: str
    size: int
    info: dict = field(default_factory=dict)


class PacketTrace:
    """Append-only log of packet events.

    The trace is intentionally simple: experiments filter it with Python
    list comprehensions rather than a query language.
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def log(self, time: float, event: str, src: str, dst: str, size: int, **info) -> None:
        """Append one event to the trace."""
        self.records.append(TraceRecord(time, event, src, dst, size, dict(info)))

    def events(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Return all records, optionally restricted to one event kind."""
        if kind is None:
            return list(self.records)
        return [r for r in self.records if r.event == kind]

    def bytes_between(self, start: float, end: float, kind: str = "recv") -> int:
        """Total bytes for ``kind`` events with ``start <= time < end``."""
        return sum(r.size for r in self.records if r.event == kind and start <= r.time < end)

    def __len__(self) -> int:
        return len(self.records)


class RateTracker:
    """Bin byte counts into fixed-width intervals and report rates.

    Used to reproduce the "Transmission Rate" and "Rate reported by CM"
    series in Figures 8-10.
    """

    def __init__(self, bin_width: float = 0.5):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}

    def record(self, time: float, nbytes: int) -> None:
        """Account ``nbytes`` transmitted/observed at simulated ``time``."""
        index = int(time // self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + nbytes

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(bin_start_time, rate_bytes_per_second)`` points, sorted by time.

        Empty bins between the first and last observation are reported as
        zero so plots show stalls rather than interpolating over them.
        """
        if not self._bins:
            return []
        lo = min(self._bins)
        hi = max(self._bins)
        out = []
        for index in range(lo, hi + 1):
            nbytes = self._bins.get(index, 0)
            out.append((index * self.bin_width, nbytes / self.bin_width))
        return out

    def mean_rate(self) -> float:
        """Average rate in bytes/second over the observed span."""
        points = self.series()
        if not points:
            return 0.0
        return sum(rate for _t, rate in points) / len(points)
