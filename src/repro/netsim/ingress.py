"""Per-node ingress sequencing for graph topologies.

Two packets arriving at one node at the same simulated instant are a real
tie: the link model delivers each in its own queue event, so which one the
node processes first is decided by event *scheduling history* (sequence
numbers) — an order a sharded run cannot reproduce, because packets injected
across a shard boundary are scheduled at the barrier, not at their original
send time.  One swapped ACK pair is enough to steer a TCP sender onto a
different trajectory and break the byte-for-byte determinism contract of
:mod:`repro.netsim.parallel`.

An :class:`IngressSequencer` removes scheduling history from the tie
entirely.  Deliveries to a node buffer per timestamp instead of invoking the
IP layer directly, and a single end-of-timestamp *drain* — scheduled with
:meth:`~repro.netsim.engine.Simulator.push_late`, so it runs after every
normal event at that instant — hands them to the node in **content-defined
order**: ascending ``(global directed link index, per-link arrival seq)``.
Both the single-process graph build and every shard apply the same rule, so
they agree on tie order by construction.

Why this is safe and exact:

* On a delay > 0 link the delivery event is scheduled strictly before it
  fires, so every same-instant delivery has a smaller sequence number than
  the late drain — all of them buffer before the drain runs, in either
  execution mode.  (Zero-delay links cannot be cut, and locally they keep
  whatever order they had: same-link arrivals are FIFO by construction.)
* The drain's queue position ``(t, LATE + node_rank)`` depends only on the
  node's global declaration index — partition-independent.
* Same-instant drains of *different* nodes commute: each touches only its
  own node's state, and anything a drained packet sends toward another node
  rides a link, which re-sequences it there.
* Per-link arrival order is FIFO (link serialisation is a chain), so the
  per-link counter assigns the same seq to the same packet in every mode.

Dumbbell/channel builds do not use sequencers — their topologies are fixed
two-host affairs with no sharded counterpart, and their goldens predate
this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["IngressSequencer"]


class IngressSequencer:
    """Order same-timestamp deliveries to one node by (link, arrival seq)."""

    __slots__ = ("sim", "rank", "receiver", "_buffers", "_pending")

    def __init__(self, sim, rank: int, receiver: Callable) -> None:
        self.sim = sim
        #: Global node declaration index — the drain's tie-break rank among
        #: same-instant drains of other nodes.
        self.rank = rank
        #: The node's real ``ip.receive``.
        self.receiver = receiver
        #: time → [(global directed link index, per-link seq, packet)]
        self._buffers: Dict[float, List[Tuple[int, int, object]]] = {}
        #: Timestamps with a drain already scheduled (one drain per instant).
        self._pending = set()

    def port(self, link_rank: int) -> Callable:
        """A receiver to ``Link.attach`` in place of ``node.ip.receive``.

        ``link_rank`` is the link's global directed index; the closure keeps
        its own per-link arrival counter.
        """
        state = [0]

        def deliver(packet) -> None:
            seq = state[0]
            state[0] = seq + 1
            self._add(self.sim._now, link_rank, seq, packet)

        return deliver

    def inject(self, time: float, link_rank: int, seq: int, packet) -> None:
        """Buffer a cross-shard delivery for ``time`` (a future instant).

        ``seq`` is the sending shard's per-link emission counter — the same
        number the local :meth:`port` counter would have assigned, since
        link emission and delivery are both FIFO.
        """
        self._add(time, link_rank, seq, packet)

    def _add(self, time: float, link_rank: int, seq: int, packet) -> None:
        buffer = self._buffers.get(time)
        if buffer is None:
            self._buffers[time] = [(link_rank, seq, packet)]
        else:
            buffer.append((link_rank, seq, packet))
        if time not in self._pending:
            self._pending.add(time)
            self.sim.push_late(time, self.rank, self._drain, (time,))

    def _drain(self, time: float) -> None:
        self._pending.discard(time)
        entries = self._buffers.pop(time)
        if len(entries) > 1:
            entries.sort(key=_order)
        receiver = self.receiver
        for _link_rank, _seq, packet in entries:
            receiver(packet)


def _order(entry: Tuple[int, int, object]) -> Tuple[int, int]:
    # Never compare the packet slot: (link, seq) is already a total order.
    return (entry[0], entry[1])
