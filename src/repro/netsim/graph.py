"""Arbitrary-graph topologies with static shortest-path routing.

:func:`build_graph` generalises :func:`~repro.netsim.channel.build_dumbbell`:
instead of one fixed shape it wires any set of named hosts and routers
connected by bidirectional links, computes static shortest-path routes and
installs them into the per-node routing tables the existing
:class:`~repro.iplayer.ip.IPLayer` forwarding consumes.  Parking lots,
stars, multi-bottleneck meshes — anything expressible as a graph — compile
into the same :class:`~repro.netsim.node.Host` / :class:`~repro.netsim.link.Link`
machinery every experiment already runs on.

Routing is computed once, at build time (the paper's testbeds were statically
routed, and dynamic routing would perturb the congestion dynamics under
study).  :func:`shortest_path_next_hops` is a pure function of the link set:

* the path metric is ``(total one-way delay, hop count, path names)``, so
  lower-latency routes win, equal-latency routes prefer fewer hops, and any
  remaining tie breaks on the lexicographic node-name sequence;
* because every tie-break is by *name*, the table is invariant under
  permutations of the node/link declaration order — a property the
  hypothesis test layer locks down.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .engine import Simulator
from .ingress import IngressSequencer
from .link import Link
from .node import Host, Router

__all__ = ["GraphNet", "shortest_path_next_hops", "build_graph", "install_routes"]


def shortest_path_next_hops(
    edges: Mapping[Tuple[str, str], float],
) -> Dict[str, Dict[str, str]]:
    """Static next-hop tables for a directed, delay-weighted edge set.

    ``edges`` maps ``(a, b)`` to the one-way propagation delay of the
    directed link from ``a`` to ``b``.  Returns ``table[src][dst] ->
    next_hop_name`` for every reachable ``dst != src``; unreachable
    destinations are simply absent.

    Deterministic and declaration-order independent: nodes and neighbours
    are visited in sorted-name order and path ties break on
    ``(delay, hops, lexicographic path)``.
    """
    adjacency: Dict[str, List[Tuple[str, float]]] = {}
    for (a, b), delay in edges.items():
        adjacency.setdefault(a, []).append((b, float(delay)))
        adjacency.setdefault(b, [])
    for neighbours in adjacency.values():
        neighbours.sort()

    table: Dict[str, Dict[str, str]] = {}
    for source in sorted(adjacency):
        # Dijkstra keyed by the full (delay, hops, path-names) triple: the
        # heap order *is* the path preference order, so the first time a
        # node is popped its best path is final.
        best: Dict[str, Tuple[float, int, Tuple[str, ...]]] = {}
        heap: List[Tuple[float, int, Tuple[str, ...]]] = [(0.0, 0, (source,))]
        while heap:
            delay, hops, path = heapq.heappop(heap)
            node = path[-1]
            if node in best:
                continue
            best[node] = (delay, hops, path)
            for neighbour, edge_delay in adjacency.get(node, ()):
                if neighbour not in best:
                    heapq.heappush(heap, (delay + edge_delay, hops + 1, path + (neighbour,)))
        table[source] = {
            dst: path[1] for dst, (_delay, _hops, path) in best.items() if dst != source
        }
    return table


@dataclass
class GraphNet:
    """The node and link handles returned by :func:`build_graph`."""

    #: Every node in declaration order (hosts and routers).
    nodes: Dict[str, Host]
    #: End systems only — the nodes applications may run on.
    hosts: Dict[str, Host]
    #: Directed links, keyed ``(from, to)``, in declaration order
    #: (forward then reverse per declared link).
    links: Dict[Tuple[str, str], Link] = field(default_factory=dict)
    #: ``next_hops[node][dst_node] -> neighbour`` (name level, for tests
    #: and debugging; the installed routes are keyed by address).
    next_hops: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Per-node ingress sequencers (same-timestamp delivery ordering; see
    #: :mod:`repro.netsim.ingress`).  Links deliver through these, not
    #: straight into ``node.ip.receive``.
    ingress: Dict[str, IngressSequencer] = field(default_factory=dict)
    #: The directed delay-weighted edge set routing was computed from —
    #: kept so mid-run reroutes can recompute the tables incrementally.
    edges: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def link(self, a: str, b: str) -> Link:
        """The directed link from node ``a`` to node ``b``."""
        return self.links[(a, b)]

    def apply_reroute(self, a: str, b: str, delay: float) -> None:
        """Change the cost of the ``a <-> b`` link mid-run and re-route.

        Sets both directions' propagation delay to ``delay``, recomputes the
        shortest-path tables over the updated edge set and reinstalls every
        node's routes (``add_route`` overwrites by destination address, so
        stale next-hops are simply replaced).  Packets already propagating
        keep their old arrival times — the link's no-overtake clamp ensures
        a shortened wire never reorders them.
        """
        delay = float(delay)
        for pair in ((a, b), (b, a)):
            self.edges[pair] = delay
            link = self.links.get(pair)
            if link is not None:
                link.delay = delay
        self.next_hops = shortest_path_next_hops(self.edges)
        host_addrs = {name: host.addr for name, host in self.hosts.items()}
        install_routes(self.nodes, host_addrs, self.links, self.next_hops)


def install_routes(
    nodes: Mapping[str, Host],
    host_addrs: Mapping[str, str],
    links: Mapping[Tuple[str, str], Link],
    next_hops: Mapping[str, Mapping[str, str]],
) -> None:
    """(Re)install address-keyed routes from name-level next-hop tables.

    Only end systems are packet destinations, so router names absent from
    ``host_addrs`` are skipped.  ``links`` may be a partial view (a shard
    holds only its local nodes' outgoing links); a missing link means the
    route belongs to another process and is skipped.
    """
    for name, node in nodes.items():
        for dst_name, via in next_hops.get(name, {}).items():
            addr = host_addrs.get(dst_name)
            if addr is None:
                continue
            link = links.get((name, via))
            if link is not None:
                node.add_route(addr, link)


def build_graph(
    sim: Simulator,
    nodes: Sequence[Mapping[str, Any]],
    links: Sequence[Mapping[str, Any]],
    seed: int = 0,
    host_costs_factory=None,
) -> GraphNet:
    """Wire an arbitrary named-node topology with static shortest-path routes.

    Parameters
    ----------
    nodes:
        Mappings with keys ``name``, ``kind`` (``"host"`` or ``"router"``),
        ``addr`` (defaulted when empty) and ``costs`` (host CPU accounting).
    links:
        Mappings with keys ``a``, ``b``, ``rate_bps``, ``delay`` and the
        optional :class:`~repro.netsim.link.Link` knobs ``queue_limit``,
        ``loss_rate``, ``reverse_loss_rate``, ``ecn_threshold``,
        ``seed_offset``, ``loss`` (burst-loss model config) and ``aqm``
        (queue-management config).  Each entry creates one link per
        direction.
    seed:
        Base seed for the links' random-loss RNGs.  Link *i* draws from
        ``seed + (seed_offset or 2*i)`` forward and ``+1`` reverse — the
        same staggering convention :class:`~repro.scenario.spec.LinkSpec`
        uses, so single-path graphs stay byte-compatible with the
        equivalent channel wiring.
    host_costs_factory:
        Factory for per-host CPU ledgers (routers never get one — the
        paper only measures end-system CPU).
    """
    net_nodes: Dict[str, Host] = {}
    net_hosts: Dict[str, Host] = {}
    host_index = 0
    for spec in nodes:
        name = spec["name"]
        kind = spec.get("kind", "host")
        addr = spec.get("addr", "")
        if kind == "router":
            net_nodes[name] = Router(sim, name, addr)
        else:
            if not addr:
                addr = f"10.{host_index + 1}.0.1"
            costs = None
            if spec.get("costs", True) and host_costs_factory is not None:
                costs = host_costs_factory()
            host = Host(sim, name, addr, costs=costs)
            net_nodes[name] = host
            net_hosts[name] = host
        if kind == "host":
            host_index += 1

    net = GraphNet(nodes=net_nodes, hosts=net_hosts)
    # Deliveries go through per-node sequencers so that same-timestamp
    # arrivals are processed in content-defined (link, seq) order — the
    # order a sharded run reproduces exactly (see repro.netsim.ingress).
    # Drain ranks are node *declaration* indices; link ports are keyed by
    # global directed link index (2*i forward, 2*i+1 reverse), matching the
    # shard build's numbering.
    for rank, spec in enumerate(nodes):
        name = spec["name"]
        net.ingress[name] = IngressSequencer(sim, rank, net_nodes[name].ip.receive)
    edges: Dict[Tuple[str, str], float] = {}
    for index, spec in enumerate(links):
        a, b = spec["a"], spec["b"]
        delay = float(spec["delay"])
        loss = float(spec.get("loss_rate", 0.0))
        reverse_loss = spec.get("reverse_loss_rate")
        offset = spec.get("seed_offset", 0) or 2 * index
        # Mapping-valued loss/aqm configs are normalized per Link, so each
        # direction always owns a fresh (stateful) model instance.
        forward = Link(
            sim,
            rate_bps=spec["rate_bps"],
            delay=delay,
            queue_limit=spec.get("queue_limit", 100),
            loss_rate=loss,
            ecn_threshold=spec.get("ecn_threshold"),
            seed=seed + offset,
            loss_model=spec.get("loss"),
            aqm=spec.get("aqm"),
            name=f"{a}->{b}",
        )
        reverse = Link(
            sim,
            rate_bps=spec["rate_bps"],
            delay=delay,
            queue_limit=spec.get("queue_limit", 100),
            loss_rate=loss if reverse_loss is None else float(reverse_loss),
            ecn_threshold=spec.get("ecn_threshold"),
            seed=seed + offset + 1,
            loss_model=spec.get("loss"),
            aqm=spec.get("aqm"),
            name=f"{b}->{a}",
        )
        forward.attach(net.ingress[b].port(2 * index))
        reverse.attach(net.ingress[a].port(2 * index + 1))
        net.links[(a, b)] = forward
        net.links[(b, a)] = reverse
        edges[(a, b)] = delay
        edges[(b, a)] = delay

    net.edges = edges
    net.next_hops = shortest_path_next_hops(edges)
    host_addrs = {name: host.addr for name, host in net_hosts.items()}
    install_routes(net_nodes, host_addrs, net.links, net.next_hops)
    return net
