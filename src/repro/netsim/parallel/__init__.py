"""Sharded parallel discrete-event engine (conservative lookahead).

Partitions a ``graph:`` scenario into N shards along link-delay cut edges
and runs one :class:`~repro.netsim.engine.Simulator` per shard in a worker
process.  Cross-shard links become boundary stubs that forward serialized
packets with ``ts = send_time + one_way_delay``; the minimum cut-link delay
is the conservative lookahead window (CMB-style), so shards advance in
barrier-synchronized windows and every forwarded packet always lands in the
receiving shard's future.

The contract is byte-determinism: a sharded run must produce the exact same
result JSON — digest included — as the single-process run of the same spec.
See ``docs/parallel_engine.md`` for the full contract and its limits.
"""

from .partition import Partition, UnionFind, partition_graph
from .runner import run_sharded

__all__ = ["Partition", "UnionFind", "partition_graph", "run_sharded"]
