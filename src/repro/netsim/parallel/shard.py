"""Build one shard's slice of a graph scenario.

A shard is a normal :class:`~repro.scenario.builder.Scenario` — own
simulator, own hosts, own apps/workloads/telemetry — restricted to the
nodes the partition assigned to it.  Everything that feeds the determinism
contract is derived from *global* declaration indices, never local ones:

* default host addresses use the global host declaration index,
* link RNG seeds use the global link index (``seed + (seed_offset or 2*i)``
  forward, ``+1`` reverse — the :func:`~repro.netsim.graph.build_graph`
  convention),
* default app/workload labels and workload RNG streams use global
  ``spec.apps`` / ``spec.workloads`` indices,

so a shard builds its slice byte-identically to how the single-process
build would have built those same objects.

Cut links are owned by the *sending* side as :class:`.boundary.BoundaryLink`
stubs; the receiving side only contributes its ``ip.receive`` callback to
the inbound dispatch table.  Peers of address-only apps/workloads that live
on another shard appear in ``scenario.hosts`` as :class:`RemoteHost`
proxies (name + addr and nothing else — anything that actually needs the
live object was colocated by the partitioner, or fails loudly here).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...hostmodel import HostCosts
from ..engine import Simulator
from ..link import Link
from ..node import Host, Router
from .boundary import BoundaryLink
from .partition import Partition

__all__ = ["RemoteHost", "Shard", "build_shard"]


@dataclass
class RemoteHost:
    """Address-only stand-in for a host simulated on another shard."""

    name: str
    addr: str
    #: Telemetry/validation probes skip hosts without a CM; a proxy never
    #: has one.
    cm = None
    costs = None


@dataclass
class Shard:
    """One worker's compiled slice plus its cross-shard plumbing."""

    index: int
    scenario: Any  # repro.scenario.builder.Scenario
    #: Cross-shard emissions accumulated during a window:
    #: ``(deliver_ts, global_link_index, seq, wire_tuple)``.
    outbox: List[Tuple] = field(default_factory=list)
    #: Locally-owned halves of cut links, for the end-of-run stats fix-up.
    boundary_links: List[BoundaryLink] = field(default_factory=list)
    #: Inbound dispatch: global directed link index → the destination
    #: node's :class:`~repro.netsim.ingress.IngressSequencer` (injected
    #: packets join the same per-timestamp ordering as local deliveries).
    receivers: Dict[int, Any] = field(default_factory=dict)
    #: ``(global index in spec.apps, app)`` for locally-hosted apps.
    apps: List[Tuple[int, Any]] = field(default_factory=list)
    #: ``(global index in spec.workloads, workload)`` — ditto.
    workloads: List[Tuple[int, Any]] = field(default_factory=list)
    #: Global directed link index → (name, locally-owned Link) for stats.
    links: Dict[int, Tuple[str, Link]] = field(default_factory=dict)
    #: Host-kind node names owned here, with global declaration index.
    hosts: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def sim(self) -> Simulator:
        return self.scenario.sim


def build_shard(
    spec,
    run_seed: int,
    part: Partition,
    shard_index: int,
    next_hops: Dict[str, Dict[str, str]],
    trace_path: Optional[str] = None,
):
    """Compile shard ``shard_index`` of ``spec`` under partition ``part``.

    ``next_hops`` is the full-graph routing table, computed once by the
    coordinator (identical to what :func:`~repro.netsim.graph.build_graph`
    would derive) and shipped to every worker — routing is a pure function
    of the global link set, so no shard recomputes it.
    """
    from ...scenario.builder import Scenario, _attach_cm, workload_rng_seed
    from ...scenario.spec import SpecError, default_addr
    from ...scenario.telemetry import ScenarioTelemetry

    graph_spec = spec.graph
    shard_of = part.shard_of
    sim = Simulator()
    scenario = Scenario(spec=spec, seed=run_seed, sim=sim, hosts={})
    shard = Shard(index=shard_index, scenario=scenario)

    # --- nodes: local ones live, every host's address known globally -------
    net_nodes: Dict[str, Any] = {}
    addr_of: Dict[str, str] = {}
    host_names = set()
    host_index = 0
    for node_index, node in enumerate(graph_spec.nodes):
        local = shard_of[node.name] == shard_index
        if node.kind == "host":
            addr = node.addr or default_addr(host_index)
            host_index += 1
            addr_of[node.name] = addr
            host_names.add(node.name)
            if local:
                costs = HostCosts() if node.costs else None
                host = Host(sim, node.name, addr, costs=costs)
                net_nodes[node.name] = host
                shard.hosts.append((node_index, node.name))
        elif local:
            net_nodes[node.name] = Router(sim, node.name, node.addr)

    # Per-node ingress sequencers, ranked by *global* node declaration
    # index — identical drain scheduling to the single-process build.
    from ..ingress import IngressSequencer

    ingress: Dict[str, IngressSequencer] = {}
    for node_index, node in enumerate(graph_spec.nodes):
        if node.name in net_nodes:
            ingress[node.name] = IngressSequencer(
                sim, node_index, net_nodes[node.name].ip.receive)

    # --- links: every directed link with a local source is owned here ------
    net_links: Dict[Tuple[str, str], Link] = {}
    for index, link_spec in enumerate(graph_spec.links):
        offset = link_spec.seed_offset if link_spec.seed_offset else 2 * index
        loss = link_spec.loss_rate
        reverse_loss = (
            loss if link_spec.reverse_loss_rate is None else link_spec.reverse_loss_rate
        )
        directions = (
            (0, link_spec.a, link_spec.b, loss),
            (1, link_spec.b, link_spec.a, reverse_loss),
        )
        for direction, a, b, loss_rate in directions:
            gidx = 2 * index + direction
            local_src = shard_of[a] == shard_index
            local_dst = shard_of[b] == shard_index
            if local_dst and not local_src:
                shard.receivers[gidx] = ingress[b]
            if not local_src:
                continue
            kwargs = dict(
                rate_bps=link_spec.rate_bps,
                delay=link_spec.delay,
                queue_limit=link_spec.queue_limit,
                loss_rate=loss_rate,
                ecn_threshold=link_spec.ecn_threshold,
                seed=run_seed + offset + direction,
                # Config mappings, normalized per Link: each direction owns
                # a fresh stateful model, exactly as in build_graph.
                loss_model=link_spec.loss,
                aqm=link_spec.aqm,
                name=f"{a}->{b}",
            )
            if local_dst:
                link = Link(sim, **kwargs)
                link.attach(ingress[b].port(gidx))
            else:
                link = BoundaryLink(sim, shard.outbox, gidx, **kwargs)
                shard.boundary_links.append(link)
            net_links[(a, b)] = link
            shard.links[gidx] = (f"{a}->{b}", link)

    # --- static routes (host destinations only, build_graph convention) ----
    for name, node in net_nodes.items():
        for dst_name, via in next_hops.get(name, {}).items():
            if dst_name not in host_names:
                continue
            node.add_route(addr_of[dst_name], net_links[(name, via)])

    # graph_net lets telemetry bind link probes exactly like a full build.
    from ..graph import GraphNet

    scenario.graph_net = GraphNet(
        nodes=net_nodes,
        hosts={name: node for name, node in net_nodes.items() if name in host_names},
        links=net_links,
        next_hops=next_hops,
        ingress=ingress,
    )
    for name in host_names:
        if name in net_nodes:
            scenario.hosts[name] = net_nodes[name]
        else:
            scenario.hosts[name] = RemoteHost(name, addr_of[name])
    for node in graph_spec.nodes:
        if node.cm and shard_of[node.name] == shard_index:
            _attach_cm(net_nodes[node.name], node)

    # --- scheduled reroutes: every shard replays the same global sequence --
    # Routing is a pure function of the global edge set, so each shard keeps
    # its own copy of the full (delay-weighted) edges, applies every change
    # to it and reinstalls routes for its local nodes only.  Scheduled here
    # — after CM attach, before apps — matching the single-process build's
    # event ordering.  The partitioner already bounded the lookahead by the
    # post-reroute minimum cut delay, so a shortened cut link stays safe.
    if graph_spec.reroutes:
        from ..graph import install_routes, shortest_path_next_hops

        edges: Dict[Tuple[str, str], float] = {}
        for link_spec in graph_spec.links:
            edges[(link_spec.a, link_spec.b)] = link_spec.delay
            edges[(link_spec.b, link_spec.a)] = link_spec.delay

        def apply_reroute(a: str, b: str, delay: float) -> None:
            delay = float(delay)
            for pair in ((a, b), (b, a)):
                edges[pair] = delay
                link = net_links.get(pair)
                if link is not None:
                    link.delay = delay
            tables = shortest_path_next_hops(edges)
            scenario.graph_net.next_hops = tables
            install_routes(net_nodes, addr_of, net_links, tables)

        for reroute in graph_spec.reroutes:
            sim.schedule(reroute.time, apply_reroute,
                         reroute.a, reroute.b, reroute.delay)

    # --- apps / workloads on local hosts, global indices throughout --------
    from ...scenario.applications import get_application

    for index, app_spec in enumerate(spec.apps):
        if shard_of[app_spec.host] != shard_index:
            continue
        params = app_spec.normalized_params()
        app_cls = get_application(app_spec.app)
        peer = scenario.hosts[app_spec.peer] if app_spec.peer else None
        if app_cls.colocate_peer and isinstance(peer, RemoteHost):
            raise SpecError(  # partitioner guarantees this; fail loud if not
                f"apps[{index}]",
                f"{app_spec.app!r} needs its peer {app_spec.peer!r} on the same shard",
            )
        try:
            app = app_cls(net_nodes[app_spec.host], peer, app_spec, params)
        except SpecError:
            raise
        except (RuntimeError, ValueError) as exc:
            raise SpecError(f"apps[{index}]", f"building {app_spec.app!r} failed: {exc}") from exc
        if not app_spec.label:
            app.label = f"{app_spec.app}[{index}]"
        scenario.apps.append(app)
        shard.apps.append((index, app))

    if spec.workloads:
        from ...workloads import get_workload

        for index, workload_spec in enumerate(spec.workloads):
            if shard_of[workload_spec.host] != shard_index:
                continue
            workload_cls = get_workload(workload_spec.kind)
            if (workload_cls.colocate_peer and workload_spec.peer
                    and isinstance(scenario.hosts[workload_spec.peer], RemoteHost)):
                raise SpecError(  # partitioner guarantees this; fail loud if not
                    f"workloads[{index}]",
                    f"{workload_spec.kind!r} needs its peer {workload_spec.peer!r} "
                    "on the same shard",
                )
            rng = random.Random(
                workload_rng_seed(run_seed, workload_spec.seed_offset, index))
            try:
                workload = workload_cls(
                    scenario, workload_spec, workload_spec.normalized_params(), rng)
            except SpecError:
                raise
            except (RuntimeError, ValueError) as exc:
                raise SpecError(
                    f"workloads[{index}]",
                    f"building {workload_spec.kind!r} failed: {exc}") from exc
            if not workload_spec.label:
                workload.label = f"{workload_spec.kind}[{index}]"
            scenario.workloads.append(workload)
            shard.workloads.append((index, workload))

    if trace_path is not None:
        scenario.telemetry = ScenarioTelemetry(None, run_seed, sim, trace_path=trace_path)
        scenario.telemetry.attach(scenario)
    return shard


def collect_shard(shard: Shard, spec, duration: float) -> Dict[str, List]:
    """Harvest this shard's slice of the result, keyed for the global merge.

    Every entry is ``(global_sort_key, payload_dict)``; the coordinator
    concatenates across shards, sorts by key and recovers exactly the
    single-process section order (spec declaration order throughout).
    """
    from ...scenario.runner import _link_metrics

    groups = set(spec.metrics)
    sections: Dict[str, List] = {"apps": [], "links": [], "hosts": [], "workloads": []}
    if "apps" in groups:
        for index, app in shard.apps:
            sections["apps"].append((index, {
                "app": app.spec.app,
                "host": app.spec.host,
                "label": app.label,
                "metrics": app.metrics(),
            }))
    if "links" in groups:
        for gidx in sorted(shard.links):
            name, link = shard.links[gidx]
            sections["links"].append((gidx, _link_metrics(name, link)))
    if "hosts" in groups:
        for node_index, name in shard.hosts:
            costs = shard.scenario.hosts[name].costs
            entry: Dict[str, Any] = {"host": name}
            if costs is not None:
                entry["cpu_total_us"] = costs.total_us
                entry["cpu_utilization"] = (
                    costs.utilization(duration) if duration > 0 else 0.0)
                entry["cpu_by_category_us"] = dict(sorted(costs.ledger.snapshot().items()))
            sections["hosts"].append((node_index, entry))
    for index, workload in shard.workloads:
        sections["workloads"].append((index, {
            "kind": workload.spec.kind,
            "host": workload.spec.host,
            "label": workload.label,
            "metrics": workload.metrics(),
        }))
    return sections
